// Conference suite (ctest labels "conf" + "serve"): the active-speaker
// detector's dwell hysteresis and determinism properties, the
// conference switch-policy table (role rows), the room stage's serve
// integration — 8-speaker lossy replay identity including the
// speaker_trace, K=1 room byte-identity with a plain simulcast session,
// role-driven rung pinning, and transport-lane survival across
// dominance moves — plus the RateController forced-IDR edge cases and
// the SessionReport session-id pin.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "adaptive/modes.hpp"
#include "conf/room.hpp"
#include "conf/speaker.hpp"
#include "fault/plan.hpp"
#include "fault/scenario.hpp"
#include "h264/ratecontrol.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/workload.hpp"
#include "simulcast/encoder.hpp"
#include "simulcast/policy.hpp"

namespace adaptive = affectsys::adaptive;
namespace conf = affectsys::conf;
namespace fault = affectsys::fault;
namespace h264 = affectsys::h264;
namespace serve = affectsys::serve;
namespace simulcast = affectsys::simulcast;

namespace {

/// splitmix64 — scripted observation schedules for the detector tests.
std::uint64_t splitmix64(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Process-lifetime serve fixtures whose workload also built the stock
/// 3-layer simulcast clip (same shape as the test_simulcast fixture).
struct ConfWorld {
  serve::SharedWorkload workload;
  ConfWorld()
      : workload([] {
          serve::WorkloadConfig wc;
          wc.simulcast = simulcast::default_simulcast_config();
          return wc;
        }()) {}
};

ConfWorld& conf_world() {
  static ConfWorld w;
  return w;
}

serve::SessionEnv conf_env() {
  serve::SessionEnv env = fault::scenario_env();
  env.workload = &conf_world().workload;
  return env;
}

/// Wide watermarks: these tests pin ROLE-driven layer choices, so the
/// backlog degrade ladder must stay quiet.
serve::ServerConfig room_server_config() {
  serve::ServerConfig cfg;
  cfg.max_sessions = 16;
  cfg.backlog_hi = 1000;
  cfg.backlog_lo = 500;
  return cfg;
}

serve::SessionConfig member_config(unsigned seed) {
  serve::SessionConfig cfg;
  cfg.seed = seed;
  cfg.simulcast.enabled = true;
  return cfg;
}

serve::SessionConfig lossy_member_config(unsigned seed) {
  serve::SessionConfig cfg = member_config(seed);
  cfg.fault = fault::FaultConfig{seed * 7 + 5, 0.05, fault::kNetKinds};
  cfg.transport = fault::net_scenario_transport(true);
  cfg.transport.layers = 3;
  return cfg;
}

}  // namespace

// ----------------------------------------------- active-speaker detector

TEST(ActiveSpeaker, NeverFlapsFasterThanMinHold) {
  // A scripted observation storm (random on/off speech for 4 members)
  // may move dominance as often as it likes — but never two moves
  // closer together than min_hold_ticks.
  const conf::ActiveSpeakerConfig cfg;
  conf::ActiveSpeakerDetector det(cfg);
  for (conf::SpeakerId id = 1; id <= 4; ++id) det.add(id);

  std::uint64_t rng = 99;
  std::vector<std::uint64_t> switch_ticks;
  conf::SpeakerId prev = 0;
  bool have_prev = false;
  for (std::uint64_t t = 0; t < 400; ++t) {
    for (conf::SpeakerId id = 1; id <= 4; ++id) {
      const bool speaks = splitmix64(rng) % 3 != 0;
      const double energy =
          speaks ? 0.01 + static_cast<double>(splitmix64(rng) % 100) / 1e4
                 : 0.0;
      const double confidence =
          static_cast<double>(splitmix64(rng) % 100) / 99.0;
      det.observe(id, energy, confidence);
    }
    const conf::SpeakerId dom = det.tick(t);
    ASSERT_TRUE(det.has_dominant());
    if (have_prev && dom != prev) switch_ticks.push_back(t);
    prev = dom;
    have_prev = true;
  }
  // The storm actually moved the floor, repeatedly.
  ASSERT_GE(switch_ticks.size(), 2u);
  EXPECT_EQ(det.stats().speaker_switches, switch_ticks.size());
  for (std::size_t i = 1; i < switch_ticks.size(); ++i) {
    EXPECT_GE(switch_ticks[i] - switch_ticks[i - 1], cfg.min_hold_ticks)
        << "flap at tick " << switch_ticks[i];
  }
}

namespace {

/// One scripted room run: 5 members, seeded random speech, full report.
conf::RoomReport scripted_room_report(std::uint64_t seed) {
  conf::RoomConfig cfg;
  conf::Room room(7, cfg);
  for (conf::SpeakerId id = 1; id <= 5; ++id) room.add(id);
  std::uint64_t rng = seed;
  for (std::uint64_t t = 0; t < 300; ++t) {
    for (conf::SpeakerId id = 1; id <= 5; ++id) {
      const bool speaks = splitmix64(rng) % 4 == 0;
      room.observe(id,
                   speaks ? 0.02 : 0.0,
                   static_cast<double>(splitmix64(rng) % 100) / 99.0);
    }
    room.tick(t);
  }
  return room.report();
}

}  // namespace

TEST(ActiveSpeaker, DominanceIsAPureFunctionOfTheScript) {
  // Same seed => the same speaker_trace, same roles, same counters —
  // the whole RoomReport compares equal.  The trace's first entry is
  // the initial election (tick 0), and the switches counter excludes
  // it.
  const conf::RoomReport a = scripted_room_report(1234);
  const conf::RoomReport b = scripted_room_report(1234);
  EXPECT_EQ(a, b);
  ASSERT_GT(a.speaker_trace.size(), 1u);
  EXPECT_EQ(a.speaker_trace.front().tick, 0u);
  EXPECT_EQ(a.speaker_switches, a.speaker_trace.size() - 1);
  EXPECT_EQ(a.ticks, 300u);
  EXPECT_EQ(a.observations, 300u * 5u);

  // A different script moves the floor differently.
  const conf::RoomReport c = scripted_room_report(4321);
  EXPECT_NE(a.speaker_trace, c.speaker_trace);
}

TEST(ActiveSpeaker, SilentRoomPinsStablyWithoutRotation) {
  // Nobody ever clears the energy floor: the initial election hands the
  // floor to the lowest id (the stable-pinning fallback) and nothing —
  // not even 200 ticks of numeric dust — rotates it.
  conf::RoomConfig cfg;
  conf::Room room(1, cfg);
  for (conf::SpeakerId id = 3; id <= 5; ++id) room.add(id);
  for (std::uint64_t t = 0; t < 200; ++t) {
    for (conf::SpeakerId id = 3; id <= 5; ++id) room.observe(id, 0.0, 0.5);
    room.tick(t);
  }
  const conf::RoomReport rep = room.report();
  EXPECT_EQ(rep.dominant, 3u);
  ASSERT_EQ(rep.speaker_trace.size(), 1u);  // election only, no churn
  EXPECT_EQ(rep.speaker_switches, 0u);
  EXPECT_EQ(rep.silent_ticks, 200u);
  // The floor holder keeps kDominant; everyone else is idle.
  ASSERT_EQ(rep.roles.size(), 3u);
  EXPECT_EQ(rep.roles[0].second, simulcast::SpeakerRole::kDominant);
  EXPECT_EQ(rep.roles[1].second, simulcast::SpeakerRole::kIdle);
  EXPECT_EQ(rep.roles[2].second, simulcast::SpeakerRole::kIdle);
}

TEST(ActiveSpeaker, AffectConfidenceBreaksEqualEnergy) {
  // Equal energy, unequal confidence: the confidently emotional speaker
  // out-accumulates the flat one (activity = 1 + affect_weight * conf).
  conf::ActiveSpeakerDetector det;
  det.add(1);
  det.add(2);
  for (std::uint64_t t = 0; t < 30; ++t) {
    det.observe(1, 0.02, 0.0);
    det.observe(2, 0.02, 0.9);
    det.tick(t);
  }
  EXPECT_EQ(det.dominant(), 2u);
  EXPECT_GT(det.score(2), det.score(1));
}

TEST(ActiveSpeaker, RolesDecayFromRecentToIdle) {
  conf::ActiveSpeakerConfig cfg;  // recent_ticks = 30
  conf::ActiveSpeakerDetector det(cfg);
  det.add(1);
  det.add(2);
  det.add(3);
  // Phase 1: speaker 1 holds the floor.
  std::uint64_t t = 0;
  for (; t < 20; ++t) {
    det.observe(1, 0.02, 0.9);
    det.tick(t);
  }
  EXPECT_EQ(det.dominant(), 1u);
  // Phase 2: 1 falls silent, 2 speaks — dominance moves (after the
  // margin crossing), and 1 is kRecent while its floor tenure is fresh.
  for (; t < 45; ++t) {
    det.observe(2, 0.02, 0.9);
    det.tick(t);
  }
  EXPECT_EQ(det.dominant(), 2u);
  EXPECT_EQ(det.stats().speaker_switches, 1u);
  EXPECT_EQ(det.role(2), simulcast::SpeakerRole::kDominant);
  EXPECT_EQ(det.role(1), simulcast::SpeakerRole::kRecent);
  EXPECT_EQ(det.role(3), simulcast::SpeakerRole::kIdle);
  // Phase 3: recent_ticks later, 1 has decayed to idle.
  for (; t < 100; ++t) {
    det.observe(2, 0.02, 0.9);
    det.tick(t);
  }
  EXPECT_EQ(det.role(1), simulcast::SpeakerRole::kIdle);
  EXPECT_EQ(det.role(2), simulcast::SpeakerRole::kDominant);
}

TEST(ActiveSpeaker, RemovingDominantForcesFreshElection) {
  conf::ActiveSpeakerDetector det;
  det.add(1);
  det.add(2);
  for (std::uint64_t t = 0; t < 8; ++t) {
    det.observe(1, 0.02, 0.5);
    det.observe(2, 0.02, 0.5);
    det.tick(t);
  }
  EXPECT_EQ(det.dominant(), 1u);  // tie, lowest id
  det.remove(1);
  // Re-election is immediate — no min-hold protects an empty floor —
  // even though only 1 tick passed since the last dominance change
  // could have been adjudicated.
  det.observe(2, 0.02, 0.5);
  EXPECT_EQ(det.tick(8), 2u);
  EXPECT_EQ(det.role(2), simulcast::SpeakerRole::kDominant);
}

// --------------------------------------------- conference switch policy

TEST(ConferencePolicy, RoleRowsPinNonDominantSpeakers) {
  const simulcast::SwitchPolicy p = simulcast::conference_switch_policy(3);
  const auto mode = adaptive::DecoderMode::kStandard;
  simulcast::ContextVector ctx;  // clean, full power, role = kDominant

  EXPECT_EQ(p.target_layer(mode, ctx, 3), 2u);  // dominant earns the top
  ctx.speaker_role = static_cast<int>(simulcast::SpeakerRole::kRecent);
  EXPECT_EQ(p.target_layer(mode, ctx, 3), 1u);  // recent -> mid rung
  ctx.speaker_role = static_cast<int>(simulcast::SpeakerRole::kIdle);
  EXPECT_EQ(p.target_layer(mode, ctx, 3), 0u);  // idle -> bottom rung

  // The emergency rows outrank holding (or having held) the floor: a
  // heavy backlog or a lossy link under pressure pins the bottom layer
  // whatever the role says.
  ctx.speaker_role = static_cast<int>(simulcast::SpeakerRole::kRecent);
  ctx.pressure = 2;
  EXPECT_EQ(p.target_layer(mode, ctx, 3), 0u);
  ctx.pressure = 1;
  ctx.loss_rate = 0.5;
  EXPECT_EQ(p.target_layer(mode, ctx, 3), 0u);
}

TEST(ConferencePolicy, DominantReducesToTheDefaultTable) {
  // For the dominant speaker the conference table must be
  // indistinguishable from the stock one across the whole quantized
  // context space — that equivalence is what makes a K=1 room
  // byte-identical to a plain session.
  const simulcast::SwitchPolicy conference =
      simulcast::conference_switch_policy(3);
  const simulcast::SwitchPolicy stock = simulcast::default_switch_policy(3);
  for (int mode = 0; mode < 4; ++mode) {
    for (int pressure = 0; pressure <= 3; ++pressure) {
      for (const double loss : {0.0, 0.5}) {
        for (const double battery : {1.0, 0.05}) {
          for (const double thermal : {1.0, 0.05}) {
            simulcast::ContextVector ctx;
            ctx.pressure = pressure;
            ctx.loss_rate = loss;
            ctx.battery = battery;
            ctx.thermal_headroom = thermal;
            ctx.speaker_role =
                static_cast<int>(simulcast::SpeakerRole::kDominant);
            const auto m = static_cast<adaptive::DecoderMode>(mode);
            EXPECT_EQ(conference.target_layer(m, ctx, 3),
                      stock.target_layer(m, ctx, 3))
                << "mode=" << mode << " pressure=" << pressure
                << " loss=" << loss << " battery=" << battery
                << " thermal=" << thermal;
          }
        }
      }
    }
  }
}

// ------------------------------------------------- serve room integration

namespace {

struct RoomRun {
  std::vector<serve::SessionReport> reports;  ///< member id order
  conf::RoomReport room;
};

RoomRun run_lossy_room(std::size_t members, std::uint64_t ticks) {
  serve::SessionManager mgr(room_server_config(), conf_env());
  const conf::RoomId room = mgr.create_room();
  std::vector<serve::SessionId> ids;
  for (std::size_t i = 0; i < members; ++i) {
    ids.push_back(
        mgr.create_session(lossy_member_config(101 + static_cast<unsigned>(i)),
                           room));
  }
  for (std::uint64_t t = 0; t < ticks; ++t) mgr.tick();
  mgr.drain();
  RoomRun out;
  for (const serve::SessionId id : ids) out.reports.push_back(mgr.report(id));
  out.room = mgr.room_report(room);
  return out;
}

}  // namespace

TEST(ConfServe, EightSpeakerLossyRoomReplaysByteIdentical) {
  // The flagship replay pin: 8 speakers, seeded packet loss on every
  // member's transport, dominance moving with the emotion scripts — two
  // runs must agree on every digest, every layer_trace, every transport
  // counter AND the room's speaker_trace.
  const RoomRun a = run_lossy_room(8, 140);
  const RoomRun b = run_lossy_room(8, 140);

  EXPECT_EQ(a.room, b.room);
  ASSERT_EQ(a.reports.size(), b.reports.size());
  std::uint64_t switches = 0, lost = 0;
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const serve::SessionReport& ra = a.reports[i];
    const serve::SessionReport& rb = b.reports[i];
    EXPECT_EQ(ra.session_id, rb.session_id);
    EXPECT_EQ(ra.decode_digest, rb.decode_digest) << "member " << i;
    EXPECT_EQ(ra.layer_trace, rb.layer_trace) << "member " << i;
    EXPECT_EQ(ra.stats.frames_decoded, rb.stats.frames_decoded);
    EXPECT_EQ(ra.stats.packets_lost, rb.stats.packets_lost);
    EXPECT_EQ(ra.stats.nals_lost, rb.stats.nals_lost);
    EXPECT_EQ(ra.stats.layer_switches, rb.stats.layer_switches);
    EXPECT_EQ(ra.stats.layer_bytes, rb.stats.layer_bytes);
    EXPECT_EQ(ra.stats.layer_pictures, rb.stats.layer_pictures);
    switches += ra.stats.layer_switches;
    lost += ra.stats.packets_lost;
  }
  // The run actually exercised the machinery: dominance moved, layers
  // switched, the channel dropped packets.
  EXPECT_GT(a.room.speaker_trace.size(), 1u);
  EXPECT_GT(switches, 0u);
  EXPECT_GT(lost, 0u);
}

TEST(ConfServe, SingleMemberRoomMatchesPlainSimulcastSession) {
  // K=1 compatibility: the lone member is elected dominant on the first
  // tick, the conference table's role rows never match kDominant, so a
  // one-member room is byte-identical to the same session outside any
  // room.
  const serve::SessionConfig cfg = member_config(55);

  serve::SessionManager plain(room_server_config(), conf_env());
  const serve::SessionId pid = plain.create_session(cfg);

  serve::SessionManager roomed(room_server_config(), conf_env());
  const conf::RoomId room = roomed.create_room();
  const serve::SessionId rid = roomed.create_session(cfg, room);

  for (std::uint64_t t = 0; t < 100; ++t) {
    plain.tick();
    roomed.tick();
  }
  plain.drain();
  roomed.drain();

  const serve::SessionReport a = plain.report(pid);
  const serve::SessionReport b = roomed.report(rid);
  EXPECT_EQ(a.decode_digest, b.decode_digest);
  EXPECT_EQ(a.layer_trace, b.layer_trace);
  EXPECT_EQ(a.stats.frames_decoded, b.stats.frames_decoded);
  EXPECT_EQ(a.stats.layer_switches, b.stats.layer_switches);
  EXPECT_EQ(a.stats.layer_bytes, b.stats.layer_bytes);
  EXPECT_EQ(a.stats.layer_pictures, b.stats.layer_pictures);
  EXPECT_EQ(a.windows.size(), b.windows.size());
  // The room itself reports its lone member as dominant throughout.
  const conf::RoomReport rr = roomed.room_report(room);
  EXPECT_EQ(rr.dominant, rid);
  EXPECT_EQ(rr.speaker_trace.size(), 1u);
  EXPECT_EQ(rr.speaker_switches, 0u);
}

TEST(ConfServe, RolesPinLadderRungsAndKeepTheIdrInvariant) {
  // Clean 4-speaker room: non-dominant members are pinned to lower
  // rungs by the role rows, dominance moves still honour
  // switch-only-at-IDR, and the switch latency stays under one GOP.
  const simulcast::SimulcastClip& clip =
      *conf_world().workload.simulcast_clip();
  const int gop = conf_world().workload.config().simulcast.gop_frames;

  serve::SessionManager mgr(room_server_config(), conf_env());
  const conf::RoomId room = mgr.create_room();
  std::vector<serve::SessionId> ids;
  for (unsigned i = 0; i < 4; ++i) {
    ids.push_back(mgr.create_session(member_config(201 + i), room));
  }
  for (std::uint64_t t = 0; t < 160; ++t) mgr.tick();
  mgr.drain();

  const conf::RoomReport rr = mgr.room_report(room);
  EXPECT_GT(rr.speaker_trace.size(), 1u);  // dominance actually moved

  std::size_t dominant_count = 0, pinned_members = 0;
  std::uint64_t top_pictures = 0, lower_pictures = 0;
  for (const serve::SessionId id : ids) {
    const serve::SessionReport rep = mgr.report(id);
    for (const auto& [pic, layer] : rep.layer_trace) {
      EXPECT_LT(layer, clip.layer_count());
      EXPECT_TRUE(clip.idr_at(pic % clip.pictures()))
          << "member " << id << ": layer change at non-IDR picture " << pic;
    }
    EXPECT_LT(rep.layer_selector.max_wait_pictures,
              static_cast<std::uint64_t>(gop));
    top_pictures += rep.stats.layer_pictures[2];
    lower_pictures +=
        rep.stats.layer_pictures[0] + rep.stats.layer_pictures[1];
    if (rep.stats.layer_pictures[0] + rep.stats.layer_pictures[1] > 0) {
      ++pinned_members;
    }
  }
  for (const auto& [id, role] : rr.roles) {
    if (role == simulcast::SpeakerRole::kDominant) ++dominant_count;
  }
  EXPECT_EQ(dominant_count, 1u);   // exactly one floor holder
  EXPECT_GE(pinned_members, 3u);   // the others spent time on lower rungs
  EXPECT_GT(top_pictures, 0u);     // somebody held the top rung
  EXPECT_GT(lower_pictures, top_pictures);  // most pictures ride low rungs
}

TEST(ConfServe, DominanceMovesDoNotResetTransportLanes) {
  // A dominance move retargets the sender's LayerSelector — it must NOT
  // touch per-speaker jitter/FEC state.  Transport counters sampled
  // every tick stay monotonic across every speaker switch, and the
  // members keep receiving NALs after the floor moves away from them.
  serve::SessionManager mgr(room_server_config(), conf_env());
  const conf::RoomId room = mgr.create_room();
  std::vector<serve::SessionId> ids;
  for (unsigned i = 0; i < 3; ++i) {
    serve::SessionConfig cfg = member_config(301 + i);
    cfg.transport = fault::net_scenario_transport(true);
    cfg.transport.layers = 3;
    ids.push_back(mgr.create_session(cfg, room));
  }
  std::vector<std::uint64_t> last_sent(ids.size(), 0);
  std::vector<std::uint64_t> last_received(ids.size(), 0);
  for (std::uint64_t t = 0; t < 160; ++t) {
    mgr.tick();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const serve::SessionReport rep = mgr.report(ids[i]);
      EXPECT_GE(rep.transport.packets_sent, last_sent[i])
          << "member " << i << " transport reset at tick " << t;
      EXPECT_GE(rep.transport.nals_received, last_received[i])
          << "member " << i << " receive path reset at tick " << t;
      last_sent[i] = rep.transport.packets_sent;
      last_received[i] = rep.transport.nals_received;
    }
  }
  mgr.drain();
  const conf::RoomReport rr = mgr.room_report(room);
  EXPECT_GT(rr.speaker_switches, 0u);  // the floor did move
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_GT(last_sent[i], 0u);
    EXPECT_GT(last_received[i], 0u);
    EXPECT_EQ(mgr.report(ids[i]).transport.packets_lost, 0u);  // clean link
  }
}

TEST(ConfServe, RoomLifecycleAndValidation) {
  serve::SessionManager mgr(room_server_config(), conf_env());
  EXPECT_EQ(mgr.open_rooms(), 0u);
  const conf::RoomId room = mgr.create_room();
  EXPECT_TRUE(mgr.has_room(room));
  EXPECT_EQ(mgr.stats().rooms_created, 1u);

  // Unknown room and simulcast-less members are rejected before any
  // membership is recorded.
  EXPECT_THROW(mgr.create_session(member_config(1), room + 99),
               std::out_of_range);
  serve::SessionConfig plain;  // simulcast off
  EXPECT_THROW(mgr.create_session(plain, room), std::invalid_argument);
  EXPECT_EQ(mgr.room(room).members(), 0u);

  const serve::SessionId a = mgr.create_session(member_config(2), room);
  const serve::SessionId b = mgr.create_session(member_config(3), room);
  EXPECT_EQ(mgr.room(room).members(), 2u);
  for (int i = 0; i < 10; ++i) mgr.tick();

  // Closing a member leaves the room; closing the dominant member
  // re-elects without breaking the survivors.
  mgr.close_session(a);
  EXPECT_EQ(mgr.room(room).members(), 1u);
  for (int i = 0; i < 10; ++i) mgr.tick();
  mgr.drain();
  EXPECT_EQ(mgr.room_report(room).dominant, b);
}

// --------------------------------------------------- session-id pinning

TEST(ConfServe, ReportsCarryTheirSessionId) {
  // Multi-session replay comparisons key traces by id, not by vector
  // position — every report must pin the id it belongs to.
  serve::SessionManager mgr(room_server_config(), conf_env());
  const serve::SessionId a = mgr.create_session(member_config(41));
  const serve::SessionId b = mgr.create_session(member_config(42));
  for (int i = 0; i < 12; ++i) mgr.tick();
  mgr.drain();
  EXPECT_NE(a, b);
  EXPECT_EQ(mgr.report(a).session_id, a);
  EXPECT_EQ(mgr.report(b).session_id, b);
  // Survives close + admit: the fresh session reports its own id.
  mgr.close_session(a);
  const serve::SessionId c = mgr.create_session(member_config(43));
  for (int i = 0; i < 5; ++i) mgr.tick();
  mgr.drain();
  EXPECT_EQ(mgr.report(c).session_id, c);
}

// ------------------------------------------- rate controller forced IDRs

TEST(RateControl, ForcedIdrOnZeroBudgetBucketIsANoOp) {
  // A fresh controller has an exactly-on-budget bucket; forgiveness
  // must not conjure debt or credit out of nothing.
  h264::RateControlConfig cfg;
  h264::RateController rc(cfg);
  const int qp0 = rc.next_qp();
  rc.begin_forced_idr();
  EXPECT_EQ(rc.buffer_bits(), 0.0);
  EXPECT_EQ(rc.next_qp(), qp0);
}

TEST(RateControl, ForcedIdrClampsCreditAsWellAsDebt) {
  // A run of tiny pictures builds deep credit; forgiveness clamps it to
  // -reaction * budget so the first pictures of the new GOP cannot
  // splurge unboundedly.
  h264::RateControlConfig cfg;
  h264::RateController rc(cfg);
  const double budget = cfg.target_bps / cfg.fps;
  for (int i = 0; i < 6; ++i) rc.picture_coded(0);
  EXPECT_LT(rc.buffer_bits(), -3.0 * cfg.reaction * budget);
  rc.begin_forced_idr();
  EXPECT_DOUBLE_EQ(rc.buffer_bits(), -cfg.reaction * budget);
}

TEST(RateControl, BackToBackForcedIdrsAreIdempotent) {
  h264::RateControlConfig cfg;
  h264::RateController rc(cfg);
  const double budget = cfg.target_bps / cfg.fps;
  rc.picture_coded(static_cast<std::size_t>(12.0 * budget / 8.0));
  rc.begin_forced_idr();
  const double clamped = rc.buffer_bits();
  const int qp = rc.next_qp();
  // A second (and third) forced IDR with no pictures in between changes
  // nothing: the clamp is a fixed point.
  rc.begin_forced_idr();
  rc.begin_forced_idr();
  EXPECT_DOUBLE_EQ(rc.buffer_bits(), clamped);
  EXPECT_EQ(rc.next_qp(), qp);
  // A switch-storm worst case — fat picture, forced IDR, repeat — keeps
  // the bucket inside the clamp band and QP inside its bounds.
  for (int i = 0; i < 8; ++i) {
    rc.picture_coded(static_cast<std::size_t>(10.0 * budget / 8.0));
    rc.begin_forced_idr();
    EXPECT_LE(rc.buffer_bits(), cfg.reaction * budget + 1e-9);
    EXPECT_GE(rc.buffer_bits(), -cfg.reaction * budget - 1e-9);
    EXPECT_GE(rc.next_qp(), cfg.min_qp);
    EXPECT_LE(rc.next_qp(), cfg.max_qp);
  }
}

TEST(RateControl, ForgivenessThenDownswitchRelaxesQpWithinTheGop) {
  // Forced-IDR forgiveness followed by a downswitch in the SAME GOP:
  // the smaller layer's slices run under budget, so QP must come back
  // down within a few pictures instead of ratcheting on stale debt.
  h264::RateControlConfig cfg;
  h264::RateController rc(cfg);
  const double budget = cfg.target_bps / cfg.fps;
  // Over-budget run on the big layer spikes QP.
  for (int i = 0; i < 4; ++i) {
    rc.picture_coded(static_cast<std::size_t>(4.0 * budget / 8.0));
  }
  const int spiked = rc.next_qp();
  EXPECT_GT(spiked, cfg.initial_qp);
  rc.begin_forced_idr();
  // Downswitched slices: a quarter of the picture budget each.
  for (int i = 0; i < 6; ++i) {
    rc.picture_coded(static_cast<std::size_t>(0.25 * budget / 8.0));
  }
  EXPECT_LT(rc.next_qp(), spiked);
  EXPECT_LT(rc.buffer_bits(), 0.0);  // the bucket swung to credit
}

TEST(RateControl, RejectsDegenerateConfigs) {
  h264::RateControlConfig cfg;
  cfg.target_bps = 0.0;
  EXPECT_THROW(h264::RateController{cfg}, std::invalid_argument);
  cfg = {};
  cfg.fps = 0.0;
  EXPECT_THROW(h264::RateController{cfg}, std::invalid_argument);
  cfg = {};
  cfg.min_qp = 30;
  cfg.max_qp = 20;
  EXPECT_THROW(h264::RateController{cfg}, std::invalid_argument);
}
