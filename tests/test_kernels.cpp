// Kernel-optimization suite (ctest label "kernels", run by
// tools/run_verify.sh kernels): proves the optimized kernels this PR
// introduced against the pre-optimization references they kept callable
// — bit-identity where the discipline demands it (feature workspace
// path, strided deblocker), bounded drift where a numerically
// equivalent algorithm replaced the old one (real-input FFT, blocked
// GEMM).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstddef>
#include <numbers>
#include <random>
#include <stdexcept>
#include <vector>

#include "affect/features.hpp"
#include "affect/speech_synth.hpp"
#include "h264/deblock.hpp"
#include "nn/matrix.hpp"
#include "signal/features.hpp"
#include "signal/fft.hpp"
#include "signal/mel.hpp"
#include "signal/window.hpp"

using namespace affectsys;

namespace {

std::vector<double> make_signal(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> noise(-0.05, 0.05);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    x[i] = std::sin(0.031 * t) + 0.4 * std::sin(0.173 * t + 0.5) +
           0.2 * std::sin(0.011 * t * t / static_cast<double>(n)) + noise(rng);
  }
  return x;
}

}  // namespace

// --- Real-input FFT -------------------------------------------------------

TEST(RfftPlan, MatchesComplexFftAcrossSizes) {
  for (const std::size_t n : {std::size_t{64}, std::size_t{256},
                              std::size_t{1024}, std::size_t{4096}}) {
    const std::vector<double> x = make_signal(n, 7 + static_cast<unsigned>(n));
    const std::vector<std::complex<double>> full = signal::fft_real(x);
    signal::RfftPlan plan(n);
    std::vector<std::complex<double>> onesided(plan.bins());
    std::vector<std::complex<double>> work(plan.work_size());
    plan.execute(x, onesided, work);
    double max_mag = 0.0;
    for (const auto& c : full) max_mag = std::max(max_mag, std::abs(c));
    for (std::size_t k = 0; k <= n / 2; ++k) {
      EXPECT_NEAR(onesided[k].real(), full[k].real(), 1e-9 * max_mag)
          << "n=" << n << " k=" << k;
      EXPECT_NEAR(onesided[k].imag(), full[k].imag(), 1e-9 * max_mag)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(RfftPlan, ZeroPadsNonPowerOfTwoInputs) {
  // 400-sample frame through a 512-point plan: the plan pads internally,
  // the complex path pads explicitly; spectra must agree.
  const std::vector<double> x = make_signal(400, 11);
  signal::RfftPlan plan(512);
  std::vector<std::complex<double>> onesided(plan.bins());
  std::vector<std::complex<double>> work(plan.work_size());
  plan.execute(x, onesided, work);

  std::vector<std::complex<double>> padded(512);
  signal::fft_real(x, padded);
  double max_mag = 0.0;
  for (const auto& c : padded) max_mag = std::max(max_mag, std::abs(c));
  for (std::size_t k = 0; k <= 256; ++k) {
    EXPECT_NEAR(onesided[k].real(), padded[k].real(), 1e-9 * max_mag);
    EXPECT_NEAR(onesided[k].imag(), padded[k].imag(), 1e-9 * max_mag);
  }
}

TEST(RfftPlan, InverseRoundTripsAndSupportsPrefixOutput) {
  constexpr std::size_t kN = 1024;
  const std::vector<double> x = make_signal(kN, 13);
  signal::RfftPlan plan(kN);
  std::vector<std::complex<double>> spec(plan.bins());
  std::vector<std::complex<double>> work(plan.work_size());
  plan.execute(x, spec, work);

  std::vector<double> back(kN);
  plan.inverse(spec, back, work);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-9) << "i=" << i;
  }

  std::vector<double> prefix(10);
  plan.inverse(spec, prefix, work);
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    EXPECT_DOUBLE_EQ(prefix[i], back[i]) << "i=" << i;
  }
}

TEST(RfftPlan, RejectsInvalidSizes) {
  EXPECT_THROW(signal::RfftPlan(0), std::invalid_argument);
  EXPECT_THROW(signal::RfftPlan(1), std::invalid_argument);
  EXPECT_THROW(signal::RfftPlan(96), std::invalid_argument);
}

TEST(Spectra, SpanAndAllocatingPathsAreByteIdentical) {
  const std::vector<double> x = make_signal(400, 17);
  constexpr std::size_t kFft = 512;
  const std::vector<double> alloc_ps = signal::power_spectrum(x, kFft);
  std::vector<double> span_ps(kFft / 2 + 1);
  std::vector<std::complex<double>> work(kFft + 1);
  signal::power_spectrum(x, kFft, span_ps, work);
  for (std::size_t k = 0; k < alloc_ps.size(); ++k) {
    EXPECT_EQ(alloc_ps[k], span_ps[k]) << "k=" << k;  // exact: same kernel
  }

  const std::vector<double> ref = signal::power_spectrum_ref(x, kFft);
  double max_p = 0.0;
  for (double p : ref) max_p = std::max(max_p, p);
  for (std::size_t k = 0; k < ref.size(); ++k) {
    EXPECT_NEAR(span_ps[k], ref[k], 1e-9 * max_p) << "k=" << k;
  }
}

TEST(Autocorrelation, RealPathTracksComplexReference) {
  const std::vector<double> x = make_signal(400, 19);
  const std::vector<double> fast = signal::autocorrelation(x);
  const std::vector<double> ref = signal::autocorrelation_ref(x);
  ASSERT_EQ(fast.size(), ref.size());
  for (std::size_t k = 0; k < fast.size(); ++k) {
    EXPECT_NEAR(fast[k], ref[k], 1e-9 * std::abs(ref[0])) << "k=" << k;
  }

  // Pitch on a strongly periodic signal: both estimators converge on
  // the same frequency.
  std::vector<double> tone(800);
  for (std::size_t i = 0; i < tone.size(); ++i) {
    tone[i] = std::sin(2.0 * std::numbers::pi * 200.0 *
                       static_cast<double>(i) / 16000.0);
  }
  const auto fast_pitch = signal::estimate_pitch(tone, 16000.0, 60.0, 400.0);
  const auto ref_pitch = signal::estimate_pitch_ref(tone, 16000.0, 60.0,
                                                    400.0);
  ASSERT_TRUE(fast_pitch.has_value());
  ASSERT_TRUE(ref_pitch.has_value());
  EXPECT_NEAR(*fast_pitch, *ref_pitch, 1e-6);
  EXPECT_NEAR(*fast_pitch, 200.0, 2.0);
}

// --- Feature pipeline -----------------------------------------------------

TEST(FeaturePipeline, WorkspacePathIsByteIdenticalToAllocatingPath) {
  affect::FeatureConfig fc;
  const affect::FeatureExtractor fx(fc);
  affect::SpeechSynthesizer synth(11);
  affect::FeatureWorkspace ws;  // deliberately reused across windows
  for (int u = 0; u < 3; ++u) {
    const auto utt = synth.synthesize(
        u % 2 ? affect::Emotion::kCalm : affect::Emotion::kAngry, 30 + u, 1.0,
        16000.0, 0.1);
    const nn::Matrix fresh = fx.extract(utt.samples);
    const nn::Matrix& reused = fx.extract_into(utt.samples, ws);
    ASSERT_EQ(fresh.rows(), reused.rows());
    ASSERT_EQ(fresh.cols(), reused.cols());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      ASSERT_EQ(fresh.flat()[i], reused.flat()[i]) << "window " << u
                                                   << " elem " << i;
    }
  }
}

TEST(FeaturePipeline, OptimizedPathTracksPrePrReference) {
  affect::FeatureConfig fc;
  const affect::FeatureExtractor fx(fc);
  affect::SpeechSynthesizer synth(23);
  const auto utt =
      synth.synthesize(affect::Emotion::kAngry, 42, 1.0, 16000.0, 0.1);
  const nn::Matrix opt = fx.extract(utt.samples);
  const nn::Matrix ref = fx.extract_ref(utt.samples);
  ASSERT_EQ(opt.rows(), ref.rows());
  ASSERT_EQ(opt.cols(), ref.cols());
  for (std::size_t i = 0; i < opt.size(); ++i) {
    EXPECT_NEAR(opt.flat()[i], ref.flat()[i], 1e-4) << "elem " << i;
  }
}

TEST(FeaturePipeline, MfccWorkspaceFrameTracksReference) {
  signal::MfccConfig mc;
  const signal::MfccExtractor mfcc(mc);
  const std::vector<double> frame = make_signal(mc.frame_len, 29);
  const std::vector<double> opt = mfcc.extract_frame(frame);
  const std::vector<double> ref = mfcc.extract_frame_ref(frame);
  ASSERT_EQ(opt.size(), ref.size());
  for (std::size_t k = 0; k < opt.size(); ++k) {
    EXPECT_NEAR(opt[k], ref[k], 1e-5) << "k=" << k;
  }
}

TEST(FeaturePipeline, FrameCountMatchesFrameSignal) {
  for (const std::size_t size : {std::size_t{0}, std::size_t{1},
                                 std::size_t{399}, std::size_t{400},
                                 std::size_t{401}, std::size_t{560},
                                 std::size_t{561}, std::size_t{1600}}) {
    for (const std::size_t hop : {std::size_t{160}, std::size_t{400},
                                  std::size_t{500}}) {
      const std::vector<double> x = make_signal(size, 31);
      const auto frames = signal::frame_signal(x, 400, hop);
      EXPECT_EQ(signal::frame_count(size, 400, hop), frames.size())
          << "size=" << size << " hop=" << hop;
      std::vector<double> buf(400);
      for (std::size_t t = 0; t < frames.size(); ++t) {
        signal::copy_frame(x, t, hop, buf);
        EXPECT_EQ(buf, frames[t]) << "size=" << size << " hop=" << hop
                                  << " t=" << t;
      }
    }
  }
}

// --- Deblocking -----------------------------------------------------------

namespace {

/// 64x64 frame (4x4 macroblocks) with gentle gradients plus a jump at
/// every macroblock boundary, and MbInfo mixing every boundary-strength
/// class: intra (bs 4 at MB edges / 3 inside), coded residual (bs 2),
/// motion difference (bs 1) and none (bs 0).
h264::YuvFrame make_mixed_frame(std::vector<h264::MbInfo>& mb_info) {
  h264::YuvFrame frame(64, 64);
  auto fill = [](h264::Plane& p) {
    for (int y = 0; y < p.height; ++y) {
      for (int x = 0; x < p.width; ++x) {
        p.at(x, y) = static_cast<std::uint8_t>(
            (x * 3 + y * 2 + ((x / 16) + (y / 16)) * 25) & 0xFF);
      }
    }
  };
  fill(frame.y);
  fill(frame.cb);
  fill(frame.cr);
  mb_info.assign(static_cast<std::size_t>(frame.mb_count()), h264::MbInfo{});
  const int cols = frame.mb_cols();
  for (int mby = 0; mby < frame.mb_rows(); ++mby) {
    for (int mbx = 0; mbx < cols; ++mbx) {
      h264::MbInfo& mb = mb_info[static_cast<std::size_t>(mby) * cols + mbx];
      const int cls = (mbx + mby) % 4;
      if (cls == 0) {
        mb.intra = true;
      } else if (cls == 1) {
        for (int i = 0; i < 16; i += 3) mb.nonzero[static_cast<size_t>(i)] = true;
      } else if (cls == 2) {
        mb.mv = {4 * mbx, 0};
      }  // cls == 3: all-zero MB -> bs 0 against its own kind
    }
  }
  return frame;
}

}  // namespace

TEST(Deblock, OptimizedMatchesReferenceAcrossAllQps) {
  std::vector<h264::MbInfo> mb_info;
  const h264::YuvFrame base = make_mixed_frame(mb_info);
  std::uint64_t modified_total = 0;
  for (int qp = 0; qp <= 51; ++qp) {
    h264::YuvFrame opt = base;
    h264::YuvFrame ref = base;
    const h264::DeblockStats so = h264::deblock_frame(opt, mb_info, qp);
    const h264::DeblockStats sr =
        h264::deblock_frame_reference(ref, mb_info, qp);
    EXPECT_EQ(so.edges_examined, sr.edges_examined) << "qp=" << qp;
    EXPECT_EQ(so.edges_filtered, sr.edges_filtered) << "qp=" << qp;
    EXPECT_EQ(so.pixels_modified, sr.pixels_modified) << "qp=" << qp;
    EXPECT_EQ(opt.y.data, ref.y.data) << "qp=" << qp;
    EXPECT_EQ(opt.cb.data, ref.cb.data) << "qp=" << qp;
    EXPECT_EQ(opt.cr.data, ref.cr.data) << "qp=" << qp;
    modified_total += so.pixels_modified;
  }
  // The sweep must exercise the filter for real: high QPs hit both the
  // strong (intra MB edges) and normal branches on this texture.
  EXPECT_GT(modified_total, 0u);
}

TEST(Deblock, StrongAndNormalBranchesBothFire) {
  // All-intra at high QP drives bs 4 (strong) on MB edges and bs 3
  // (normal) inside; the optimized filter must modify pixels through
  // both code paths and agree with the reference exactly.
  std::vector<h264::MbInfo> mb_info;
  h264::YuvFrame frame = make_mixed_frame(mb_info);
  for (auto& mb : mb_info) mb = h264::MbInfo{};
  for (auto& mb : mb_info) mb.intra = true;
  h264::YuvFrame ref = frame;
  const h264::DeblockStats so = h264::deblock_frame(frame, mb_info, 51);
  const h264::DeblockStats sr = h264::deblock_frame_reference(ref, mb_info, 51);
  EXPECT_GT(so.pixels_modified, 0u);
  EXPECT_EQ(so.pixels_modified, sr.pixels_modified);
  EXPECT_EQ(frame.y.data, ref.y.data);
  EXPECT_EQ(frame.cb.data, ref.cb.data);
  EXPECT_EQ(frame.cr.data, ref.cr.data);
}

// --- GEMM -----------------------------------------------------------------

namespace {

nn::Matrix make_matrix(std::size_t rows, std::size_t cols, unsigned seed,
                       bool integer) {
  nn::Matrix m(rows, cols);
  std::mt19937 rng(seed);
  if (integer) {
    std::uniform_int_distribution<int> d(-4, 4);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        m(r, c) = static_cast<float>(d(rng));
      }
    }
  } else {
    std::uniform_real_distribution<float> d(-1.0f, 1.0f);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) m(r, c) = d(rng);
    }
  }
  return m;
}

}  // namespace

TEST(Gemm, MicroKernelIsExactOnSmallIntegers) {
  // Small integer entries make every partial sum exactly representable,
  // so any accumulation order gives the same floats: the micro-kernel
  // must equal the reference bit for bit, including the 5x7x9 and 1x1
  // tail-only shapes.
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{5, 7, 9}, {1, 1, 1}, {4, 64, 16}, {17, 33, 5}, {64, 64, 64}};
  unsigned seed = 100;
  for (const auto& s : shapes) {
    const nn::Matrix a = make_matrix(s.m, s.k, seed++, true);
    const nn::Matrix b = make_matrix(s.k, s.n, seed++, true);
    const nn::Matrix opt = a.matmul(b);
    const nn::Matrix ref = a.matmul_reference(b);
    for (std::size_t i = 0; i < opt.size(); ++i) {
      ASSERT_EQ(opt.flat()[i], ref.flat()[i])
          << s.m << "x" << s.k << "x" << s.n << " elem " << i;
    }
  }
}

TEST(Gemm, MicroKernelTracksReferenceOnRealValues) {
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{5, 7, 9}, {3, 100, 40}, {63, 65, 31}, {128, 128, 128}};
  unsigned seed = 200;
  for (const auto& s : shapes) {
    const nn::Matrix a = make_matrix(s.m, s.k, seed++, false);
    const nn::Matrix b = make_matrix(s.k, s.n, seed++, false);
    const nn::Matrix opt = a.matmul(b);
    const nn::Matrix ref = a.matmul_reference(b);
    const float tol = 1e-5f * static_cast<float>(s.k);
    for (std::size_t i = 0; i < opt.size(); ++i) {
      ASSERT_NEAR(opt.flat()[i], ref.flat()[i], tol)
          << s.m << "x" << s.k << "x" << s.n << " elem " << i;
    }
  }
}

TEST(Gemm, MatmulTransposedUnchangedByColumnBlocking) {
  // matmul_transposed kept one scalar accumulator per element over the
  // full ascending k range, so its 4-column blocking is bit-exact for
  // arbitrary float data, tails included.
  const nn::Matrix a = make_matrix(7, 33, 300, false);
  const nn::Matrix b = make_matrix(10, 33, 301, false);
  const nn::Matrix blocked = a.matmul_transposed(b);
  ASSERT_EQ(blocked.rows(), 7u);
  ASSERT_EQ(blocked.cols(), 10u);
  for (std::size_t r = 0; r < 7; ++r) {
    for (std::size_t c = 0; c < 10; ++c) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < 33; ++k) acc += a(r, k) * b(c, k);
      ASSERT_EQ(blocked(r, c), acc) << r << "," << c;
    }
  }
}
