// Unit proofs for the serve layer's scheduling/memory primitives: the
// hierarchical timer wheel (due-tick exactness, ascending-key
// determinism, cascade correctness, zero steady-state allocation) and
// the refcounted buffer pool (lifecycle, free-list reuse, exhaustion
// fallback, cross-thread release).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "core/buffer_pool.hpp"
#include "core/timer_wheel.hpp"
#include "obs/alloc_hooks.hpp"

namespace core = affectsys::core;
namespace obs = affectsys::obs;

// ------------------------------------------------------------ TimerWheel

TEST(TimerWheel, FiresAtExactTickInAscendingKeyOrder) {
  core::TimerWheel wheel;
  // Scheduled out of key order, on purpose.
  wheel.schedule_at(3, 42);
  wheel.schedule_at(3, 7);
  wheel.schedule_at(3, 1000);
  wheel.schedule_at(5, 2);
  EXPECT_EQ(wheel.scheduled(), 4u);

  std::vector<std::uint64_t> due;
  for (std::uint64_t t = 0; t < 8; ++t) {
    due.clear();
    wheel.collect(t, due);
    if (t == 3) {
      ASSERT_EQ(due.size(), 3u);
      EXPECT_EQ(due[0], 7u);
      EXPECT_EQ(due[1], 42u);
      EXPECT_EQ(due[2], 1000u);
    } else if (t == 5) {
      ASSERT_EQ(due.size(), 1u);
      EXPECT_EQ(due[0], 2u);
    } else {
      EXPECT_TRUE(due.empty()) << "spurious fire at tick " << t;
    }
  }
  EXPECT_EQ(wheel.scheduled(), 0u);
}

TEST(TimerWheel, LateScheduleFiresOnNextCollect) {
  core::TimerWheel wheel;
  std::vector<std::uint64_t> due;
  for (std::uint64_t t = 0; t < 10; ++t) {
    due.clear();
    wheel.collect(t, due);
  }
  wheel.schedule_at(4, 99);  // already in the past
  due.clear();
  wheel.collect(10, due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 99u);
}

TEST(TimerWheel, CascadesAcrossLevels) {
  core::TimerWheel wheel;
  // Level 1 (256..65535 ticks out) and level 2 (65536+ ticks out)
  // entries must fire at exactly their due tick after cascading.
  const std::uint64_t kLevel1 = 300;
  const std::uint64_t kLevel2 = 70000;
  wheel.schedule_at(kLevel1, 11);
  wheel.schedule_at(kLevel2, 22);

  std::vector<std::uint64_t> due;
  for (std::uint64_t t = 0; t <= kLevel2; ++t) {
    due.clear();
    wheel.collect(t, due);
    if (t == kLevel1) {
      ASSERT_EQ(due.size(), 1u);
      EXPECT_EQ(due[0], 11u);
    } else if (t == kLevel2) {
      ASSERT_EQ(due.size(), 1u);
      EXPECT_EQ(due[0], 22u);
    } else {
      ASSERT_TRUE(due.empty()) << "spurious fire at tick " << t;
    }
  }
}

TEST(TimerWheel, SteadyStateScheduleFireCycleDoesNotAllocate) {
  core::TimerWheel wheel;
  std::vector<std::uint64_t> due;
  due.reserve(64);
  // Warm: populate every slot vector the cycle will touch.
  std::uint64_t t = 0;
  for (; t < 512; ++t) {
    wheel.schedule_at(t + 1, t % 16);
    due.clear();
    wheel.collect(t, due);
  }
  const std::uint64_t before = obs::alloc_count();
  for (; t < 1024; ++t) {
    wheel.schedule_at(t + 1, t % 16);
    due.clear();
    wheel.collect(t, due);
  }
  if (obs::alloc_tracking_enabled()) {
    EXPECT_EQ(obs::alloc_count() - before, 0u);
  }
}

// ------------------------------------------------------------ BufferPool

TEST(BufferPool, RefcountLifecycleAndFreeListReuse) {
  core::BufferPool pool(core::BufferPoolConfig{256, 4});
  core::BufferRef a = pool.acquire(100);
  ASSERT_TRUE(a.pooled());
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(pool.stats().in_use, 1u);

  std::uint8_t* const ptr = a.data();
  {
    core::BufferRef b = a;  // second handle, same block
    EXPECT_EQ(a.use_count(), 2u);
    EXPECT_EQ(b.data(), ptr);
    a.reset();
    // b still pins the block.
    EXPECT_EQ(pool.stats().in_use, 1u);
    EXPECT_EQ(b.use_count(), 1u);
  }
  // Last handle gone: block returned to the free list...
  EXPECT_EQ(pool.stats().in_use, 0u);
  // ...and the next acquire reuses it (LIFO free list).
  core::BufferRef c = pool.acquire(64);
  EXPECT_EQ(c.data(), ptr);
  EXPECT_EQ(pool.stats().heap_fallbacks, 0u);
}

TEST(BufferPool, ExhaustionAndOversizeFallBackToHeap) {
  core::BufferPool pool(core::BufferPoolConfig{128, 2});
  core::BufferRef a = pool.acquire(10);
  core::BufferRef b = pool.acquire(10);
  EXPECT_TRUE(a.pooled());
  EXPECT_TRUE(b.pooled());

  core::BufferRef c = pool.acquire(10);  // pool empty
  EXPECT_FALSE(c.pooled());
  EXPECT_EQ(c.size(), 10u);
  EXPECT_EQ(pool.stats().heap_fallbacks, 1u);

  core::BufferRef d = pool.acquire(4096);  // wider than a block
  EXPECT_FALSE(d.pooled());
  EXPECT_EQ(d.size(), 4096u);

  // Heap-backed refs behave identically (write/read/release).
  std::memset(c.data(), 0xAB, c.size());
  EXPECT_EQ(c.span()[9], 0xAB);
  a.reset();
  core::BufferRef e = pool.acquire(10);  // freed block available again
  EXPECT_TRUE(e.pooled());
  EXPECT_EQ(pool.stats().high_water, 2u);
}

TEST(BufferPool, PooledAndHeapBuffersCarryIdenticalBytes) {
  core::BufferPool pool(core::BufferPoolConfig{512, 2});
  std::vector<std::uint8_t> src(300);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>(i * 7);
  }
  core::BufferRef pooled = pool.acquire(src.size());
  core::BufferRef heap = core::BufferRef::heap(src.size());
  std::memcpy(pooled.data(), src.data(), src.size());
  std::memcpy(heap.data(), src.data(), src.size());
  ASSERT_EQ(pooled.size(), heap.size());
  EXPECT_EQ(std::memcmp(pooled.data(), heap.data(), src.size()), 0);
}

// Blocks released from worker threads while the owner thread keeps
// acquiring: the refcount is atomic and the free list mutex-guarded, so
// a TSan build of this test is the data-race proof.
TEST(BufferPool, CrossThreadReleaseIsSafe) {
  core::BufferPool pool(core::BufferPoolConfig{256, 64});
  constexpr int kThreads = 4;
  constexpr int kRounds = 500;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&pool] {
      for (int i = 0; i < kRounds; ++i) {
        core::BufferRef r = pool.acquire(128);
        r.data()[0] = static_cast<std::uint8_t>(i);
        core::BufferRef copy = r;  // bump/drop the refcount concurrently
        r.reset();
        copy.reset();
      }
    });
  }
  for (std::thread& th : workers) th.join();
  EXPECT_EQ(pool.stats().in_use, 0u);
  EXPECT_EQ(pool.stats().acquires,
            static_cast<std::uint64_t>(kThreads) * kRounds);
}
