// Tests for workload/trace record & replay.
#include <gtest/gtest.h>

#include <sstream>

#include "affect/signal_io.hpp"
#include "android/catalog.hpp"
#include "android/replay.hpp"

namespace affect = affectsys::affect;
namespace android = affectsys::android;

TEST(UsageReplay, RoundTrip) {
  std::vector<android::UsageEvent> events = {
      {0.5, 3, 12.25, affect::Emotion::kExcited},
      {12.75, 17, 4.0, affect::Emotion::kExcited},
      {16.75, 3, 30.5, affect::Emotion::kCalm},
  };
  std::stringstream ss;
  android::save_usage_events(ss, events);
  const auto loaded = android::load_usage_events(ss);
  ASSERT_EQ(loaded.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].time_s, events[i].time_s);
    EXPECT_EQ(loaded[i].app, events[i].app);
    EXPECT_DOUBLE_EQ(loaded[i].dwell_s, events[i].dwell_s);
    EXPECT_EQ(loaded[i].emotion, events[i].emotion);
  }
}

TEST(UsageReplay, GeneratedSequenceRoundTrips) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  android::MonkeyScript monkey(catalog, {10.0, 5});
  affect::EmotionTimeline tl;
  tl.segments = {{0.0, 300.0, affect::Emotion::kExcited}};
  const auto events = monkey.generate(tl);
  std::stringstream ss;
  android::save_usage_events(ss, events);
  const auto loaded = android::load_usage_events(ss);
  ASSERT_EQ(loaded.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(loaded[i].app, events[i].app);
  }
}

TEST(UsageReplay, RejectsMalformedInput) {
  {
    std::stringstream ss("not a header\n1,2,3,happy\n");
    EXPECT_THROW(android::load_usage_events(ss), std::runtime_error);
  }
  {
    std::stringstream ss("time_s,app,dwell_s,emotion\n1,2,3,bogus_emotion\n");
    EXPECT_THROW(android::load_usage_events(ss), std::runtime_error);
  }
  {
    std::stringstream ss("time_s,app,dwell_s,emotion\n1,2\n");
    EXPECT_THROW(android::load_usage_events(ss), std::runtime_error);
  }
}

TEST(TraceIo, RoundTripPreservesRateAndSamples) {
  std::vector<double> trace = {2.0, 2.125, 2.5, 1.75, 2.0625};
  std::stringstream ss;
  affect::save_trace_csv(ss, trace, 4.0);
  double rate = 0.0;
  const auto loaded = affect::load_trace_csv(ss, &rate);
  EXPECT_EQ(rate, 4.0);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i], trace[i]);
  }
}

TEST(TraceIo, SclTraceSurvivesArchiving) {
  affect::SclConfig cfg;
  affect::SclGenerator gen(cfg);
  const auto tl = affect::uulmmac_session_timeline();
  const auto trace = gen.generate(tl);
  std::stringstream ss;
  affect::save_trace_csv(ss, trace, cfg.sample_rate_hz);
  double rate = 0.0;
  const auto loaded = affect::load_trace_csv(ss, &rate);
  ASSERT_EQ(loaded.size(), trace.size());
  // A classifier calibrated on the replayed trace behaves identically.
  affect::SclEmotionEstimator a, b;
  a.calibrate(trace, cfg.sample_rate_hz, tl);
  b.calibrate(loaded, rate, tl);
  const auto win = static_cast<std::size_t>(30.0 * rate);
  for (std::size_t start = 0; start + win <= trace.size();
       start += 7 * win) {
    EXPECT_EQ(a.classify({trace.data() + start, win}),
              b.classify({loaded.data() + start, win}));
  }
}

TEST(TimelineIo, RoundTrip) {
  const auto tl = affect::uulmmac_session_timeline();
  std::stringstream ss;
  affect::save_timeline_csv(ss, tl);
  const auto loaded = affect::load_timeline_csv(ss);
  ASSERT_EQ(loaded.segments.size(), tl.segments.size());
  for (std::size_t i = 0; i < tl.segments.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.segments[i].start_s, tl.segments[i].start_s);
    EXPECT_DOUBLE_EQ(loaded.segments[i].end_s, tl.segments[i].end_s);
    EXPECT_EQ(loaded.segments[i].emotion, tl.segments[i].emotion);
  }
}

TEST(TimelineIo, RejectsGarbage) {
  std::stringstream ss("garbage");
  EXPECT_THROW(affect::load_timeline_csv(ss), std::runtime_error);
}
