// Tests for the emotional app manager core: affect table, rank generator,
// emotional kill policy, manager experiment and the system controller.
#include <gtest/gtest.h>

#include "core/affect_table.hpp"
#include "core/controller.hpp"
#include "core/emotional_policy.hpp"
#include "core/manager_experiment.hpp"

namespace core = affectsys::core;
namespace android = affectsys::android;
namespace affect = affectsys::affect;
namespace adaptive = affectsys::adaptive;

// -------------------------------------------------------------- affect table

TEST(AffectTable, ObserveAccumulates) {
  core::AppAffectTable table;
  EXPECT_FALSE(table.knows(affect::Emotion::kExcited));
  table.observe(affect::Emotion::kExcited, 1);
  table.observe(affect::Emotion::kExcited, 1);
  table.observe(affect::Emotion::kExcited, 2);
  EXPECT_TRUE(table.knows(affect::Emotion::kExcited));
  EXPECT_GT(table.score(affect::Emotion::kExcited, 1),
            table.score(affect::Emotion::kExcited, 2));
  EXPECT_EQ(table.score(affect::Emotion::kCalm, 1), 0.0);
}

TEST(AffectTable, RankIsSortedByScore) {
  core::AppAffectTable table;
  table.observe(affect::Emotion::kCalm, 5, 1.0);
  table.observe(affect::Emotion::kCalm, 6, 3.0);
  table.observe(affect::Emotion::kCalm, 7, 2.0);
  const auto rank = table.rank(affect::Emotion::kCalm);
  ASSERT_EQ(rank.size(), 3u);
  EXPECT_EQ(rank[0], 6u);
  EXPECT_EQ(rank[1], 7u);
  EXPECT_EQ(rank[2], 5u);
}

TEST(AffectTable, ProfileLearningFavoursProfileCategories) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  core::AppAffectTable table;
  table.learn_from_profile(affect::Emotion::kExcited, android::subject(3),
                           catalog);
  // Subject 3 (excited) uses calling heavily and calculator essentially
  // never.
  const auto calling =
      android::apps_in_category(catalog, android::AppCategory::kCalling);
  const auto calc =
      android::apps_in_category(catalog, android::AppCategory::kCalculator);
  ASSERT_FALSE(calling.empty());
  ASSERT_FALSE(calc.empty());
  double calling_best = 0.0;
  for (auto id : calling) {
    calling_best =
        std::max(calling_best, table.score(affect::Emotion::kExcited, id));
  }
  for (auto id : calc) {
    EXPECT_LT(table.score(affect::Emotion::kExcited, id), calling_best);
  }
}

TEST(AffectTable, ScoresArePerEmotion) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  core::AppAffectTable table;
  table.learn_from_profile(affect::Emotion::kExcited, android::subject(3),
                           catalog);
  table.learn_from_profile(affect::Emotion::kCalm, android::subject(4),
                           catalog);
  // Rankings must differ between the two emotions (different profiles).
  EXPECT_NE(table.rank(affect::Emotion::kExcited),
            table.rank(affect::Emotion::kCalm));
}

// ---------------------------------------------------------- emotional policy

TEST(EmotionalPolicy, KillsLowestScoreForCurrentEmotion) {
  core::AppAffectTable table;
  table.observe(affect::Emotion::kExcited, 1, 10.0);
  table.observe(affect::Emotion::kExcited, 2, 1.0);
  table.observe(affect::Emotion::kExcited, 3, 5.0);
  core::EmotionalKillPolicy policy(table);
  policy.set_emotion(affect::Emotion::kExcited);
  std::vector<android::VictimCandidate> c = {
      {1, 0.0, 0.0, 100, 1}, {2, 1.0, 1.0, 100, 1}, {3, 2.0, 2.0, 100, 1}};
  EXPECT_EQ(policy.select_victim(c), 2u);
}

TEST(EmotionalPolicy, RerankOnEmotionChange) {
  core::AppAffectTable table;
  table.observe(affect::Emotion::kExcited, 1, 10.0);
  table.observe(affect::Emotion::kExcited, 2, 1.0);
  table.observe(affect::Emotion::kCalm, 1, 1.0);
  table.observe(affect::Emotion::kCalm, 2, 10.0);
  core::EmotionalKillPolicy policy(table);
  std::vector<android::VictimCandidate> c = {{1, 0.0, 0.0, 100, 1},
                                             {2, 1.0, 1.0, 100, 1}};
  policy.set_emotion(affect::Emotion::kExcited);
  EXPECT_EQ(policy.select_victim(c), 2u);
  policy.set_emotion(affect::Emotion::kCalm);
  EXPECT_EQ(policy.select_victim(c), 1u);
}

TEST(EmotionalPolicy, UnknownEmotionDefersToFallback) {
  core::AppAffectTable table;  // empty: knows() nothing
  core::EmotionalKillPolicy policy(table);
  policy.set_emotion(affect::Emotion::kSad);
  std::vector<android::VictimCandidate> c = {{1, 0.0, 0.0, 100, 1}};
  EXPECT_EQ(policy.select_victim(c), std::nullopt);
}

// -------------------------------------------------------- manager experiment

TEST(ManagerExperiment, DefaultTimelineIsExcitedThenCalm) {
  const core::ManagerExperimentConfig cfg;
  ASSERT_EQ(cfg.timeline.segments.size(), 2u);
  EXPECT_EQ(cfg.timeline.segments[0].emotion, affect::Emotion::kExcited);
  EXPECT_EQ(cfg.timeline.segments[0].end_s, 12.0 * 60.0);
  EXPECT_EQ(cfg.timeline.segments[1].emotion, affect::Emotion::kCalm);
  EXPECT_EQ(cfg.timeline.duration_s(), 20.0 * 60.0);
}

TEST(ManagerExperiment, ProposedBeatsBaseline) {
  core::ManagerExperimentConfig cfg;
  const auto res = core::run_manager_experiment(cfg);
  // Identical usage sequence under both policies.
  EXPECT_FALSE(res.events.empty());
  EXPECT_GT(res.baseline.cold_starts, 0u);
  // Fig 10: the emotion-driven manager loads less memory and spends less
  // loading time than the FIFO default.
  EXPECT_GT(res.memory_saving(), 0.0);
  EXPECT_GT(res.time_saving(), 0.0);
  EXPECT_LT(res.memory_saving(), 0.5);
  EXPECT_LT(res.time_saving(), 0.5);
}

TEST(ManagerExperiment, SavingsRobustAcrossSeeds) {
  double worst_mem = 1.0;
  for (unsigned seed : {1u, 2u, 3u}) {
    core::ManagerExperimentConfig cfg;
    cfg.monkey.seed = seed;
    const auto res = core::run_manager_experiment(cfg);
    worst_mem = std::min(worst_mem, res.memory_saving());
  }
  EXPECT_GT(worst_mem, 0.05);
}

TEST(ManagerExperiment, AlternativeBaselines) {
  for (const char* baseline : {"lru", "frequency"}) {
    core::ManagerExperimentConfig cfg;
    cfg.baseline = baseline;
    const auto res = core::run_manager_experiment(cfg);
    EXPECT_GT(res.baseline.cold_starts, 0u) << baseline;
  }
  EXPECT_THROW(core::make_baseline_policy("bogus"), std::invalid_argument);
}

TEST(ManagerExperiment, OnlineLearnedTableAlsoSaves) {
  core::ManagerExperimentConfig cfg;
  cfg.table_source = core::AffectTableSource::kOnlineWarmup;
  const auto res = core::run_manager_experiment(cfg);
  // A table learned from finite warm-up observation should still beat the
  // FIFO baseline (possibly by less than the analytic oracle).
  EXPECT_GT(res.memory_saving(), 0.0);
}

TEST(ManagerExperiment, TracesRecordEmotionChange) {
  core::ManagerExperimentConfig cfg;
  const auto res = core::run_manager_experiment(cfg);
  EXPECT_GE(res.proposed_trace.count(android::TraceEventType::kEmotionChange),
            1u);
}

// ----------------------------------------------------------------- controller

TEST(Controller, RoutesEmotionToVideoModeAndAppPolicy) {
  core::AppAffectTable table;
  table.observe(affect::Emotion::kDistracted, 1);
  core::EmotionalKillPolicy app_policy(table);

  affect::StreamConfig sc;
  sc.vote_window = 1;
  sc.min_dwell_s = 0.0;
  core::SystemController ctrl(sc, adaptive::AffectVideoPolicy{}, &app_policy);

  const auto ev = ctrl.on_classification(1.0, affect::Emotion::kDistracted);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->emotion, affect::Emotion::kDistracted);
  EXPECT_EQ(ev->video_mode, adaptive::DecoderMode::kCombined);
  EXPECT_EQ(app_policy.emotion(), affect::Emotion::kDistracted);
  EXPECT_EQ(ctrl.current_video_mode(), adaptive::DecoderMode::kCombined);
}

TEST(Controller, HysteresisLimitsModeChanges) {
  affect::StreamConfig sc;
  sc.vote_window = 1;
  sc.min_dwell_s = 30.0;
  core::SystemController ctrl(sc, adaptive::AffectVideoPolicy{});
  ctrl.on_classification(0.0, affect::Emotion::kTense);
  // Rapid flip-flopping within the dwell window is ignored.
  for (int i = 1; i < 10; ++i) {
    const auto e = i % 2 ? affect::Emotion::kRelaxed : affect::Emotion::kTense;
    ctrl.on_classification(static_cast<double>(i), e);
  }
  EXPECT_EQ(ctrl.mode_changes(), 1u);
  EXPECT_EQ(ctrl.current_emotion(), affect::Emotion::kTense);
}

TEST(Controller, ConfidenceGateDropsGuesses) {
  affect::StreamConfig sc;
  sc.vote_window = 1;
  sc.min_dwell_s = 0.0;
  core::SystemController ctrl(sc, adaptive::AffectVideoPolicy{});
  ctrl.set_min_confidence(0.6f);
  // Low-confidence labels never reach the stream.
  EXPECT_FALSE(
      ctrl.on_classification(0.0, affect::Emotion::kAngry, 0.3f).has_value());
  EXPECT_FALSE(
      ctrl.on_classification(1.0, affect::Emotion::kAngry, 0.59f).has_value());
  EXPECT_EQ(ctrl.gated_count(), 2u);
  EXPECT_EQ(ctrl.current_emotion(), affect::Emotion::kNeutral);
  // A confident label acts normally.
  EXPECT_TRUE(
      ctrl.on_classification(2.0, affect::Emotion::kAngry, 0.9f).has_value());
  EXPECT_EQ(ctrl.current_emotion(), affect::Emotion::kAngry);
}

TEST(Controller, ObserversNotified) {
  affect::StreamConfig sc;
  sc.vote_window = 1;
  sc.min_dwell_s = 0.0;
  core::SystemController ctrl(sc, adaptive::AffectVideoPolicy{});
  int notifications = 0;
  ctrl.subscribe([&](const core::ControllerEvent&) { ++notifications; });
  ctrl.on_classification(0.0, affect::Emotion::kHappy);
  ctrl.on_classification(1.0, affect::Emotion::kHappy);  // no change
  ctrl.on_classification(2.0, affect::Emotion::kSad);
  EXPECT_EQ(notifications, 2);
}
