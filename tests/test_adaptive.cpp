// Tests for the affect-adaptive decoder layer: Input Selector semantics,
// Pre-store Buffer handshake, mode configs and the playback simulation.
#include <gtest/gtest.h>

#include <random>

#include "adaptive/input_selector.hpp"
#include "adaptive/modes.hpp"
#include "adaptive/playback.hpp"
#include "adaptive/prestore.hpp"
#include "h264/encoder.hpp"
#include "h264/testvideo.hpp"

namespace adaptive = affectsys::adaptive;
namespace affect = affectsys::affect;
namespace h264 = affectsys::h264;

namespace {

/// Encoded NAL units of a small mixed clip (busy + quiet halves).
std::vector<h264::NalUnit> encoded_units() {
  h264::VideoConfig vc;
  vc.width = 64;
  vc.height = 64;
  vc.frames = 24;
  vc.noise = 2.5;
  vc.motion = 1.2;
  vc.detail = 0.6;
  const auto video = h264::generate_mixed_video(vc, 0.5);
  h264::EncoderConfig ec;
  ec.width = vc.width;
  ec.height = vc.height;
  ec.qp = 24;
  ec.gop_size = 12;
  ec.b_frames = 2;
  h264::Encoder enc(ec);
  auto units = enc.parameter_sets();
  for (auto& pic : enc.encode(video)) units.push_back(std::move(pic.nal));
  return units;
}

}  // namespace

// ------------------------------------------------------------ InputSelector

TEST(InputSelector, NeverDeletesIdrOrParameterSets) {
  adaptive::InputSelector sel({100000, 1});  // delete everything eligible
  const auto kept = sel.filter(encoded_units());
  bool has_sps = false, has_pps = false, has_idr = false;
  for (const auto& nal : kept) {
    has_sps |= nal.type == h264::NalType::kSps;
    has_pps |= nal.type == h264::NalType::kPps;
    has_idr |= nal.type == h264::NalType::kSliceIdr;
  }
  EXPECT_TRUE(has_sps);
  EXPECT_TRUE(has_pps);
  EXPECT_TRUE(has_idr);
  // With a huge S_th every P/B slice is a candidate and f=1 deletes all.
  EXPECT_EQ(sel.stats().deleted, sel.stats().candidates);
  EXPECT_GT(sel.stats().deleted, 0u);
}

TEST(InputSelector, SthZeroDeletesNothing) {
  adaptive::InputSelector sel({0, 1});
  const auto units = encoded_units();
  const auto kept = sel.filter(units);
  EXPECT_EQ(kept.size(), units.size());
  EXPECT_EQ(sel.stats().deleted, 0u);
}

TEST(InputSelector, FrequencyControlsDeletionFraction) {
  const auto units = encoded_units();
  adaptive::InputSelector all({100000, 1});
  all.filter(units);
  const std::size_t m = all.stats().candidates;
  ASSERT_GT(m, 3u);
  for (unsigned f : {2u, 3u, 4u}) {
    adaptive::InputSelector sel({100000, f});
    sel.filter(units);
    // Deleted = ceil(m / f) by the "first of each group of f" rule.
    EXPECT_EQ(sel.stats().deleted, (m + f - 1) / f) << "f=" << f;
  }
}

TEST(InputSelector, LargerSthDeletesMore) {
  const auto units = encoded_units();
  std::size_t prev = 0;
  for (std::size_t s_th : {60u, 140u, 400u, 100000u}) {
    adaptive::InputSelector sel({s_th, 1});
    sel.filter(units);
    EXPECT_GE(sel.stats().deleted, prev) << "s_th=" << s_th;
    prev = sel.stats().deleted;
  }
}

TEST(InputSelector, StatsByteAccounting) {
  adaptive::InputSelector sel({140, 1});
  const auto units = encoded_units();
  std::size_t total_bytes = 0;
  for (const auto& u : units) total_bytes += u.byte_size();
  sel.filter(units);
  EXPECT_EQ(sel.stats().bytes_in, total_bytes);
  EXPECT_LE(sel.stats().bytes_out, total_bytes);
  EXPECT_EQ(sel.stats().units_in, units.size());
  EXPECT_EQ(sel.stats().units_out + sel.stats().deleted, units.size());
}

TEST(InputSelector, FilteredStreamStillDecodes) {
  adaptive::InputSelector sel({140, 1});
  const auto filtered = sel.filter_annexb(h264::pack_annexb(encoded_units()));
  affectsys::h264::Decoder dec;
  EXPECT_NO_THROW(dec.decode_annexb(filtered));
  EXPECT_GT(dec.activity().frames_decoded, 0u);
}

TEST(InputSelector, RejectsZeroFrequency) {
  EXPECT_THROW(adaptive::InputSelector({140, 0}), std::invalid_argument);
}

// ------------------------------------------------------------- PreStoreBuffer

TEST(PreStore, CapacityMatchesPaperGeometry) {
  // 128 words x 16 bits = 256 bytes.
  EXPECT_EQ(adaptive::PreStoreBuffer::kWords, 128u);
  EXPECT_EQ(adaptive::PreStoreBuffer::kCapacityBytes, 256u);
}

TEST(PreStore, FifoOrderPreserved) {
  adaptive::PreStoreBuffer buf;
  std::vector<std::uint8_t> data(200);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  EXPECT_EQ(buf.write(data), 200u);
  const auto out = buf.read(200);
  EXPECT_EQ(out, data);
  EXPECT_TRUE(buf.empty());
}

TEST(PreStore, RefusesOverfillAndCountsStall) {
  adaptive::PreStoreBuffer buf;
  std::vector<std::uint8_t> big(300, 7);
  EXPECT_EQ(buf.write(big), 256u);
  EXPECT_TRUE(buf.full());
  EXPECT_EQ(buf.stats().producer_stalls, 1u);
}

TEST(PreStore, EmptyReadCountsStall) {
  adaptive::PreStoreBuffer buf;
  EXPECT_TRUE(buf.read(16).empty());
  EXPECT_EQ(buf.stats().consumer_stalls, 1u);
}

TEST(PreStore, RewindDeletesUncommittedBytes) {
  adaptive::PreStoreBuffer buf;
  std::vector<std::uint8_t> data(100, 1);
  buf.write(data);
  EXPECT_TRUE(buf.rewind(40));  // drop the last 40 (a deleted NAL unit)
  EXPECT_EQ(buf.size_bytes(), 60u);
  EXPECT_FALSE(buf.rewind(61));  // cannot rewind past what is pending
  EXPECT_EQ(buf.stats().rewinds, 1u);
}

TEST(PreStore, WrapAroundIntegrity) {
  adaptive::PreStoreBuffer buf;
  std::mt19937 rng(9);
  std::uniform_int_distribution<int> size_d(1, 60);
  std::vector<std::uint8_t> sent, received;
  std::uint8_t next = 0;
  // Push/pull random chunks across many wraps; data must come out intact.
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<std::uint8_t> chunk(static_cast<std::size_t>(size_d(rng)));
    for (auto& b : chunk) b = next++;
    const std::size_t accepted = buf.write(chunk);
    sent.insert(sent.end(), chunk.begin(), chunk.begin() + static_cast<long>(accepted));
    next = static_cast<std::uint8_t>(sent.empty() ? 0 : sent.back() + 1);
    const auto out = buf.read(static_cast<std::size_t>(size_d(rng)));
    received.insert(received.end(), out.begin(), out.end());
  }
  const auto rest = buf.read(adaptive::PreStoreBuffer::kCapacityBytes);
  received.insert(received.end(), rest.begin(), rest.end());
  EXPECT_EQ(received, sent);
}

TEST(PreStore, StreamSimulationDeliversEverything) {
  std::vector<std::uint8_t> stream(10000);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    stream[i] = static_cast<std::uint8_t>(i * 31);
  }
  const auto stats = adaptive::simulate_stream_through(stream, 64, 48);
  // words = bytes/2 (with rounding per chunk); every byte flows through.
  EXPECT_GE(stats.words_read * 2, stream.size());
}

// --------------------------------------------------------------------- modes

TEST(Modes, ConfigsMatchSemantics) {
  const auto std_cfg = adaptive::mode_config(adaptive::DecoderMode::kStandard);
  EXPECT_TRUE(std_cfg.deblock);
  EXPECT_FALSE(std_cfg.delete_nals);
  const auto del = adaptive::mode_config(adaptive::DecoderMode::kDeletion);
  EXPECT_TRUE(del.deblock);
  EXPECT_TRUE(del.delete_nals);
  const auto dfoff = adaptive::mode_config(adaptive::DecoderMode::kDeblockOff);
  EXPECT_FALSE(dfoff.deblock);
  EXPECT_FALSE(dfoff.delete_nals);
  const auto comb = adaptive::mode_config(adaptive::DecoderMode::kCombined);
  EXPECT_FALSE(comb.deblock);
  EXPECT_TRUE(comb.delete_nals);
  EXPECT_EQ(comb.selector.s_th, 140u);
  EXPECT_EQ(comb.selector.f, 1u);
}

TEST(Modes, DefaultPolicyMatchesPaperCaseStudy) {
  const adaptive::AffectVideoPolicy policy;
  EXPECT_EQ(policy.mode_for(affect::Emotion::kDistracted),
            adaptive::DecoderMode::kCombined);
  EXPECT_EQ(policy.mode_for(affect::Emotion::kConcentrated),
            adaptive::DecoderMode::kDeletion);
  EXPECT_EQ(policy.mode_for(affect::Emotion::kTense),
            adaptive::DecoderMode::kStandard);
  EXPECT_EQ(policy.mode_for(affect::Emotion::kRelaxed),
            adaptive::DecoderMode::kDeblockOff);
}

TEST(Modes, PolicyIsReprogrammable) {
  adaptive::AffectVideoPolicy policy;
  policy.set_mode(affect::Emotion::kRelaxed, adaptive::DecoderMode::kCombined);
  EXPECT_EQ(policy.mode_for(affect::Emotion::kRelaxed),
            adaptive::DecoderMode::kCombined);
}

// ------------------------------------------------------------------ playback

class PlaybackFixture : public ::testing::Test {
 protected:
  static adaptive::AdaptiveDecoderSystem& system() {
    // The prototype clip profile is expensive; share it across tests.
    static adaptive::AdaptiveDecoderSystem sys{[] {
      adaptive::PlaybackConfig cfg;
      cfg.video.frames = 24;  // smaller clip for tests
      return cfg;
    }()};
    return sys;
  }
};

TEST_F(PlaybackFixture, ModePowerOrderingMatchesFig6) {
  auto& sys = system();
  const double p_std =
      sys.profile(adaptive::DecoderMode::kStandard).norm_power;
  const double p_del =
      sys.profile(adaptive::DecoderMode::kDeletion).norm_power;
  const double p_df =
      sys.profile(adaptive::DecoderMode::kDeblockOff).norm_power;
  const double p_comb =
      sys.profile(adaptive::DecoderMode::kCombined).norm_power;
  EXPECT_EQ(p_std, 1.0);
  // Fig 6: Standard > Deletion > DF-off > Combined.
  EXPECT_GT(p_std, p_del);
  EXPECT_GT(p_del, p_df);
  EXPECT_GT(p_df, p_comb);
  // DF deactivation saves the calibrated ~31.4%.
  EXPECT_NEAR(p_df, 1.0 - 0.314, 0.02);
}

TEST_F(PlaybackFixture, QualityOrderingMatchesFig6) {
  auto& sys = system();
  const double q_std = sys.profile(adaptive::DecoderMode::kStandard).psnr_db;
  const double q_del = sys.profile(adaptive::DecoderMode::kDeletion).psnr_db;
  const double q_df = sys.profile(adaptive::DecoderMode::kDeblockOff).psnr_db;
  const double q_comb = sys.profile(adaptive::DecoderMode::kCombined).psnr_db;
  EXPECT_GT(q_std, q_del);
  // Paper: deletion mode "enjoys a slightly better video quality than that
  // of the deactivation mode".
  EXPECT_GT(q_del, q_df - 0.2);
  EXPECT_GE(q_df, q_comb - 1e-9);
}

TEST_F(PlaybackFixture, PlaybackSavingInPaperBallpark) {
  auto& sys = system();
  const adaptive::AffectVideoPolicy policy;
  const auto report = adaptive::simulate_playback(
      sys, affect::uulmmac_session_timeline(), policy);
  ASSERT_EQ(report.segments.size(), 4u);
  // Paper: 23.1% playback energy saving.  Accept the band around it that
  // our calibrated substrate produces.
  EXPECT_GT(report.energy_saving(), 0.15);
  EXPECT_LT(report.energy_saving(), 0.35);
  // Segment modes follow the case-study policy.
  EXPECT_EQ(report.segments[0].mode, adaptive::DecoderMode::kCombined);
  EXPECT_EQ(report.segments[1].mode, adaptive::DecoderMode::kDeletion);
  EXPECT_EQ(report.segments[2].mode, adaptive::DecoderMode::kStandard);
  EXPECT_EQ(report.segments[3].mode, adaptive::DecoderMode::kDeblockOff);
}

TEST_F(PlaybackFixture, AllStandardPolicySavesNothing) {
  auto& sys = system();
  adaptive::AffectVideoPolicy policy;
  for (std::size_t i = 0; i < affect::kNumEmotions; ++i) {
    policy.set_mode(static_cast<affect::Emotion>(i),
                    adaptive::DecoderMode::kStandard);
  }
  const auto report = adaptive::simulate_playback(
      sys, affect::uulmmac_session_timeline(), policy);
  EXPECT_NEAR(report.energy_saving(), 0.0, 1e-9);
}

TEST_F(PlaybackFixture, SclDrivenPlaybackSavesEnergy) {
  auto& sys = system();
  affect::SclConfig scfg;
  affect::SclGenerator gen(scfg);
  const auto tl = affect::uulmmac_session_timeline();
  const auto trace = gen.generate(tl);
  affect::SclEmotionEstimator est;
  est.calibrate(trace, scfg.sample_rate_hz, tl);
  const adaptive::AffectVideoPolicy policy;
  const auto report = adaptive::simulate_playback_from_scl(
      sys, trace, scfg.sample_rate_hz, est, policy);
  EXPECT_GT(report.energy_saving(), 0.05);
  EXPECT_LT(report.energy_saving(), 0.45);
  EXPECT_FALSE(report.segments.empty());
}

// ----------------------------------------- InputSelector periodicity / reset

namespace {

/// Minimal synthetic P-slice NAL: header bits ue(0) ue(0) decode as
/// first_mb_in_slice = 0, slice_type = P; the rest is opaque padding that
/// only contributes to byte_size().  `tag` marks the unit so deletion
/// patterns can be recovered from the kept sequence.
h264::NalUnit make_p_nal(std::size_t byte_size, std::uint8_t tag = 0) {
  h264::NalUnit nal;
  nal.type = h264::NalType::kSliceNonIdr;
  nal.ref_idc = 0;
  nal.payload.assign(byte_size - 1, 0x55);
  nal.payload[0] = 0xC0;  // "11" + padding
  if (nal.payload.size() > 1) nal.payload[1] = tag;
  return nal;
}

/// Synthetic IDR (I-slice) NAL: ue(0) then ue(2) ("1" + "011") = 0xB0.
h264::NalUnit make_i_nal(std::size_t byte_size) {
  h264::NalUnit nal;
  nal.type = h264::NalType::kSliceIdr;
  nal.ref_idc = 3;
  nal.payload.assign(byte_size - 1, 0x55);
  nal.payload[0] = 0xB0;
  return nal;
}

}  // namespace

TEST(InputSelector, DeletionPatternIsPeriodicInF) {
  constexpr std::size_t kCandidates = 12;
  for (unsigned f : {1u, 2u, 4u}) {
    std::vector<h264::NalUnit> units;
    for (std::size_t i = 0; i < kCandidates; ++i) {
      units.push_back(make_p_nal(20, static_cast<std::uint8_t>(i)));
    }
    adaptive::InputSelector sel({100, f});
    const auto kept = sel.filter(units);
    // The first candidate of each group of f is deleted: candidate i
    // survives iff i % f != 0.
    std::vector<std::uint8_t> expect_tags;
    for (std::size_t i = 0; i < kCandidates; ++i) {
      if (i % f != 0) expect_tags.push_back(static_cast<std::uint8_t>(i));
    }
    ASSERT_EQ(kept.size(), expect_tags.size()) << "f=" << f;
    for (std::size_t k = 0; k < kept.size(); ++k) {
      EXPECT_EQ(kept[k].payload[1], expect_tags[k]) << "f=" << f << " k=" << k;
    }
    EXPECT_EQ(sel.stats().candidates, kCandidates);
    EXPECT_EQ(sel.stats().deleted, (kCandidates + f - 1) / f);
  }
}

TEST(InputSelector, ResetClearsCandidatePhaseAndStats) {
  adaptive::InputSelector sel({100, 4});
  // Three candidates advance the phase counter to 3 (one deleted).
  sel.filter({make_p_nal(20, 0), make_p_nal(20, 1), make_p_nal(20, 2)});
  ASSERT_EQ(sel.stats().deleted, 1u);

  sel.reset();
  EXPECT_EQ(sel.stats().units_in, 0u);
  EXPECT_EQ(sel.stats().candidates, 0u);
  EXPECT_EQ(sel.stats().deleted, 0u);
  EXPECT_EQ(sel.stats().bytes_in, 0u);

  // After reset the very next candidate starts a fresh group of f and is
  // deleted again; without the phase reset it would have survived (the
  // pre-reset counter stood at 3 of 4).
  const auto kept = sel.filter({make_p_nal(20, 7), make_p_nal(20, 8)});
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].payload[1], 8);
  EXPECT_EQ(sel.stats().deleted, 1u);
}

TEST(InputSelector, SyntheticStreamStatsInvariants) {
  // Mixed stream: I slices (never candidates), P slices above and below
  // S_th, across several filter() calls on the same selector.
  adaptive::InputSelector sel({64, 2});
  std::vector<h264::NalUnit> batch1{make_i_nal(40), make_p_nal(20, 0),
                                    make_p_nal(200, 1), make_p_nal(30, 2)};
  std::vector<h264::NalUnit> batch2{make_p_nal(64, 3), make_p_nal(65, 4),
                                    make_i_nal(300)};
  std::size_t bytes_total = 0, units_total = 0;
  for (const auto* batch : {&batch1, &batch2}) {
    for (const auto& u : *batch) {
      bytes_total += u.byte_size();
      ++units_total;
    }
  }
  std::size_t bytes_kept = 0;
  std::size_t units_kept = 0;
  for (const auto& nal : sel.filter(batch1)) {
    bytes_kept += nal.byte_size();
    ++units_kept;
  }
  for (const auto& nal : sel.filter(batch2)) {
    bytes_kept += nal.byte_size();
    ++units_kept;
  }
  const auto& st = sel.stats();
  EXPECT_EQ(st.units_in, units_total);
  EXPECT_EQ(st.bytes_in, bytes_total);
  EXPECT_EQ(st.units_out, units_kept);
  EXPECT_EQ(st.bytes_out, bytes_kept);
  // Conservation: everything in is either out or deleted.
  EXPECT_EQ(st.units_in, st.units_out + st.deleted);
  EXPECT_EQ(st.bytes_in - st.bytes_out,
            bytes_total - bytes_kept);
  // Candidates: sizes <= 64 among P slices -> tags 0, 2, 3 (size 64
  // inclusive); with f=2 the first of each pair is deleted.
  EXPECT_EQ(st.candidates, 3u);
  EXPECT_EQ(st.deleted, 2u);
}

// --------------------------------------------------- norm_power regression

TEST(Playback, NormPowerConsistentRegardlessOfProfilingOrder) {
  adaptive::PlaybackConfig cfg;
  cfg.video.frames = 8;  // tiny clip: this test profiles two systems

  // Standard profiled FIRST.
  adaptive::AdaptiveDecoderSystem first(cfg);
  const double std_first =
      first.profile(adaptive::DecoderMode::kStandard).norm_power;
  const double comb_first =
      first.profile(adaptive::DecoderMode::kCombined).norm_power;

  // Standard profiled LAST (other modes trigger the lazy reference).
  adaptive::AdaptiveDecoderSystem last(cfg);
  const double comb_last =
      last.profile(adaptive::DecoderMode::kCombined).norm_power;
  const double df_last =
      last.profile(adaptive::DecoderMode::kDeblockOff).norm_power;
  const double std_last =
      last.profile(adaptive::DecoderMode::kStandard).norm_power;

  // Standard is the reference: exactly 1.0, assigned explicitly in both
  // orders (not inherited from the ModeProfile default, which is 0).
  EXPECT_EQ(std_first, 1.0);
  EXPECT_EQ(std_last, 1.0);
  // Every profiled mode carries an assigned (nonzero) normalization, and
  // the same mode agrees across profiling orders.
  EXPECT_GT(comb_first, 0.0);
  EXPECT_GT(df_last, 0.0);
  EXPECT_DOUBLE_EQ(comb_first, comb_last);
  // Consistency with the underlying energies.
  EXPECT_NEAR(comb_last,
              last.profile(adaptive::DecoderMode::kCombined).energy.total_nj() /
                  last.profile(adaptive::DecoderMode::kStandard)
                      .energy.total_nj(),
              1e-12);
}
