// Tests for the affect-adaptive decoder layer: Input Selector semantics,
// Pre-store Buffer handshake, mode configs and the playback simulation.
#include <gtest/gtest.h>

#include <random>

#include "adaptive/input_selector.hpp"
#include "adaptive/modes.hpp"
#include "adaptive/playback.hpp"
#include "adaptive/prestore.hpp"
#include "h264/encoder.hpp"
#include "h264/testvideo.hpp"

namespace adaptive = affectsys::adaptive;
namespace affect = affectsys::affect;
namespace h264 = affectsys::h264;

namespace {

/// Encoded NAL units of a small mixed clip (busy + quiet halves).
std::vector<h264::NalUnit> encoded_units() {
  h264::VideoConfig vc;
  vc.width = 64;
  vc.height = 64;
  vc.frames = 24;
  vc.noise = 2.5;
  vc.motion = 1.2;
  vc.detail = 0.6;
  const auto video = h264::generate_mixed_video(vc, 0.5);
  h264::EncoderConfig ec;
  ec.width = vc.width;
  ec.height = vc.height;
  ec.qp = 24;
  ec.gop_size = 12;
  ec.b_frames = 2;
  h264::Encoder enc(ec);
  auto units = enc.parameter_sets();
  for (auto& pic : enc.encode(video)) units.push_back(std::move(pic.nal));
  return units;
}

}  // namespace

// ------------------------------------------------------------ InputSelector

TEST(InputSelector, NeverDeletesIdrOrParameterSets) {
  adaptive::InputSelector sel({100000, 1});  // delete everything eligible
  const auto kept = sel.filter(encoded_units());
  bool has_sps = false, has_pps = false, has_idr = false;
  for (const auto& nal : kept) {
    has_sps |= nal.type == h264::NalType::kSps;
    has_pps |= nal.type == h264::NalType::kPps;
    has_idr |= nal.type == h264::NalType::kSliceIdr;
  }
  EXPECT_TRUE(has_sps);
  EXPECT_TRUE(has_pps);
  EXPECT_TRUE(has_idr);
  // With a huge S_th every P/B slice is a candidate and f=1 deletes all.
  EXPECT_EQ(sel.stats().deleted, sel.stats().candidates);
  EXPECT_GT(sel.stats().deleted, 0u);
}

TEST(InputSelector, SthZeroDeletesNothing) {
  adaptive::InputSelector sel({0, 1});
  const auto units = encoded_units();
  const auto kept = sel.filter(units);
  EXPECT_EQ(kept.size(), units.size());
  EXPECT_EQ(sel.stats().deleted, 0u);
}

TEST(InputSelector, FrequencyControlsDeletionFraction) {
  const auto units = encoded_units();
  adaptive::InputSelector all({100000, 1});
  all.filter(units);
  const std::size_t m = all.stats().candidates;
  ASSERT_GT(m, 3u);
  for (unsigned f : {2u, 3u, 4u}) {
    adaptive::InputSelector sel({100000, f});
    sel.filter(units);
    // Deleted = ceil(m / f) by the "first of each group of f" rule.
    EXPECT_EQ(sel.stats().deleted, (m + f - 1) / f) << "f=" << f;
  }
}

TEST(InputSelector, LargerSthDeletesMore) {
  const auto units = encoded_units();
  std::size_t prev = 0;
  for (std::size_t s_th : {60u, 140u, 400u, 100000u}) {
    adaptive::InputSelector sel({s_th, 1});
    sel.filter(units);
    EXPECT_GE(sel.stats().deleted, prev) << "s_th=" << s_th;
    prev = sel.stats().deleted;
  }
}

TEST(InputSelector, StatsByteAccounting) {
  adaptive::InputSelector sel({140, 1});
  const auto units = encoded_units();
  std::size_t total_bytes = 0;
  for (const auto& u : units) total_bytes += u.byte_size();
  sel.filter(units);
  EXPECT_EQ(sel.stats().bytes_in, total_bytes);
  EXPECT_LE(sel.stats().bytes_out, total_bytes);
  EXPECT_EQ(sel.stats().units_in, units.size());
  EXPECT_EQ(sel.stats().units_out + sel.stats().deleted, units.size());
}

TEST(InputSelector, FilteredStreamStillDecodes) {
  adaptive::InputSelector sel({140, 1});
  const auto filtered = sel.filter_annexb(h264::pack_annexb(encoded_units()));
  affectsys::h264::Decoder dec;
  EXPECT_NO_THROW(dec.decode_annexb(filtered));
  EXPECT_GT(dec.activity().frames_decoded, 0u);
}

TEST(InputSelector, RejectsZeroFrequency) {
  EXPECT_THROW(adaptive::InputSelector({140, 0}), std::invalid_argument);
}

// ------------------------------------------------------------- PreStoreBuffer

TEST(PreStore, CapacityMatchesPaperGeometry) {
  // 128 words x 16 bits = 256 bytes.
  EXPECT_EQ(adaptive::PreStoreBuffer::kWords, 128u);
  EXPECT_EQ(adaptive::PreStoreBuffer::kCapacityBytes, 256u);
}

TEST(PreStore, FifoOrderPreserved) {
  adaptive::PreStoreBuffer buf;
  std::vector<std::uint8_t> data(200);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  EXPECT_EQ(buf.write(data), 200u);
  const auto out = buf.read(200);
  EXPECT_EQ(out, data);
  EXPECT_TRUE(buf.empty());
}

TEST(PreStore, RefusesOverfillAndCountsStall) {
  adaptive::PreStoreBuffer buf;
  std::vector<std::uint8_t> big(300, 7);
  EXPECT_EQ(buf.write(big), 256u);
  EXPECT_TRUE(buf.full());
  EXPECT_EQ(buf.stats().producer_stalls, 1u);
}

TEST(PreStore, EmptyReadCountsStall) {
  adaptive::PreStoreBuffer buf;
  EXPECT_TRUE(buf.read(16).empty());
  EXPECT_EQ(buf.stats().consumer_stalls, 1u);
}

TEST(PreStore, RewindDeletesUncommittedBytes) {
  adaptive::PreStoreBuffer buf;
  std::vector<std::uint8_t> data(100, 1);
  buf.write(data);
  EXPECT_TRUE(buf.rewind(40));  // drop the last 40 (a deleted NAL unit)
  EXPECT_EQ(buf.size_bytes(), 60u);
  EXPECT_FALSE(buf.rewind(61));  // cannot rewind past what is pending
  EXPECT_EQ(buf.stats().rewinds, 1u);
}

TEST(PreStore, WrapAroundIntegrity) {
  adaptive::PreStoreBuffer buf;
  std::mt19937 rng(9);
  std::uniform_int_distribution<int> size_d(1, 60);
  std::vector<std::uint8_t> sent, received;
  std::uint8_t next = 0;
  // Push/pull random chunks across many wraps; data must come out intact.
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<std::uint8_t> chunk(static_cast<std::size_t>(size_d(rng)));
    for (auto& b : chunk) b = next++;
    const std::size_t accepted = buf.write(chunk);
    sent.insert(sent.end(), chunk.begin(), chunk.begin() + static_cast<long>(accepted));
    next = static_cast<std::uint8_t>(sent.empty() ? 0 : sent.back() + 1);
    const auto out = buf.read(static_cast<std::size_t>(size_d(rng)));
    received.insert(received.end(), out.begin(), out.end());
  }
  const auto rest = buf.read(adaptive::PreStoreBuffer::kCapacityBytes);
  received.insert(received.end(), rest.begin(), rest.end());
  EXPECT_EQ(received, sent);
}

TEST(PreStore, StreamSimulationDeliversEverything) {
  std::vector<std::uint8_t> stream(10000);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    stream[i] = static_cast<std::uint8_t>(i * 31);
  }
  const auto stats = adaptive::simulate_stream_through(stream, 64, 48);
  // words = bytes/2 (with rounding per chunk); every byte flows through.
  EXPECT_GE(stats.words_read * 2, stream.size());
}

// --------------------------------------------------------------------- modes

TEST(Modes, ConfigsMatchSemantics) {
  const auto std_cfg = adaptive::mode_config(adaptive::DecoderMode::kStandard);
  EXPECT_TRUE(std_cfg.deblock);
  EXPECT_FALSE(std_cfg.delete_nals);
  const auto del = adaptive::mode_config(adaptive::DecoderMode::kDeletion);
  EXPECT_TRUE(del.deblock);
  EXPECT_TRUE(del.delete_nals);
  const auto dfoff = adaptive::mode_config(adaptive::DecoderMode::kDeblockOff);
  EXPECT_FALSE(dfoff.deblock);
  EXPECT_FALSE(dfoff.delete_nals);
  const auto comb = adaptive::mode_config(adaptive::DecoderMode::kCombined);
  EXPECT_FALSE(comb.deblock);
  EXPECT_TRUE(comb.delete_nals);
  EXPECT_EQ(comb.selector.s_th, 140u);
  EXPECT_EQ(comb.selector.f, 1u);
}

TEST(Modes, DefaultPolicyMatchesPaperCaseStudy) {
  const adaptive::AffectVideoPolicy policy;
  EXPECT_EQ(policy.mode_for(affect::Emotion::kDistracted),
            adaptive::DecoderMode::kCombined);
  EXPECT_EQ(policy.mode_for(affect::Emotion::kConcentrated),
            adaptive::DecoderMode::kDeletion);
  EXPECT_EQ(policy.mode_for(affect::Emotion::kTense),
            adaptive::DecoderMode::kStandard);
  EXPECT_EQ(policy.mode_for(affect::Emotion::kRelaxed),
            adaptive::DecoderMode::kDeblockOff);
}

TEST(Modes, PolicyIsReprogrammable) {
  adaptive::AffectVideoPolicy policy;
  policy.set_mode(affect::Emotion::kRelaxed, adaptive::DecoderMode::kCombined);
  EXPECT_EQ(policy.mode_for(affect::Emotion::kRelaxed),
            adaptive::DecoderMode::kCombined);
}

// ------------------------------------------------------------------ playback

class PlaybackFixture : public ::testing::Test {
 protected:
  static adaptive::AdaptiveDecoderSystem& system() {
    // The prototype clip profile is expensive; share it across tests.
    static adaptive::AdaptiveDecoderSystem sys{[] {
      adaptive::PlaybackConfig cfg;
      cfg.video.frames = 24;  // smaller clip for tests
      return cfg;
    }()};
    return sys;
  }
};

TEST_F(PlaybackFixture, ModePowerOrderingMatchesFig6) {
  auto& sys = system();
  const double p_std =
      sys.profile(adaptive::DecoderMode::kStandard).norm_power;
  const double p_del =
      sys.profile(adaptive::DecoderMode::kDeletion).norm_power;
  const double p_df =
      sys.profile(adaptive::DecoderMode::kDeblockOff).norm_power;
  const double p_comb =
      sys.profile(adaptive::DecoderMode::kCombined).norm_power;
  EXPECT_EQ(p_std, 1.0);
  // Fig 6: Standard > Deletion > DF-off > Combined.
  EXPECT_GT(p_std, p_del);
  EXPECT_GT(p_del, p_df);
  EXPECT_GT(p_df, p_comb);
  // DF deactivation saves the calibrated ~31.4%.
  EXPECT_NEAR(p_df, 1.0 - 0.314, 0.02);
}

TEST_F(PlaybackFixture, QualityOrderingMatchesFig6) {
  auto& sys = system();
  const double q_std = sys.profile(adaptive::DecoderMode::kStandard).psnr_db;
  const double q_del = sys.profile(adaptive::DecoderMode::kDeletion).psnr_db;
  const double q_df = sys.profile(adaptive::DecoderMode::kDeblockOff).psnr_db;
  const double q_comb = sys.profile(adaptive::DecoderMode::kCombined).psnr_db;
  EXPECT_GT(q_std, q_del);
  // Paper: deletion mode "enjoys a slightly better video quality than that
  // of the deactivation mode".
  EXPECT_GT(q_del, q_df - 0.2);
  EXPECT_GE(q_df, q_comb - 1e-9);
}

TEST_F(PlaybackFixture, PlaybackSavingInPaperBallpark) {
  auto& sys = system();
  const adaptive::AffectVideoPolicy policy;
  const auto report = adaptive::simulate_playback(
      sys, affect::uulmmac_session_timeline(), policy);
  ASSERT_EQ(report.segments.size(), 4u);
  // Paper: 23.1% playback energy saving.  Accept the band around it that
  // our calibrated substrate produces.
  EXPECT_GT(report.energy_saving(), 0.15);
  EXPECT_LT(report.energy_saving(), 0.35);
  // Segment modes follow the case-study policy.
  EXPECT_EQ(report.segments[0].mode, adaptive::DecoderMode::kCombined);
  EXPECT_EQ(report.segments[1].mode, adaptive::DecoderMode::kDeletion);
  EXPECT_EQ(report.segments[2].mode, adaptive::DecoderMode::kStandard);
  EXPECT_EQ(report.segments[3].mode, adaptive::DecoderMode::kDeblockOff);
}

TEST_F(PlaybackFixture, AllStandardPolicySavesNothing) {
  auto& sys = system();
  adaptive::AffectVideoPolicy policy;
  for (std::size_t i = 0; i < affect::kNumEmotions; ++i) {
    policy.set_mode(static_cast<affect::Emotion>(i),
                    adaptive::DecoderMode::kStandard);
  }
  const auto report = adaptive::simulate_playback(
      sys, affect::uulmmac_session_timeline(), policy);
  EXPECT_NEAR(report.energy_saving(), 0.0, 1e-9);
}

TEST_F(PlaybackFixture, SclDrivenPlaybackSavesEnergy) {
  auto& sys = system();
  affect::SclConfig scfg;
  affect::SclGenerator gen(scfg);
  const auto tl = affect::uulmmac_session_timeline();
  const auto trace = gen.generate(tl);
  affect::SclEmotionEstimator est;
  est.calibrate(trace, scfg.sample_rate_hz, tl);
  const adaptive::AffectVideoPolicy policy;
  const auto report = adaptive::simulate_playback_from_scl(
      sys, trace, scfg.sample_rate_hz, est, policy);
  EXPECT_GT(report.energy_saving(), 0.05);
  EXPECT_LT(report.energy_saving(), 0.45);
  EXPECT_FALSE(report.segments.empty());
}
