// Tests for the learned SCL classifier and the Perfetto-style JSON trace.
#include <gtest/gtest.h>

#include "affect/scl_nn.hpp"
#include "android/catalog.hpp"
#include "android/trace.hpp"

namespace affect = affectsys::affect;
namespace android = affectsys::android;

TEST(SclFeatures, DimensionAndDeterminism) {
  std::vector<double> window(120);
  for (std::size_t i = 0; i < window.size(); ++i) {
    window[i] = 2.0 + 0.1 * std::sin(0.2 * static_cast<double>(i));
  }
  const auto f1 = affect::scl_window_features(window);
  const auto f2 = affect::scl_window_features(window);
  EXPECT_EQ(f1.size(), affect::kSclFeatureDim);
  EXPECT_EQ(f1, f2);
}

TEST(SclFeatures, ActiveWindowsDifferFromFlat) {
  std::vector<double> flat(120, 2.0);
  std::vector<double> active(120);
  for (std::size_t i = 0; i < active.size(); ++i) {
    active[i] = 2.0 + 0.5 * std::exp(-std::abs(static_cast<double>(i) - 60.0) / 8.0);
  }
  const auto ff = affect::scl_window_features(flat);
  const auto fa = affect::scl_window_features(active);
  // Activity features (index 3: mean |diff|) must separate them.
  EXPECT_GT(fa[3], ff[3]);
  EXPECT_GT(fa[2], ff[2]);  // range
}

class SclNnFixture : public ::testing::Test {
 protected:
  static affect::SclNnClassifier& classifier() {
    static affect::SclNnClassifier clf = [] {
      affect::SclTrainConfig cfg;
      cfg.training_traces = 5;
      cfg.epochs = 25;
      return affect::train_scl_classifier(
          affect::uulmmac_session_timeline(), affect::SclConfig{}, cfg);
    }();
    return clf;
  }
};

TEST_F(SclNnFixture, BeatsThresholdEstimatorOnHeldOutTrace) {
  const auto timeline = affect::uulmmac_session_timeline();
  affect::SclConfig test_cfg;
  test_cfg.seed = 99999;  // unseen recording session
  affect::SclGenerator gen(test_cfg);
  const auto trace = gen.generate(timeline);

  affect::SclEmotionEstimator threshold;
  threshold.calibrate(trace, test_cfg.sample_rate_hz, timeline);

  const double acc_threshold = affect::scl_window_accuracy(
      trace, test_cfg.sample_rate_hz, timeline, 30.0,
      [&](std::span<const double> w) { return threshold.classify(w); });
  const double acc_nn = affect::scl_window_accuracy(
      trace, test_cfg.sample_rate_hz, timeline, 30.0,
      [&](std::span<const double> w) { return classifier().classify(w); });

  EXPECT_GT(acc_nn, 0.4);  // 4-way chance is 0.25
  // The learned classifier should at least match the hand-calibrated
  // threshold (which got to calibrate on the test trace itself).
  EXPECT_GT(acc_nn, acc_threshold - 0.1);
}

TEST_F(SclNnFixture, ProbabilitiesAreDistribution) {
  affect::SclConfig cfg;
  affect::SclGenerator gen(cfg);
  const auto trace = gen.generate(affect::uulmmac_session_timeline());
  const auto win = static_cast<std::size_t>(30.0 * cfg.sample_rate_hz);
  const auto probs = classifier().probabilities({trace.data(), win});
  ASSERT_EQ(probs.size(), 4u);
  float sum = 0.0f;
  for (float p : probs) {
    EXPECT_GE(p, 0.0f);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(TraceJson, WellFormedAndComplete) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  android::Tracer tracer;
  tracer.record(1.5, android::TraceEventType::kColdStart, catalog[0].id);
  tracer.record(2.0, android::TraceEventType::kKill, catalog[0].id,
                "pressure \"quoted\"");
  tracer.record(3.0, android::TraceEventType::kEmotionChange, 0, "calm");
  const std::string json = tracer.to_json(catalog);
  // Structure: array with one object per event.
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ts\": 1500000"), std::string::npos);
  EXPECT_NE(json.find("cold_start"), std::string::npos);
  EXPECT_NE(json.find("kill"), std::string::npos);
  EXPECT_NE(json.find("emotion_change"), std::string::npos);
  EXPECT_NE(json.find(catalog[0].name), std::string::npos);
  // Quotes in details are escaped.
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  // Balanced braces (rough well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}
