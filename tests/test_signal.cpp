// Unit + property tests for the DSP substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "signal/features.hpp"
#include "signal/fft.hpp"
#include "signal/mel.hpp"
#include "signal/stats.hpp"
#include "signal/window.hpp"

namespace sig = affectsys::signal;

namespace {

std::vector<double> sine(double freq, double rate, std::size_t n,
                         double amp = 1.0) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = amp * std::sin(2.0 * std::numbers::pi * freq * i / rate);
  }
  return x;
}

}  // namespace

// -------------------------------------------------------------------- FFT

TEST(Fft, NextPow2) {
  EXPECT_EQ(sig::next_pow2(0), 1u);
  EXPECT_EQ(sig::next_pow2(1), 1u);
  EXPECT_EQ(sig::next_pow2(2), 2u);
  EXPECT_EQ(sig::next_pow2(3), 4u);
  EXPECT_EQ(sig::next_pow2(512), 512u);
  EXPECT_EQ(sig::next_pow2(513), 1024u);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> buf(6);
  EXPECT_THROW(sig::fft_inplace(buf), std::invalid_argument);
}

TEST(Fft, ForwardInverseRoundTrip) {
  std::mt19937 rng(1);
  std::normal_distribution<double> d(0.0, 1.0);
  std::vector<double> x(256);
  for (auto& v : x) v = d(rng);
  const auto spec = sig::fft_real(x);
  const auto back = sig::ifft_real(spec);
  ASSERT_GE(back.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-9);
  }
}

// Regression test for the twiddle-recurrence precision bug: the kernel
// used to generate twiddles with `w *= wlen` per butterfly, losing one
// ulp per step, which showed up as ~1e-10 drift at long sizes.  Planned
// twiddles come from std::polar directly, so a 4096-point round trip
// must stay at 1e-9.
TEST(Fft, RoundTripStaysTightAtN4096) {
  constexpr std::size_t kN = 4096;
  std::mt19937 rng(11);
  std::normal_distribution<double> d(0.0, 1.0);
  std::vector<std::complex<double>> x(kN);
  for (auto& v : x) v = {d(rng), d(rng)};
  auto buf = x;
  sig::fft_inplace(buf, false);
  sig::fft_inplace(buf, true);
  for (std::size_t i = 0; i < kN; ++i) {
    // The inverse is unscaled; fold the 1/N in here.
    EXPECT_NEAR(buf[i].real() / kN, x[i].real(), 1e-9) << "bin " << i;
    EXPECT_NEAR(buf[i].imag() / kN, x[i].imag(), 1e-9) << "bin " << i;
  }
}

TEST(FftPlan, MatchesNaiveDftAtHighPrecision) {
  constexpr std::size_t kN = 512;
  std::mt19937 rng(12);
  std::normal_distribution<double> d(0.0, 1.0);
  std::vector<std::complex<double>> x(kN);
  for (auto& v : x) v = {d(rng), d(rng)};

  // O(n^2) reference with per-bin std::polar phases.
  std::vector<std::complex<double>> want(kN);
  for (std::size_t k = 0; k < kN; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t j = 0; j < kN; ++j) {
      acc += x[j] * std::polar(1.0, -2.0 * std::numbers::pi *
                                        static_cast<double>(k * j % kN) / kN);
    }
    want[k] = acc;
  }

  auto got = x;
  sig::FftPlan(kN).forward(got);
  for (std::size_t k = 0; k < kN; ++k) {
    EXPECT_NEAR(got[k].real(), want[k].real(), 1e-9) << "bin " << k;
    EXPECT_NEAR(got[k].imag(), want[k].imag(), 1e-9) << "bin " << k;
  }
}

TEST(FftPlan, RejectsNonPowerOfTwoSizes) {
  EXPECT_THROW(sig::FftPlan(0), std::invalid_argument);
  EXPECT_THROW(sig::FftPlan(3), std::invalid_argument);
  EXPECT_THROW(sig::FftPlan(96), std::invalid_argument);
}

TEST(FftPlan, RejectsMismatchedBufferSize) {
  sig::FftPlan plan(8);
  std::vector<std::complex<double>> buf(16);
  EXPECT_THROW(plan.forward(buf), std::invalid_argument);
}

TEST(FftPlan, CacheReturnsSharedImmutablePlans) {
  const auto a = sig::FftPlan::cached(1024);
  const auto b = sig::FftPlan::cached(1024);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());  // one plan per size, shared
  EXPECT_EQ(a->size(), 1024u);
  EXPECT_NE(a.get(), sig::FftPlan::cached(2048).get());
}

TEST(Fft, ParsevalEnergyConservation) {
  std::mt19937 rng(2);
  std::normal_distribution<double> d(0.0, 1.0);
  std::vector<double> x(128);
  for (auto& v : x) v = d(rng);
  double time_energy = 0.0;
  for (double v : x) time_energy += v * v;
  const auto spec = sig::fft_real(x);
  double freq_energy = 0.0;
  for (const auto& c : spec) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / static_cast<double>(spec.size()), time_energy,
              1e-8);
}

TEST(Fft, PureToneLandsInCorrectBin) {
  const double rate = 1000.0;
  const std::size_t n = 512;
  // Bin-aligned frequency: bin 32 => 62.5 Hz.
  const auto x = sine(32.0 * rate / n, rate, n);
  const auto mag = sig::magnitude_spectrum(x, n);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < mag.size(); ++k) {
    if (mag[k] > mag[peak]) peak = k;
  }
  EXPECT_EQ(peak, 32u);
}

TEST(Fft, AutocorrelationPeaksAtPeriod) {
  const double rate = 8000.0;
  const auto x = sine(200.0, rate, 1024);  // period = 40 samples
  const auto r = sig::autocorrelation(x);
  std::size_t peak = 20;
  for (std::size_t lag = 20; lag < 60; ++lag) {
    if (r[lag] > r[peak]) peak = lag;
  }
  EXPECT_EQ(peak, 40u);
}

// ------------------------------------------------------------------ window

TEST(Window, HannEndpointsNearZeroAndPeakNearOne) {
  const auto w = sig::make_window(sig::WindowType::kHann, 64);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);
}

TEST(Window, HammingNeverZero) {
  const auto w = sig::make_window(sig::WindowType::kHamming, 33);
  for (double v : w) EXPECT_GT(v, 0.05);
}

TEST(Window, RectangularIsAllOnes) {
  const auto w = sig::make_window(sig::WindowType::kRectangular, 10);
  for (double v : w) EXPECT_EQ(v, 1.0);
}

TEST(Window, ApplyRejectsSizeMismatch) {
  std::vector<double> frame(8, 1.0);
  const auto w = sig::make_window(sig::WindowType::kHann, 16);
  EXPECT_THROW(sig::apply_window(frame, w), std::invalid_argument);
}

TEST(Framing, CoversWholeSignalWithZeroPad) {
  std::vector<double> x(95, 1.0);
  const auto frames = sig::frame_signal(x, 40, 30);
  // Starts at 0, 30, 60; the frame at 60 reaches the end of the signal.
  ASSERT_EQ(frames.size(), 3u);
  for (const auto& f : frames) EXPECT_EQ(f.size(), 40u);
  // Final frame is 35 real samples + 5 zeros.
  double tail_sum = 0.0;
  for (std::size_t i = 35; i < 40; ++i) tail_sum += frames[2][i];
  EXPECT_EQ(tail_sum, 0.0);
  // Every input sample is covered by some frame.
  EXPECT_GE(frames.size() * 30 + 10, x.size());
}

TEST(Framing, EmptyInputYieldsNoFrames) {
  EXPECT_TRUE(sig::frame_signal({}, 16, 8).empty());
}

// --------------------------------------------------------------------- mel

TEST(Mel, HzMelRoundTrip) {
  for (double hz : {50.0, 440.0, 1000.0, 4000.0, 7999.0}) {
    EXPECT_NEAR(sig::mel_to_hz(sig::hz_to_mel(hz)), hz, 1e-6);
  }
}

TEST(Mel, FilterbankRowsAreNonNegativeAndPeaked) {
  sig::MelFilterbank bank(26, 512, 16000.0, 20.0, 8000.0);
  for (std::size_t f = 0; f < bank.num_filters(); ++f) {
    double peak = 0.0;
    for (double w : bank.filter(f)) {
      EXPECT_GE(w, 0.0);
      peak = std::max(peak, w);
    }
    EXPECT_GT(peak, 0.0) << "filter " << f << " is empty";
    EXPECT_LE(peak, 1.0 + 1e-12);
  }
}

TEST(Mel, RejectsBadBandEdges) {
  EXPECT_THROW(sig::MelFilterbank(26, 512, 16000.0, 100.0, 9000.0),
               std::invalid_argument);
  EXPECT_THROW(sig::MelFilterbank(26, 512, 16000.0, 500.0, 100.0),
               std::invalid_argument);
}

TEST(Dct, OrthonormalDcOfConstant) {
  std::vector<double> x(16, 2.0);
  const auto c = sig::dct2(x, 16);
  EXPECT_NEAR(c[0], 2.0 * std::sqrt(16.0) / std::sqrt(1.0) / 4.0 * 4.0, 1e-9);
  for (std::size_t k = 1; k < c.size(); ++k) EXPECT_NEAR(c[k], 0.0, 1e-9);
}

TEST(Mfcc, ShapeMatchesConfig) {
  sig::MfccConfig cfg;
  sig::MfccExtractor mfcc(cfg);
  const auto x = sine(300.0, cfg.sample_rate, 16000);
  const auto feats = mfcc.extract(x);
  ASSERT_FALSE(feats.empty());
  for (const auto& row : feats) EXPECT_EQ(row.size(), cfg.num_coeffs);
}

TEST(Mfcc, DistinguishesSpectralShapes) {
  sig::MfccConfig cfg;
  sig::MfccExtractor mfcc(cfg);
  const auto low = mfcc.extract_frame(sine(200.0, cfg.sample_rate, 400));
  const auto high = mfcc.extract_frame(sine(3000.0, cfg.sample_rate, 400));
  double dist = 0.0;
  for (std::size_t i = 1; i < low.size(); ++i) {  // skip energy coeff
    dist += std::abs(low[i] - high[i]);
  }
  EXPECT_GT(dist, 1.0);
}

// ---------------------------------------------------------------- features

TEST(Features, ZcrOfToneTracksFrequency) {
  const double rate = 8000.0;
  const auto low = sine(100.0, rate, 4000);
  const auto high = sine(1000.0, rate, 4000);
  EXPECT_LT(sig::zero_crossing_rate(low), sig::zero_crossing_rate(high));
  // ZCR of an f Hz tone is ~2f/rate.
  EXPECT_NEAR(sig::zero_crossing_rate(high), 2.0 * 1000.0 / rate, 0.01);
}

TEST(Features, RmsOfSine) {
  const auto x = sine(100.0, 8000.0, 8000, 2.0);
  EXPECT_NEAR(sig::rms(x), 2.0 / std::sqrt(2.0), 1e-3);
}

TEST(Features, RmsOfSilenceIsZero) {
  std::vector<double> x(100, 0.0);
  EXPECT_EQ(sig::rms(x), 0.0);
}

class PitchAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(PitchAccuracy, WithinOnePercent) {
  const double f0 = GetParam();
  const double rate = 16000.0;
  const auto x = sine(f0, rate, 2048);
  const auto pitch = sig::estimate_pitch(x, rate);
  ASSERT_TRUE(pitch.has_value());
  EXPECT_NEAR(*pitch, f0, f0 * 0.01);
}

INSTANTIATE_TEST_SUITE_P(Frequencies, PitchAccuracy,
                         ::testing::Values(80.0, 120.0, 200.0, 330.0, 440.0));

TEST(Features, PitchRejectsSilenceAndNoise) {
  std::vector<double> silence(2048, 0.0);
  EXPECT_FALSE(sig::estimate_pitch(silence, 16000.0).has_value());
  std::mt19937 rng(4);
  std::normal_distribution<double> d(0.0, 1.0);
  std::vector<double> noise(2048);
  for (auto& v : noise) v = d(rng);
  // White noise is aperiodic; the voicing threshold should reject it.
  EXPECT_FALSE(sig::estimate_pitch(noise, 16000.0, 60.0, 500.0, 0.5));
}

TEST(Features, SpectralCentroidOrdersByBrightness) {
  const double rate = 16000.0;
  const auto dark = sine(200.0, rate, 512);
  const auto bright = sine(4000.0, rate, 512);
  const auto m1 = sig::magnitude_spectrum(dark, 512);
  const auto m2 = sig::magnitude_spectrum(bright, 512);
  EXPECT_LT(sig::spectral_centroid(m1, rate, 512),
            sig::spectral_centroid(m2, rate, 512));
}

TEST(Features, RolloffBelowNyquist) {
  const auto x = sine(500.0, 16000.0, 512);
  const auto m = sig::magnitude_spectrum(x, 512);
  const double r = sig::spectral_rolloff(m, 16000.0, 512);
  EXPECT_GT(r, 0.0);
  EXPECT_LE(r, 8000.0);
}

// ------------------------------------------------------------------- stats

TEST(Stats, RunningMatchesBatch) {
  std::mt19937 rng(5);
  std::normal_distribution<double> d(3.0, 2.0);
  std::vector<double> xs(1000);
  sig::RunningStats rs;
  for (auto& v : xs) {
    v = d(rng);
    rs.add(v);
  }
  double mean = 0.0;
  for (double v : xs) mean += v;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double v : xs) var += (v - mean) * (v - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(rs.mean(), mean, 1e-9);
  EXPECT_NEAR(rs.variance(), var, 1e-9);
}

TEST(Stats, MergeEqualsSequential) {
  sig::RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(0.1 * i) * i;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Stats, EmptyStatsAreZero) {
  sig::RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(Histogram, ClampsOutOfRange) {
  sig::Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(5.0);
  h.add(0.5);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, NormalizedSumsToOne) {
  sig::Histogram h(-1.0, 1.0, 10);
  std::mt19937 rng(6);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (int i = 0; i < 500; ++i) h.add(d(rng));
  double sum = 0.0;
  for (double v : h.normalized()) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(sig::Histogram(0.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(sig::Histogram(0.0, 1.0, 0), std::invalid_argument);
}
