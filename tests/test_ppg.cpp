// Tests for the PPG/heart-rate channel and multimodal fusion.
#include <gtest/gtest.h>

#include <sstream>

#include "affect/ppg.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/gru.hpp"
#include "nn/model.hpp"
#include "nn/pooling.hpp"

namespace affect = affectsys::affect;
namespace nn = affectsys::nn;

TEST(Cardio, ProfileTracksArousal) {
  const auto tense = affect::cardio_profile(affect::Emotion::kTense);
  const auto relaxed = affect::cardio_profile(affect::Emotion::kRelaxed);
  EXPECT_GT(tense.mean_hr_bpm, relaxed.mean_hr_bpm);
  EXPECT_LT(tense.rmssd_ms, relaxed.rmssd_ms);  // HRV collapses with arousal
}

TEST(Ppg, WaveformCoversTimelineAndPulses) {
  affect::PpgConfig cfg;
  affect::PpgGenerator gen(cfg);
  affect::EmotionTimeline tl;
  tl.segments = {{0.0, 60.0, affect::Emotion::kRelaxed}};
  const auto wave = gen.generate(tl);
  EXPECT_EQ(wave.size(), static_cast<std::size_t>(60.0 * cfg.sample_rate_hz));
  double peak = 0.0;
  for (double v : wave) peak = std::max(peak, v);
  EXPECT_GT(peak, 0.5);  // pulses are present
  EXPECT_GT(gen.last_rr_intervals().size(), 40u);  // ~60 bpm for a minute
}

TEST(Ppg, BeatDetectionRecoversHeartRate) {
  affect::PpgConfig cfg;
  cfg.noise = 0.01;
  affect::PpgGenerator gen(cfg);
  affect::EmotionTimeline tl;
  tl.segments = {{0.0, 120.0, affect::Emotion::kNeutral}};
  const auto wave = gen.generate(tl);
  const auto beats = affect::detect_beats(wave, cfg.sample_rate_hz);
  const auto hrv = affect::hrv_features(beats);
  const double expected_hr =
      affect::cardio_profile(affect::Emotion::kNeutral).mean_hr_bpm;
  EXPECT_NEAR(hrv.mean_hr_bpm, expected_hr, 6.0);
}

TEST(Ppg, HrvFeaturesSeparateTenseFromRelaxed) {
  affect::PpgConfig cfg;
  cfg.noise = 0.01;
  affect::PpgGenerator gen(cfg);
  affect::EmotionTimeline tl;
  tl.segments = {{0.0, 180.0, affect::Emotion::kTense},
                 {180.0, 360.0, affect::Emotion::kRelaxed}};
  const auto wave = gen.generate(tl);
  const auto half = static_cast<std::size_t>(180.0 * cfg.sample_rate_hz);
  const auto tense_beats = affect::detect_beats(
      {wave.data(), half}, cfg.sample_rate_hz);
  const auto relaxed_beats = affect::detect_beats(
      {wave.data() + half, wave.size() - half}, cfg.sample_rate_hz);
  const auto f_tense = affect::hrv_features(tense_beats);
  const auto f_relaxed = affect::hrv_features(relaxed_beats);
  EXPECT_GT(f_tense.mean_hr_bpm, f_relaxed.mean_hr_bpm + 5.0);
  EXPECT_LT(f_tense.rmssd_ms, f_relaxed.rmssd_ms);
}

TEST(Ppg, HrvDegenerateInputs) {
  EXPECT_EQ(affect::hrv_features({}).beats, 0u);
  const double two[] = {1.0, 2.0};
  EXPECT_EQ(affect::hrv_features({two, 2}).mean_hr_bpm, 0.0);
  EXPECT_TRUE(affect::detect_beats({}, 64.0).empty());
}

class FusionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    timeline_ = affect::uulmmac_session_timeline();
    affect::SclConfig scfg;
    affect::SclGenerator sgen(scfg);
    scl_ = sgen.generate(timeline_);
    scl_rate_ = scfg.sample_rate_hz;
    affect::PpgConfig pcfg;
    affect::PpgGenerator pgen(pcfg);
    ppg_ = pgen.generate(timeline_);
    ppg_rate_ = pcfg.sample_rate_hz;
    est_.calibrate(scl_, scl_rate_, ppg_, ppg_rate_, timeline_);
  }

  double accuracy(bool fused) const {
    const auto swin = static_cast<std::size_t>(30.0 * scl_rate_);
    const auto pwin = static_cast<std::size_t>(30.0 * ppg_rate_);
    std::size_t correct = 0, total = 0;
    for (std::size_t w = 0; (w + 1) * swin <= scl_.size() &&
                            (w + 1) * pwin <= ppg_.size();
         ++w) {
      const double t = static_cast<double>(w) * 30.0;
      const affect::Emotion truth = timeline_.at(t);
      const affect::Emotion pred =
          fused ? est_.classify({scl_.data() + w * swin, swin},
                                {ppg_.data() + w * pwin, pwin})
                : est_.classify_ppg({ppg_.data() + w * pwin, pwin});
      correct += pred == truth;
      ++total;
    }
    return static_cast<double>(correct) / static_cast<double>(total);
  }

  affect::EmotionTimeline timeline_;
  std::vector<double> scl_, ppg_;
  double scl_rate_ = 4.0, ppg_rate_ = 64.0;
  affect::MultimodalEstimator est_;
};

TEST_F(FusionFixture, PpgChannelAloneBeatsChance) {
  EXPECT_GT(accuracy(false), 0.4);  // 4-way chance = 0.25
}

TEST_F(FusionFixture, FusionBeatsChanceComfortably) {
  EXPECT_GT(accuracy(true), 0.5);
}

// ------------------------------------------- serialization of new layers

TEST(SerializeNewLayers, GruAndDropoutRoundTrip) {
  std::mt19937 rng(70);
  nn::Sequential model;
  model.add(std::make_unique<nn::Gru>(5, 6, rng))
      .add(std::make_unique<nn::Dropout>(0.25f, 7))
      .add(std::make_unique<nn::LastTimestep>())
      .add(std::make_unique<nn::Dense>(6, 3, rng));
  nn::set_training_mode(model, false);
  nn::Matrix input(8, 5);
  std::normal_distribution<float> d(0.0f, 1.0f);
  for (auto& v : input.flat()) v = d(rng);
  const nn::Matrix before = model.forward(input);

  std::stringstream ss;
  model.save(ss);
  nn::Sequential loaded = nn::Sequential::load(ss);
  const nn::Matrix after = loaded.forward(input);
  ASSERT_TRUE(before.same_shape(after));
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before.flat()[i], after.flat()[i]);
  }
}
