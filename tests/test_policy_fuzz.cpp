// Switch-policy table fuzzing (ctest labels "fault" + "conf"): 220
// seeded random SwitchPolicy tables — wildcards, overlapping rows,
// role rows, degenerate empty/single-row tables, targets past the
// ladder — each driven twice through a context storm over a faulted
// multi-lane transport (packet loss, bursts, jitter, duplication,
// reordering).  Per plan: the two runs must produce identical
// PolicyFuzzResults (replay identity), every forwarded-layer change
// must land on an aligned IDR, no trace entry may name a rung outside
// the ladder, and the switch latency stays under one GOP.
//
// tools/run_verify.sh `fault` runs this suite in the ASan+UBSan, TSan
// and Release trees (it rides the "fault" label); `conference` adds the
// ASan and TSan "conf" passes.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "conf/policy_fuzz.hpp"
#include "fault/plan.hpp"
#include "h264/testvideo.hpp"
#include "simulcast/encoder.hpp"
#include "simulcast/policy.hpp"

namespace conf = affectsys::conf;
namespace fault = affectsys::fault;
namespace h264 = affectsys::h264;
namespace simulcast = affectsys::simulcast;

namespace {

constexpr std::uint64_t kPlans = 220;  ///< >= 200 seeded plans (ISSUE 10)
constexpr int kGop = 6;

/// Small 3-layer ladder encoded once per process: 16/32/64 over an
/// 18-picture 64x64 scene, GOP 6 — cheap enough that 220 plans x 2 runs
/// stay fast under ASan, tall enough that role/overshoot targets have
/// three real rungs to land on.
const simulcast::SimulcastClip& fuzz_clip() {
  static const simulcast::SimulcastClip clip = [] {
    simulcast::SimulcastConfig cfg;
    cfg.scene = h264::VideoConfig{64, 64, 18, 1.2, 0.6, 2.5, 77};
    cfg.gop_frames = kGop;
    cfg.b_frames = 2;
    cfg.layers = {{4, 30000.0, 34}, {2, 80000.0, 32}, {1, 200000.0, 30}};
    return simulcast::encode_simulcast(cfg);
  }();
  return clip;
}

conf::PolicyFuzzConfig plan_config(std::uint64_t seed) {
  conf::PolicyFuzzConfig cfg;
  cfg.seed = seed;
  cfg.pictures = 72;
  cfg.fault = fault::FaultConfig{seed * 31 + 7, 0.08, fault::kNetKinds};
  return cfg;
}

/// Runs one plan twice and asserts the full invariant set.  Returns the
/// (replayed) result for aggregate checks.
conf::PolicyFuzzResult check_plan(std::uint64_t seed) {
  const simulcast::SimulcastClip& clip = fuzz_clip();
  const simulcast::SwitchPolicy policy =
      conf::random_switch_policy(seed, clip.layer_count());
  const conf::PolicyFuzzConfig cfg = plan_config(seed);

  const conf::PolicyFuzzResult a = conf::run_policy_fuzz(clip, policy, cfg);
  const conf::PolicyFuzzResult b = conf::run_policy_fuzz(clip, policy, cfg);
  // Two-run replay identity: trace, digest, every counter.
  EXPECT_EQ(a, b) << "plan " << seed << " diverged on replay";

  EXPECT_EQ(a.pictures_walked, cfg.pictures);
  EXPECT_FALSE(a.layer_trace.empty()) << "plan " << seed;
  for (const auto& [pic, layer] : a.layer_trace) {
    // No rung outside the ladder, whatever the table asked for...
    EXPECT_LT(layer, clip.layer_count()) << "plan " << seed;
    // ...and forwarded-layer changes only ever land on aligned IDRs.
    EXPECT_TRUE(clip.idr_at(pic % clip.pictures()))
        << "plan " << seed << ": layer change to " << int(layer)
        << " at non-IDR picture " << pic;
  }
  EXPECT_LT(a.max_wait_pictures, static_cast<std::uint64_t>(kGop))
      << "plan " << seed;
  return a;
}

/// Shared sweep driver: plans [lo, hi] plus aggregate evidence that the
/// half actually exercised switching, loss and decode.
void sweep(std::uint64_t lo, std::uint64_t hi) {
  std::uint64_t switches = 0, faults = 0, decoded = 0;
  for (std::uint64_t seed = lo; seed <= hi; ++seed) {
    const conf::PolicyFuzzResult res = check_plan(seed);
    switches += res.switches_completed;
    faults += res.faults_injected;
    decoded += res.frames_decoded;
  }
  EXPECT_GT(switches, 0u);
  EXPECT_GT(faults, 0u);
  EXPECT_GT(decoded, 0u);
}

}  // namespace

// Split in half so ctest can run the sweep on two cores.
TEST(PolicyFuzz, SeededPlansHoldInvariantsLowHalf) {
  sweep(1, kPlans / 2);
}

TEST(PolicyFuzz, SeededPlansHoldInvariantsHighHalf) {
  sweep(kPlans / 2 + 1, kPlans);
}

TEST(PolicyFuzz, RateZeroTransportIsTheCleanPath) {
  // With a rate-0 plan the transport is the identity function: no
  // faults, no losses, and every walked picture decodes.
  const simulcast::SimulcastClip& clip = fuzz_clip();
  for (const std::uint64_t seed : {3ull, 57ull, 201ull}) {
    const simulcast::SwitchPolicy policy =
        conf::random_switch_policy(seed, clip.layer_count());
    conf::PolicyFuzzConfig cfg = plan_config(seed);
    cfg.fault.rate = 0.0;
    const conf::PolicyFuzzResult a = conf::run_policy_fuzz(clip, policy, cfg);
    const conf::PolicyFuzzResult b = conf::run_policy_fuzz(clip, policy, cfg);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.faults_injected, 0u);
    EXPECT_EQ(a.packets_lost, 0u);
    EXPECT_EQ(a.nals_lost, 0u);
    EXPECT_EQ(a.frames_decoded, a.pictures_walked);
  }
}

TEST(PolicyFuzz, GeneratorCoversTheDegenerateShapes) {
  // The seed space must keep producing the edge shapes the sweep's
  // invariants are only meaningful over: empty tables (default-target
  // only), single rows, fat overlapping tables, role-constrained rows,
  // and targets overshooting the ladder.
  std::size_t empty = 0, single = 0, fat = 0, role_rows = 0, overshoot = 0;
  for (std::uint64_t seed = 1; seed <= kPlans; ++seed) {
    const simulcast::SwitchPolicy p = conf::random_switch_policy(seed, 3);
    if (p.rules.empty()) ++empty;
    if (p.rules.size() == 1) ++single;
    if (p.rules.size() >= 2) ++fat;
    for (const simulcast::SwitchRule& r : p.rules) {
      if (r.speaker_role != -1) ++role_rows;
      if (r.target >= 3) ++overshoot;
    }
    if (p.default_target >= 3) ++overshoot;
  }
  EXPECT_GT(empty, kPlans / 10);
  EXPECT_GT(single, kPlans / 10);
  EXPECT_GT(fat, kPlans / 10);
  EXPECT_GT(role_rows, 20u);
  EXPECT_GT(overshoot, 20u);
}

TEST(PolicyFuzz, DistinctSeedsExploreDistinctSchedules) {
  // The fuzzer is not retesting one schedule 220 times: across a sample
  // of plans the (digest, trace) pairs spread widely.
  std::set<std::uint64_t> digests;
  std::set<std::size_t> trace_sizes;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const conf::PolicyFuzzResult res = conf::run_policy_fuzz(
        fuzz_clip(), conf::random_switch_policy(seed, 3), plan_config(seed));
    digests.insert(res.decode_digest);
    trace_sizes.insert(res.layer_trace.size());
  }
  EXPECT_GT(digests.size(), 30u);
  EXPECT_GT(trace_sizes.size(), 3u);
}
