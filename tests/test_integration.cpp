// End-to-end integration tests: biosignal -> classifier -> controller ->
// decoder mode / app manager, mirroring the full Fig 4 signal flow.
#include <gtest/gtest.h>

#include "adaptive/playback.hpp"
#include "affect/classifier.hpp"
#include "affect/scl.hpp"
#include "core/controller.hpp"
#include "core/manager_experiment.hpp"

namespace affect = affectsys::affect;
namespace adaptive = affectsys::adaptive;
namespace core = affectsys::core;
namespace android = affectsys::android;
namespace nn = affectsys::nn;

TEST(Integration, SpeechClassifierDrivesDecoderMode) {
  // Train a small two-emotion classifier, then stream synthesized speech
  // through the controller and verify the decoder mode follows.
  affect::CorpusProfile prof;
  prof.name = "itest";
  prof.num_speakers = 4;
  prof.emotions = {affect::Emotion::kAngry, affect::Emotion::kCalm};
  prof.utterances_per_speaker_emotion = 6;
  prof.utterance_seconds = 1.0;
  prof.speaker_spread = 0.1;

  nn::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 8;
  tc.learning_rate = 2e-3f;
  auto clf = affect::train_affect_classifier(nn::ModelKind::kMlp, prof, tc);

  affect::StreamConfig sc;
  sc.vote_window = 3;
  sc.min_dwell_s = 0.0;
  core::SystemController ctrl(sc, adaptive::AffectVideoPolicy{});

  affect::SpeechSynthesizer synth(404);
  double t = 0.0;
  // Sustained angry speech -> attention-critical -> Standard mode.
  for (int i = 0; i < 6; ++i) {
    const auto utt =
        synth.synthesize(affect::Emotion::kAngry, 60 + i, 1.0, 16000.0, 0.1);
    ctrl.on_classification(t += 1.0, clf.classify(utt.samples).emotion);
  }
  EXPECT_EQ(ctrl.current_video_mode(), adaptive::DecoderMode::kStandard);

  // Sustained calm speech -> power saving (DF off for kCalm).
  for (int i = 0; i < 8; ++i) {
    const auto utt =
        synth.synthesize(affect::Emotion::kCalm, 70 + i, 1.0, 16000.0, 0.1);
    ctrl.on_classification(t += 1.0, clf.classify(utt.samples).emotion);
  }
  EXPECT_EQ(ctrl.current_video_mode(), adaptive::DecoderMode::kDeblockOff);
}

TEST(Integration, SclPipelineReproducesPlaybackSaving) {
  // Full Fig 6 bottom pipeline: SCL trace -> estimator -> smoothed stream
  // -> mode policy -> energy integration over the 40-minute session.
  adaptive::PlaybackConfig pc;
  pc.video.frames = 24;
  adaptive::AdaptiveDecoderSystem sys(pc);

  affect::SclConfig scfg;
  affect::SclGenerator gen(scfg);
  const auto tl = affect::uulmmac_session_timeline();
  const auto trace = gen.generate(tl);
  affect::SclEmotionEstimator est;
  est.calibrate(trace, scfg.sample_rate_hz, tl);

  const auto oracle = adaptive::simulate_playback(
      sys, tl, adaptive::AffectVideoPolicy{});
  const auto estimated = adaptive::simulate_playback_from_scl(
      sys, trace, scfg.sample_rate_hz, est, adaptive::AffectVideoPolicy{});

  // The classifier-driven run should save a similar amount to the
  // ground-truth-driven run (within a loose band).
  EXPECT_GT(estimated.energy_saving(), oracle.energy_saving() - 0.15);
  EXPECT_LT(estimated.energy_saving(), oracle.energy_saving() + 0.15);
}

TEST(Integration, ControllerEmotionFeedsAppManagerKills) {
  // Build the affect table, route emotions through the controller, and
  // verify kill decisions change with the controller's stable emotion.
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  core::AppAffectTable table;
  table.learn_from_profile(affect::Emotion::kExcited, android::subject(3),
                           catalog);
  table.learn_from_profile(affect::Emotion::kCalm, android::subject(4),
                           catalog);
  core::EmotionalKillPolicy policy(table);

  affect::StreamConfig sc;
  sc.vote_window = 1;
  sc.min_dwell_s = 0.0;
  core::SystemController ctrl(sc, adaptive::AffectVideoPolicy{}, &policy);

  // Candidates: a calling app (excited-favoured) vs a calendar app
  // (calm-favoured).
  const auto calling =
      android::apps_in_category(catalog, android::AppCategory::kCalling)[0];
  const auto calendar = android::apps_in_category(
      catalog, android::AppCategory::kCalendarApps)[0];
  std::vector<android::VictimCandidate> candidates = {
      {calling, 0.0, 0.0, 100, 1}, {calendar, 1.0, 1.0, 100, 1}};

  ctrl.on_classification(0.0, affect::Emotion::kExcited);
  EXPECT_EQ(policy.select_victim(candidates), calendar);

  ctrl.on_classification(1.0, affect::Emotion::kCalm);
  EXPECT_EQ(policy.select_victim(candidates), calling);
}

TEST(Integration, FullManagerExperimentEndToEnd) {
  core::ManagerExperimentConfig cfg;
  cfg.monkey.seed = 5;
  const auto res = core::run_manager_experiment(cfg);
  // Both timelines render (Fig 9) and savings are positive (Fig 10).
  const auto base_chart = res.baseline_trace.render_timeline(
      res.catalog, res.duration_s, 60);
  const auto prop_chart = res.proposed_trace.render_timeline(
      res.catalog, res.duration_s, 60);
  EXPECT_FALSE(base_chart.empty());
  EXPECT_FALSE(prop_chart.empty());
  EXPECT_GT(res.memory_saving(), 0.0);
  // The proposed manager kills at most as often as the baseline reloads
  // demand; both runs saw identical launch sequences.
  EXPECT_EQ(res.baseline.cold_starts + res.baseline.warm_starts,
            res.proposed.cold_starts + res.proposed.warm_starts);
}
