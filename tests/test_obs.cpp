// Tests for the observability layer: registry semantics, histogram
// bucketing, scoped timers and JSON serialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace obs = affectsys::obs;

TEST(Registry, SameNameReturnsSameMetric) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x.count");
  obs::Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(&reg.gauge("x.gauge"), &reg.gauge("x.gauge"));
  EXPECT_EQ(&reg.histogram("x.hist"), &reg.histogram("x.hist"));
}

TEST(Registry, ResetValuesKeepsRegistrations) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("y.count");
  obs::Gauge& g = reg.gauge("y.gauge");
  obs::Histogram& h = reg.histogram("y.hist");
  c.add(5);
  g.set(2.5);
  h.observe(100.0);
  reg.reset_values();
  // Same objects (cached references stay valid), zeroed values.
  EXPECT_EQ(&reg.counter("y.count"), &c);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(Counter, ConcurrentAddsDoNotLoseIncrements) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("t.count");
  constexpr int kThreads = 4;
  constexpr int kAdds = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Histogram, ObservationsLandInTheRightBuckets) {
  const double bounds[] = {10.0, 100.0, 1000.0};
  obs::Histogram h{bounds};
  h.observe(5.0);     // <= 10
  h.observe(10.0);    // inclusive upper edge
  h.observe(50.0);    // <= 100
  h.observe(5000.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow bucket
  EXPECT_DOUBLE_EQ(h.sum(), 5065.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5065.0 / 4.0);
}

TEST(Histogram, RejectsBadBounds) {
  const double unsorted[] = {5.0, 1.0};
  EXPECT_THROW(obs::Histogram{unsorted}, std::invalid_argument);
  std::vector<double> too_many(obs::Histogram::kMaxBounds + 1);
  for (std::size_t i = 0; i < too_many.size(); ++i) {
    too_many[i] = static_cast<double>(i);
  }
  EXPECT_THROW(obs::Histogram{too_many}, std::invalid_argument);
}

TEST(ScopedTimer, RecordsPositiveDurations) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("t.ns");
  {
    obs::ScopedTimerNs timer(h);
    // A handful of volatile stores so the scope is not empty.
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = i;
    (void)sink;
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.sum(), 0.0);
}

#if defined(AFFECTSYS_METRICS) && AFFECTSYS_METRICS
TEST(Macros, RecordIntoGlobalRegistry) {
  obs::Counter& c = obs::Registry::global().counter("obstest.macro_count");
  const std::uint64_t before = c.value();
  AFFECTSYS_COUNT("obstest.macro_count", 2);
  AFFECTSYS_COUNT("obstest.macro_count", 3);
  EXPECT_EQ(c.value(), before + 5);

  AFFECTSYS_GAUGE_SET("obstest.macro_gauge", 1.5);
  EXPECT_EQ(obs::Registry::global().gauge("obstest.macro_gauge").value(), 1.5);

  {
    AFFECTSYS_TIME_SCOPE("obstest.macro_ns");
  }
  EXPECT_GE(obs::Registry::global().histogram("obstest.macro_ns").count(), 1u);
}
#endif

TEST(Json, WriterEscapesAndNests) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("quote\"key").value("line\nbreak");
  w.key("nums").begin_array();
  w.value(std::uint64_t{42});
  w.value(2.5);
  w.value(true);
  w.end_array();
  w.end_object();
  const std::string& s = w.str();
  EXPECT_NE(s.find("\"quote\\\"key\""), std::string::npos);
  EXPECT_NE(s.find("line\\nbreak"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_NE(s.find("true"), std::string::npos);
  // Balanced delimiters.
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
            std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['),
            std::count(s.begin(), s.end(), ']'));
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
  obs::JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(w.str().find("inf"), std::string::npos);
  EXPECT_NE(w.str().find("null"), std::string::npos);
}

TEST(Json, RegistrySnapshotContainsAllSections) {
  obs::Registry reg;
  reg.counter("a.frames").add(7);
  reg.gauge("a.saving").set(0.25);
  reg.histogram("a.ns").observe(123.0);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"a.frames\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"a.saving\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"mean\": 123"), std::string::npos);
}

// ------------------------------------------------------------- MetricScope

TEST(MetricScope, PrefixesNamesWithScope) {
  obs::Registry reg;
  obs::MetricScope scope("serve.s3", reg);
  scope.counter("affect.windows_dropped").add(2);
  scope.gauge("backlog").set(5.0);
  scope.histogram("tick_ns").observe(10.0);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"serve.s3.affect.windows_dropped\": 2"),
            std::string::npos);
  EXPECT_NE(json.find("\"serve.s3.backlog\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"serve.s3.tick_ns\""), std::string::npos);
}

// Un-prefixed names must stay byte-compatible: an empty scope resolves
// to exactly the same metric object as an unscoped registry lookup, so
// every pre-existing dashboard/grep keeps working.
TEST(MetricScope, EmptyScopeIsByteCompatibleWithUnscopedNames) {
  obs::Registry reg;
  obs::MetricScope scope("", reg);
  EXPECT_EQ(&scope.counter("affect.windows_dropped"),
            &reg.counter("affect.windows_dropped"));
  EXPECT_EQ(obs::scoped_metric_name("", "a.b"), "a.b");
  EXPECT_EQ(obs::scoped_metric_name("serve.s1", "a.b"), "serve.s1.a.b");
}

TEST(MetricScope, DistinctScopesIsolateSessions) {
  obs::Registry reg;
  obs::MetricScope s1("serve.s1", reg);
  obs::MetricScope s2("serve.s2", reg);
  s1.counter("frames").add(3);
  s2.counter("frames").add(9);
  EXPECT_EQ(reg.counter("serve.s1.frames").value(), 3u);
  EXPECT_EQ(reg.counter("serve.s2.frames").value(), 9u);
}

TEST(MetricScope, DefaultConstructedUsesGlobalRegistryUnprefixed) {
  obs::MetricScope scope;
  EXPECT_EQ(&scope.registry(), &obs::Registry::global());
  EXPECT_TRUE(scope.scope().empty());
}
