// Media transport suite (ctest label "net"): wire/serial arithmetic,
// packetizer/depacketizer round trips, jitter-buffer ordering across
// the uint16 wrap, XOR-FEC recovery, channel determinism, and the
// seeded loss/jitter/FEC end-to-end sweep of ISSUE 6 — packetize ->
// drop/reorder -> depacketize -> decode, with bit-match-by-POC checks
// where FEC recovers and resync-counter checks where it doesn't.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "fault/plan.hpp"
#include "fault/scenario.hpp"
#include "h264/decoder.hpp"
#include "h264/nal.hpp"
#include "net/channel.hpp"
#include "net/fec.hpp"
#include "net/jitter.hpp"
#include "net/packetizer.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "serve/session.hpp"

namespace fault = affectsys::fault;
namespace h264 = affectsys::h264;
namespace net = affectsys::net;
namespace serve = affectsys::serve;

namespace {

net::MediaPacket mk_packet(std::uint16_t seq) {
  net::MediaPacket p;
  p.seq = seq;
  p.kind = net::PacketKind::kSingle;
  p.nal_header = 0x65;
  p.payload = {static_cast<std::uint8_t>(seq & 0xFF),
               static_cast<std::uint8_t>(seq >> 8)};
  return p;
}

/// Wraps packets as in-order jitter releases (depacketizer input).
std::vector<net::Released> as_released(
    const std::vector<net::MediaPacket>& packets) {
  std::vector<net::Released> rel;
  for (const auto& p : packets) rel.push_back(net::Released{false, p.seq, p});
  return rel;
}

bool same_frame(const h264::YuvFrame& a, const h264::YuvFrame& b) {
  return a.y.data == b.y.data && a.cb.data == b.cb.data &&
         a.cr.data == b.cr.data;
}

/// Clean strict decode of the reference clip, keyed by POC.
const std::map<int, h264::DecodedPicture>& clean_by_poc() {
  static const std::map<int, h264::DecodedPicture> pics = [] {
    h264::Decoder dec(h264::DecoderConfig{true, /*resilient=*/false});
    std::map<int, h264::DecodedPicture> out;
    for (auto& pic : dec.decode_annexb(fault::scenario_reference_stream())) {
      out.emplace(pic.poc, std::move(pic));
    }
    return out;
  }();
  return pics;
}

struct E2eResult {
  std::vector<h264::DecodedPicture> pics;
  net::TransportStats stats;
  net::ChannelStats channel;
  std::uint64_t loss_signals = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t resync_skips = 0;
};

/// How many times run_e2e streams the clip through the link.  Two
/// passes matter: the clip holds a single IDR (gop_size == frame
/// count), so a pass-1 loss needs the pass-2 IDR to resync at, and
/// pass-2 packets are the successors that expose pass-1 tail gaps to
/// the jitter buffer — exactly how the serve path's wrapping clip
/// behaves.
constexpr int kE2ePasses = 2;

/// The ISSUE 6 sweep body: stream the reference clip through a
/// TransportLink (one access unit per tick) into a resilient decoder
/// that takes loss events via notify_loss, then drain.
E2eResult run_e2e(std::uint64_t seed, double rate, std::uint32_t kinds,
                  bool fec) {
  fault::FaultPlan plan(fault::FaultConfig{seed, rate, kinds});
  fault::FaultCounts counts;
  net::TransportLink link(fault::net_scenario_transport(fec), &plan, &counts);
  const std::vector<h264::NalUnit> units =
      h264::unpack_annexb(fault::scenario_reference_stream());

  h264::Decoder dec(h264::DecoderConfig{true, /*resilient=*/true});
  E2eResult r;
  const auto drain = [&](std::uint64_t now) {
    for (const net::DepacketizerEvent& ev : link.receive(now)) {
      if (ev.loss) {
        dec.notify_loss();
        continue;
      }
      if (auto pic = dec.decode_nal(ev.nal.nal)) r.pics.push_back(*pic);
    }
  };

  std::uint64_t tick = 0;
  std::uint32_t au = 0;
  for (int pass = 0; pass < kE2ePasses; ++pass) {
    std::size_t i = 0;
    while (i < units.size()) {
      std::vector<h264::NalUnit> au_units;
      while (i < units.size()) {
        const bool slice = h264::is_slice(units[i]);
        au_units.push_back(units[i++]);
        if (slice) break;
      }
      link.send(au_units, au++, 0, tick);
      drain(tick);
      ++tick;
    }
  }
  for (int extra = 0; extra < 64 && !link.idle(); ++extra) drain(tick++);
  drain(tick + 8);

  r.stats = link.stats();
  r.channel = link.channel_stats();
  r.loss_signals = dec.activity().loss_signals;
  r.resyncs = dec.activity().resyncs;
  r.resync_skips = dec.activity().resync_skips;
  return r;
}

/// Every decoded picture must equal the clean decode of the same POC —
/// the resilient-decoder + FEC contract: damaged pictures are skipped,
/// never silently wrong.
void expect_pics_match_clean(const E2eResult& r, const char* what) {
  for (const h264::DecodedPicture& pic : r.pics) {
    const auto it = clean_by_poc().find(pic.poc);
    ASSERT_NE(it, clean_by_poc().end()) << what << ": unknown poc " << pic.poc;
    EXPECT_TRUE(same_frame(pic.frame, it->second.frame))
        << what << ": poc " << pic.poc << " diverged from clean decode";
  }
}

}  // namespace

// ---------------------------------------------------------------- wire

TEST(Wire, Seq16WrapSafeComparisons) {
  // The satellite-2 bug class: naive `a < b` breaks at 65535 -> 0.
  EXPECT_TRUE(net::seq16_newer(0, 65535));
  EXPECT_FALSE(net::seq16_newer(65535, 0));
  EXPECT_TRUE(net::seq16_newer(100, 50));
  EXPECT_FALSE(net::seq16_newer(50, 100));
  EXPECT_FALSE(net::seq16_newer(7, 7));
  EXPECT_EQ(net::seq16_delta(0, 65535), 1);
  EXPECT_EQ(net::seq16_delta(65535, 0), -1);
  EXPECT_EQ(net::seq16_delta(5, 5), 0);
  EXPECT_TRUE(net::seq16_newer(32767, 0));   // edge of the half-space
  EXPECT_FALSE(net::seq16_newer(32768, 0));  // and one past it
}

TEST(Wire, SeqUnrollerMonotoneAcrossWrap) {
  net::SeqUnroller u;
  const std::uint64_t a = u.unroll(65534);
  const std::uint64_t b = u.unroll(65535);
  const std::uint64_t c = u.unroll(0);
  const std::uint64_t d = u.unroll(1);
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(c, a + 2);
  EXPECT_EQ(d, a + 3);
  // Re-presenting an older seq maps back to its original position.
  EXPECT_EQ(u.peek(65535), b);
}

TEST(Wire, SerializeParseRoundTrip) {
  net::MediaPacket p;
  p.seq = 0xBEEF;
  p.timestamp = 0x01020304;
  p.generation = 7;
  p.kind = net::PacketKind::kFragMiddle;
  p.marker = true;
  p.nal_header = 0x65;
  p.fec_base = 0xFFFE;
  p.fec_count = 4;
  p.payload = {0x00, 0x00, 0x03, 0x00, 0xAB};
  const auto bytes = net::serialize_packet(p);
  ASSERT_EQ(bytes.size(), net::kWireHeaderBytes + p.payload.size());
  const auto back = net::parse_packet(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, p);
}

TEST(Wire, ParseRejectsTruncationAndBadFields) {
  const auto bytes = net::serialize_packet(mk_packet(3));
  for (std::size_t len = 0; len < net::kWireHeaderBytes; ++len) {
    EXPECT_FALSE(net::parse_packet(std::span<const std::uint8_t>(
                     bytes.data(), len))
                     .has_value())
        << "length " << len;
  }
  auto bad_kind = bytes;
  bad_kind[10] = 0x7E;
  EXPECT_FALSE(net::parse_packet(bad_kind).has_value());
  // Byte 11 is (layer << 1) | marker: 0x02 became "layer 1, no marker",
  // so the first invalid value is layer == kMaxLayers.
  auto layer_ok = bytes;
  layer_ok[11] = 0x02;
  const auto parsed = net::parse_packet(layer_ok);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->layer, 1);
  EXPECT_FALSE(parsed->marker);
  auto bad_layer = bytes;
  bad_layer[11] = static_cast<std::uint8_t>(net::kMaxLayers << 1);
  EXPECT_FALSE(net::parse_packet(bad_layer).has_value());
}

// ---------------------------------------------------------- packetizer

TEST(Packetizer, AggregatesSmallAndFragmentsLarge) {
  std::vector<h264::NalUnit> nals(3);
  nals[0].type = h264::NalType::kSps;
  nals[0].ref_idc = 3;
  nals[0].payload = {0x42, 0x00, 0x1E};
  nals[1].type = h264::NalType::kPps;
  nals[1].ref_idc = 3;
  nals[1].payload = {0xC8};
  nals[2].type = h264::NalType::kSliceIdr;
  nals[2].ref_idc = 3;
  nals[2].payload.assign(40, 0x5A);

  net::Packetizer pk(net::PacketizerConfig{16, true});
  const auto packets = pk.packetize(nals, 9, 2);
  ASSERT_EQ(packets.size(), 4u);  // 1 aggregate + 3 fragments
  EXPECT_EQ(packets[0].kind, net::PacketKind::kAggregate);
  EXPECT_EQ(packets[1].kind, net::PacketKind::kFragStart);
  EXPECT_EQ(packets[2].kind, net::PacketKind::kFragMiddle);
  EXPECT_EQ(packets[3].kind, net::PacketKind::kFragEnd);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(packets[i].seq, i);
    EXPECT_EQ(packets[i].timestamp, 9u);
    EXPECT_EQ(packets[i].generation, 2u);
    EXPECT_EQ(packets[i].marker, i + 1 == packets.size());
  }

  net::Depacketizer dp;
  const auto events = dp.push(as_released(packets));
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    ASSERT_FALSE(events[i].loss);
    EXPECT_EQ(events[i].nal.nal.type, nals[i].type);
    EXPECT_EQ(events[i].nal.nal.ref_idc, nals[i].ref_idc);
    EXPECT_EQ(events[i].nal.nal.payload, nals[i].payload);
  }
  EXPECT_EQ(dp.stats().aggregates_split, 1u);
  EXPECT_EQ(dp.stats().fragments_reassembled, 1u);
  EXPECT_EQ(dp.stats().loss_events, 0u);
}

TEST(Packetizer, FragmentBoundarySpansEmulationPattern) {
  // An emulation-prevention pattern (00 00 03 00 / 00 00 01) split
  // mid-sequence by the MTU must reassemble byte-exactly — fragments
  // carry raw EBSP bytes, framing never reinterprets them.
  h264::NalUnit nal;
  nal.type = h264::NalType::kSliceNonIdr;
  nal.ref_idc = 2;
  nal.payload = {0xAA, 0x00, 0x00, 0x03, 0x00, 0x00,
                 0x01, 0xBB, 0x00, 0x00, 0x00};
  for (std::size_t mtu = 1; mtu <= nal.payload.size() + 1; ++mtu) {
    net::Packetizer pk(net::PacketizerConfig{mtu, true});
    net::Depacketizer dp;
    const auto events =
        dp.push(as_released(pk.packetize(std::span(&nal, 1), 0, 0)));
    ASSERT_EQ(events.size(), 1u) << "mtu " << mtu;
    ASSERT_FALSE(events[0].loss);
    EXPECT_EQ(events[0].nal.nal.payload, nal.payload) << "mtu " << mtu;
  }
}

TEST(Depacketizer, LossAbortsFragmentChain) {
  h264::NalUnit nal;
  nal.type = h264::NalType::kSliceIdr;
  nal.ref_idc = 3;
  nal.payload.assign(24, 0x33);
  net::Packetizer pk(net::PacketizerConfig{8, true});
  const auto packets = pk.packetize(std::span(&nal, 1), 0, 0);
  ASSERT_EQ(packets.size(), 3u);

  // Middle fragment declared lost: one loss event, no NAL, and the
  // trailing fragment is eaten silently (same NAL, already counted).
  std::vector<net::Released> rel;
  rel.push_back(net::Released{false, packets[0].seq, packets[0]});
  rel.push_back(net::Released{true, packets[1].seq, {}});
  rel.push_back(net::Released{false, packets[2].seq, packets[2]});
  net::Depacketizer dp;
  const auto events = dp.push(rel);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].loss);
  EXPECT_EQ(dp.stats().nals_out, 0u);
  EXPECT_EQ(dp.stats().loss_events, 1u);
}

// -------------------------------------------------------------- jitter

TEST(Jitter, WrapCrossingReorderHeals) {
  // Satellite 2's regression: a reorder straddling 65535 -> 0 must
  // release in serial order with no spurious loss.
  net::JitterBuffer jb(net::JitterConfig{2});
  EXPECT_TRUE(jb.insert(mk_packet(65534), 0));
  EXPECT_TRUE(jb.insert(mk_packet(0), 0));  // arrives before 65535
  auto r = jb.pop_due(0);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].seq, 65534);

  EXPECT_TRUE(jb.insert(mk_packet(65535), 1));
  EXPECT_TRUE(jb.insert(mk_packet(1), 1));
  r = jb.pop_due(1);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].seq, 65535);
  EXPECT_EQ(r[1].seq, 0);
  EXPECT_EQ(r[2].seq, 1);
  EXPECT_EQ(jb.stats().lost_declared, 0u);
}

TEST(Jitter, GapDeclaredLostAfterDepthAcrossWrap) {
  net::JitterBuffer jb(net::JitterConfig{1});
  EXPECT_TRUE(jb.insert(mk_packet(65535), 0));
  ASSERT_EQ(jb.pop_due(0).size(), 1u);

  EXPECT_TRUE(jb.insert(mk_packet(1), 1));  // seq 0 missing
  EXPECT_TRUE(jb.pop_due(1).empty());       // still inside the depth
  auto r = jb.pop_due(2);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_TRUE(r[0].lost);
  EXPECT_EQ(r[0].seq, 0);
  ASSERT_FALSE(r[1].lost);
  EXPECT_EQ(r[1].seq, 1);
  EXPECT_EQ(jb.stats().lost_declared, 1u);
}

TEST(Jitter, DuplicateAndLateDrops) {
  net::JitterBuffer jb(net::JitterConfig{2});
  EXPECT_TRUE(jb.insert(mk_packet(10), 0));
  EXPECT_FALSE(jb.insert(mk_packet(10), 0));  // duplicate while buffered
  ASSERT_EQ(jb.pop_due(0).size(), 1u);
  EXPECT_FALSE(jb.insert(mk_packet(10), 1));  // late: already released
  EXPECT_FALSE(jb.would_accept(10));
  EXPECT_TRUE(jb.would_accept(11));
  EXPECT_EQ(jb.stats().duplicates_dropped, 1u);
  EXPECT_EQ(jb.stats().late_dropped, 1u);
}

// ----------------------------------------------------------------- fec

TEST(Fec, RecoversSingleLossAcrossWrap) {
  const net::FecConfig fc{true, 4};
  net::FecEncoder enc(fc);
  std::vector<net::MediaPacket> group;
  std::optional<net::MediaPacket> parity;
  for (std::uint16_t s : {65533, 65534, 65535, 0}) {
    net::MediaPacket p = mk_packet(s);
    if (s == 65534) p.payload.push_back(0x7F);  // unequal lengths
    group.push_back(p);
    if (auto out = enc.add(p)) parity = std::move(out);
  }
  ASSERT_TRUE(parity.has_value());
  EXPECT_EQ(parity->kind, net::PacketKind::kParity);
  EXPECT_EQ(parity->fec_base, 65533);
  EXPECT_EQ(parity->fec_count, 4);

  net::FecRecovery rec(fc);
  for (const auto& p : group) {
    if (p.seq != 65535) rec.add_data(p);
  }
  rec.add_parity(*parity);
  const auto rebuilt = rec.recover();
  ASSERT_EQ(rebuilt.size(), 1u);
  EXPECT_EQ(rebuilt[0], group[2]);  // header fields and payload bit-exact
  EXPECT_EQ(rec.stats().packets_recovered, 1u);
}

TEST(Fec, TwoLossesInGroupStayMissing) {
  const net::FecConfig fc{true, 4};
  net::FecEncoder enc(fc);
  std::vector<net::MediaPacket> group;
  std::optional<net::MediaPacket> parity;
  for (std::uint16_t s = 0; s < 4; ++s) {
    group.push_back(mk_packet(s));
    if (auto out = enc.add(group.back())) parity = std::move(out);
  }
  ASSERT_TRUE(parity.has_value());
  net::FecRecovery rec(fc);
  rec.add_data(group[0]);
  rec.add_data(group[3]);
  rec.add_parity(*parity);
  EXPECT_TRUE(rec.recover().empty());
  EXPECT_EQ(rec.stats().packets_recovered, 0u);
  // The straggler shows up later: now recoverable.
  rec.add_data(group[1]);
  const auto rebuilt = rec.recover();
  ASSERT_EQ(rebuilt.size(), 1u);
  EXPECT_EQ(rebuilt[0], group[2]);
}

TEST(Fec, CompleteGroupDiscardsParity) {
  const net::FecConfig fc{true, 2};
  net::FecEncoder enc(fc);
  std::optional<net::MediaPacket> parity;
  std::vector<net::MediaPacket> group;
  for (std::uint16_t s = 0; s < 2; ++s) {
    group.push_back(mk_packet(s));
    if (auto out = enc.add(group.back())) parity = std::move(out);
  }
  net::FecRecovery rec(fc);
  for (const auto& p : group) rec.add_data(p);
  rec.add_parity(*parity);
  EXPECT_TRUE(rec.recover().empty());
  EXPECT_EQ(rec.stats().groups_complete, 1u);
}

// ------------------------------------------------------------- channel

TEST(Channel, RateZeroIsIdentity) {
  fault::FaultPlan plan(fault::FaultConfig{3, 0.0, fault::kNetKinds});
  fault::FaultCounts counts;
  net::NetChannel ch(net::ChannelConfig{}, &plan, &counts);
  for (std::uint16_t s = 0; s < 50; ++s) ch.send(mk_packet(s), 4);
  const auto out = ch.deliver(4);
  ASSERT_EQ(out.size(), 50u);
  for (std::uint16_t s = 0; s < 50; ++s) EXPECT_EQ(out[s].seq, s);
  EXPECT_EQ(ch.stats().dropped(), 0u);
  EXPECT_EQ(counts.total, 0u);
}

TEST(Channel, SeededReplayIdentity) {
  const auto run = [] {
    fault::FaultPlan plan(fault::FaultConfig{77, 0.3, fault::kNetKinds});
    net::NetChannel ch(net::ChannelConfig{3}, &plan, nullptr);
    std::vector<std::pair<std::uint64_t, std::uint16_t>> schedule;
    std::uint64_t tick = 0;
    for (std::uint16_t s = 0; s < 300; ++s) {
      if (s % 4 == 0) {
        for (const auto& p : ch.deliver(tick)) {
          schedule.emplace_back(tick, p.seq);
        }
        ++tick;
      }
      ch.send(mk_packet(s), tick);
    }
    for (std::uint64_t t = tick; t < tick + 8; ++t) {
      for (const auto& p : ch.deliver(t)) schedule.emplace_back(t, p.seq);
    }
    return schedule;
  };
  EXPECT_EQ(run(), run());
}

// ------------------------------------------------- end-to-end transport

TEST(Transport, CleanChannelIsIdentity) {
  for (const bool fec : {false, true}) {
    const E2eResult r = run_e2e(1, 0.0, fault::kNetKinds, fec);
    ASSERT_EQ(r.pics.size(), kE2ePasses * clean_by_poc().size())
        << "fec " << fec;
    for (const auto& pic : r.pics) {
      EXPECT_TRUE(same_frame(pic.frame, clean_by_poc().at(pic.poc).frame));
    }
    EXPECT_EQ(r.channel.dropped(), 0u);
    EXPECT_EQ(r.loss_signals, 0u);
    EXPECT_EQ(r.stats.nals_sent, r.stats.nals_received);
  }
}

TEST(Transport, FecRecoversSeededLossSweep) {
  // ISSUE 6 acceptance: at seeded 5% packet loss with FEC on, at least
  // 0.6 of dropped data packets recover (group-of-4 independent-loss
  // math predicts ~0.95^3 ~= 0.86 per loss), and every decoded picture
  // is bit-exact against the clean decode at its POC.
  const std::uint32_t loss_only = fault::kind_bit(fault::FaultKind::kPacketLoss);
  std::uint64_t dropped = 0;
  std::uint64_t recovered = 0;
  std::uint64_t full_runs = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const E2eResult r = run_e2e(seed, 0.05, loss_only, /*fec=*/true);
    expect_pics_match_clean(r, "fec sweep");
    dropped += r.channel.dropped_data;
    recovered += r.stats.packets_recovered;
    if (r.stats.loss_events == 0 &&
        r.stats.nals_received == r.stats.nals_sent) {
      // Every loss recovered in time: the decode must be complete.
      EXPECT_EQ(r.pics.size(), kE2ePasses * clean_by_poc().size())
          << "seed " << seed;
      ++full_runs;
    }
  }
  ASSERT_GT(dropped, 0u) << "sweep never exercised loss";
  EXPECT_GE(static_cast<double>(recovered),
            0.6 * static_cast<double>(dropped))
      << recovered << " of " << dropped << " recovered";
  EXPECT_GT(full_runs, 0u) << "no run recovered everything";
}

TEST(Transport, NoFecLossResyncsWithoutCrash) {
  // FEC off: losses must surface as notify_loss resyncs (skip to the
  // next IDR), never as wrong pixels or a crash.
  const std::uint32_t kinds = fault::kind_bit(fault::FaultKind::kPacketLoss) |
                              fault::kind_bit(fault::FaultKind::kBurstLoss);
  std::uint64_t signals = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t skips = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const E2eResult r = run_e2e(seed, 0.08, kinds, /*fec=*/false);
    expect_pics_match_clean(r, "no-fec sweep");
    EXPECT_EQ(r.stats.packets_recovered, 0u);
    signals += r.loss_signals;
    resyncs += r.resyncs;
    skips += r.resync_skips;
  }
  EXPECT_GT(signals, 0u);
  EXPECT_GT(resyncs, 0u);
  EXPECT_GT(skips, 0u);
}

TEST(Transport, ReorderAndDuplicateAreFullyHealed) {
  // Reorder displaces by one slot (inside the jitter depth) and the
  // buffer discards duplicates, so these kinds alone must yield a
  // byte-perfect decode.
  const std::uint32_t kinds =
      fault::kind_bit(fault::FaultKind::kPacketReorder) |
      fault::kind_bit(fault::FaultKind::kPacketDuplicate);
  const E2eResult r = run_e2e(5, 0.4, kinds, /*fec=*/false);
  ASSERT_EQ(r.pics.size(), kE2ePasses * clean_by_poc().size());
  for (const auto& pic : r.pics) {
    EXPECT_TRUE(same_frame(pic.frame, clean_by_poc().at(pic.poc).frame));
  }
  EXPECT_EQ(r.loss_signals, 0u);
  EXPECT_GT(r.channel.reordered + r.channel.duplicated, 0u);
}

TEST(Transport, SequenceWrapEndToEnd) {
  // >65536 packets through a clean link: the seq counter wraps and
  // nothing is declared lost, duplicated or misordered.
  net::TransportConfig tc = fault::net_scenario_transport(false);
  net::TransportLink link(tc, nullptr, nullptr);
  h264::NalUnit nal;
  nal.type = h264::NalType::kSliceNonIdr;
  nal.ref_idc = 2;
  std::uint64_t received = 0;
  for (std::uint64_t t = 0; t < 66000; ++t) {
    nal.payload = {static_cast<std::uint8_t>(t), 0x01,
                   static_cast<std::uint8_t>(t >> 8), 0x7F};
    link.send(std::span(&nal, 1), static_cast<std::uint32_t>(t), 0, t);
    for (const auto& ev : link.receive(t)) {
      ASSERT_FALSE(ev.loss) << "tick " << t;
      ASSERT_EQ(ev.nal.nal.payload[0], static_cast<std::uint8_t>(received));
      ++received;
    }
  }
  EXPECT_EQ(received, 66000u);
  EXPECT_EQ(link.jitter_stats().lost_declared, 0u);
}

// ------------------------------------------------- decoder loss signal

TEST(DecoderLoss, NotifyLossForcesResyncAtNextIdr) {
  const std::vector<h264::NalUnit> units =
      h264::unpack_annexb(fault::scenario_reference_stream());
  h264::Decoder dec(h264::DecoderConfig{true, /*resilient=*/true});
  std::vector<h264::DecodedPicture> pics;
  std::size_t decoded = 0;
  bool signalled = false;
  // Two passes: the clip has one IDR, so the resync target for a loss
  // in pass 1 is pass 2's opening keyframe (as with the serve path's
  // wrapping clip).
  for (int pass = 0; pass < 2; ++pass) {
    for (const h264::NalUnit& u : units) {
      if (!signalled && decoded == 3) {
        dec.notify_loss();
        signalled = true;
        EXPECT_TRUE(dec.awaiting_keyframe());
      }
      if (auto pic = dec.decode_nal(u)) {
        ++decoded;
        pics.push_back(*pic);
      }
    }
  }
  ASSERT_TRUE(signalled);
  EXPECT_EQ(dec.activity().loss_signals, 1u);
  EXPECT_EQ(dec.activity().resyncs, 1u);
  EXPECT_GT(dec.activity().resync_skips, 0u);
  // 3 pictures before the loss, all of pass 2 after the resync.
  EXPECT_EQ(pics.size(), 3 + clean_by_poc().size());
  for (const auto& pic : pics) {
    EXPECT_TRUE(same_frame(pic.frame, clean_by_poc().at(pic.poc).frame));
  }
}

TEST(DecoderLoss, StrictDecoderOnlyCounts) {
  h264::Decoder dec(h264::DecoderConfig{true, /*resilient=*/false});
  dec.notify_loss();
  EXPECT_EQ(dec.activity().loss_signals, 1u);
  EXPECT_FALSE(dec.awaiting_keyframe());
}

// ------------------------------------------------------ replay identity

TEST(NetScenario, TwoRunByteIdentityForEveryPlan) {
  for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
    for (const double rate : {0.0, 0.02, 0.05, 0.15}) {
      for (const bool fec : {false, true}) {
        fault::ScenarioConfig cfg;
        cfg.seed = seed;
        cfg.rate = rate;
        cfg.kinds = fault::kNetKinds;
        const auto a = fault::run_net_scenario(cfg,
                                               fault::net_scenario_transport(fec));
        const auto b = fault::run_net_scenario(cfg,
                                               fault::net_scenario_transport(fec));
        EXPECT_EQ(a, b) << "seed " << seed << " rate " << rate << " fec "
                        << fec;
      }
    }
  }
}

TEST(NetScenario, RateZeroMatchesCleanDecode) {
  fault::ScenarioConfig cfg;
  cfg.rate = 0.0;
  const auto res = fault::run_net_scenario(cfg);
  h264::Decoder dec(h264::DecoderConfig{true, /*resilient=*/true});
  const auto pics = dec.decode_annexb(fault::scenario_reference_stream());
  EXPECT_EQ(res.pixel_digest, fault::digest_pictures(pics));
  EXPECT_EQ(res.pictures, pics.size());
  EXPECT_EQ(res.packets_dropped, 0u);
  EXPECT_EQ(res.faults, 0u);
}

TEST(CrossSuite, NetKindsDoNotPerturbOtherSuites) {
  // Satellite 3: every suite masks its own sites, so widening a plan's
  // kind mask with kNetKinds must leave bitstream/audio/serve runs
  // byte-identical — pre-PR-6 seeds replay unchanged.
  fault::ScenarioConfig cfg;
  cfg.seed = 11;
  cfg.rate = 0.2;

  cfg.kinds = fault::kBitstreamKinds;
  const auto bs_a = fault::run_bitstream_scenario(cfg);
  cfg.kinds = fault::kBitstreamKinds | fault::kNetKinds;
  const auto bs_b = fault::run_bitstream_scenario(cfg);
  EXPECT_EQ(bs_a, bs_b);

  cfg.kinds = fault::kAudioKinds;
  const auto au_a = fault::run_audio_scenario(cfg);
  cfg.kinds = fault::kAudioKinds | fault::kNetKinds;
  const auto au_b = fault::run_audio_scenario(cfg);
  EXPECT_EQ(au_a, au_b);

  cfg.kinds = fault::kAllKinds & ~fault::kNetKinds;
  const auto sv_a = fault::run_serve_scenario(cfg);
  cfg.kinds = fault::kAllKinds;
  const auto sv_b = fault::run_serve_scenario(cfg);
  EXPECT_EQ(sv_a, sv_b);

  // And the converse: a net plan ignores foreign kinds.
  cfg.kinds = fault::kNetKinds;
  const auto nt_a = fault::run_net_scenario(cfg);
  cfg.kinds = fault::kAllKinds;
  const auto nt_b = fault::run_net_scenario(cfg);
  EXPECT_EQ(nt_a, nt_b);
}

// ------------------------------------------------------ serve transport

TEST(ServeTransport, ZeroLossDigestMatchesInProcessPath) {
  // With a perfect channel the transport-fed session must decode the
  // exact same pixels in the exact same ticks as the in-process path.
  const serve::SessionEnv env = fault::scenario_env();
  serve::SessionConfig base;
  base.seed = 5;

  serve::Session inproc(1, base, env, /*inline_inference=*/true);
  serve::SessionConfig tcfg = base;
  tcfg.transport = fault::net_scenario_transport(true);
  serve::Session piped(2, tcfg, env, /*inline_inference=*/true);

  for (std::uint64_t t = 0; t < 60; ++t) {
    inproc.pump_audio(t);
    inproc.tick_media(t, /*degrade_level=*/0);
    piped.pump_audio(t);
    piped.tick_media(t, /*degrade_level=*/0);
  }
  const serve::SessionReport a = inproc.report();
  const serve::SessionReport b = piped.report();
  EXPECT_EQ(a.decode_digest, b.decode_digest);
  EXPECT_EQ(a.stats.frames_decoded, b.stats.frames_decoded);
  EXPECT_EQ(a.stats.nals_deleted, b.stats.nals_deleted);
  EXPECT_EQ(b.stats.packets_lost, 0u);
  EXPECT_EQ(b.stats.nals_lost, 0u);
  EXPECT_GT(b.stats.packets_sent, 0u);
  EXPECT_EQ(b.transport.nals_sent, b.transport.nals_received);
}

TEST(ServeTransport, LossySessionReplaysByteIdentically) {
  const serve::SessionEnv env = fault::scenario_env();
  const auto run = [&] {
    serve::SessionConfig cfg;
    cfg.seed = 9;
    cfg.fault = fault::FaultConfig{41, 0.05, fault::kNetKinds};
    cfg.transport = fault::net_scenario_transport(true);
    serve::Session s(3, cfg, env, /*inline_inference=*/true);
    for (std::uint64_t t = 0; t < 50; ++t) {
      s.pump_audio(t);
      s.tick_media(t, 0);
    }
    return s.report();
  };
  const serve::SessionReport a = run();
  const serve::SessionReport b = run();
  EXPECT_EQ(a.decode_digest, b.decode_digest);
  EXPECT_EQ(a.stats.frames_decoded, b.stats.frames_decoded);
  EXPECT_EQ(a.stats.packets_lost, b.stats.packets_lost);
  EXPECT_EQ(a.stats.packets_recovered, b.stats.packets_recovered);
  EXPECT_EQ(a.stats.nals_lost, b.stats.nals_lost);
  EXPECT_GT(a.stats.packets_lost, 0u);
}