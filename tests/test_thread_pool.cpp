// Tests for the parallel runtime (core/thread_pool): submit futures,
// parallel_for coverage and exception semantics, nested loops, and the
// global-pool controls.
//
// Everything here must pass in both build modes: with
// -DAFFECTSYS_THREADS=OFF every pool is clamped to 0 workers and the
// same semantics hold via the inline (serial) path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/thread_pool.hpp"

namespace core = affectsys::core;

namespace {

/// Workers actually spawned for a requested count: the build flag clamps
/// every pool to inline mode when threads are off.
std::size_t effective(std::size_t requested) {
#if defined(AFFECTSYS_THREADS) && AFFECTSYS_THREADS
  return requested;
#else
  (void)requested;
  return 0;
#endif
}

/// Restores the global pool to its default size on scope exit so thread
/// sweeps in one test cannot leak into another.
struct GlobalPoolGuard {
  ~GlobalPoolGuard() { core::set_global_threads(core::default_thread_count()); }
};

}  // namespace

// ------------------------------------------------------------------ submit

TEST(ThreadPool, SubmitReturnsValueThroughFuture) {
  core::ThreadPool pool(2);
  EXPECT_EQ(pool.size(), effective(2));
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  core::ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, InlinePoolRunsSubmitOnCaller) {
  core::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  const auto caller = std::this_thread::get_id();
  auto fut = pool.submit([] { return std::this_thread::get_id(); });
  // With no workers the task must have executed before submit returned.
  EXPECT_EQ(fut.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(fut.get(), caller);
}

TEST(ThreadPool, OnPoolThreadDistinguishesWorkersFromCaller) {
  core::ThreadPool pool(1);
  EXPECT_FALSE(pool.on_pool_thread());
  auto fut = pool.submit([&pool] { return pool.on_pool_thread(); });
  // A worker sees true; in inline mode the caller (not a pool thread)
  // executes the task and sees false.
  EXPECT_EQ(fut.get(), pool.size() > 0);
}

// -------------------------------------------------------------- parallel_for

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  for (const std::size_t threads : {0u, 1u, 4u}) {
    for (const std::size_t grain : {1u, 7u, 64u, 5000u}) {
      core::ThreadPool pool(threads);
      std::vector<std::atomic<int>> hits(kN);
      pool.parallel_for(0, kN, grain, [&](std::size_t lo, std::size_t hi) {
        ASSERT_LE(lo, hi);
        ASSERT_LE(hi, kN);
        for (std::size_t i = lo; i < hi; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
      for (std::size_t i = 0; i < kN; ++i) {
        ASSERT_EQ(hits[i].load(), 1)
            << "index " << i << " threads=" << threads << " grain=" << grain;
      }
    }
  }
}

TEST(ThreadPool, ParallelForChunkBoundariesIndependentOfThreadCount) {
  // The decompositions in deblock/matmul rely on chunk boundaries being
  // a pure function of (begin, end, grain) — never of the worker count.
  using Range = std::pair<std::size_t, std::size_t>;
  auto collect = [](std::size_t threads) {
    core::ThreadPool pool(threads);
    std::mutex mu;
    std::vector<Range> chunks;
    pool.parallel_for(3, 103, 9, [&](std::size_t lo, std::size_t hi) {
      std::lock_guard<std::mutex> lk(mu);
      chunks.emplace_back(lo, hi);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto serial = collect(0);
  EXPECT_EQ(collect(1), serial);
  EXPECT_EQ(collect(4), serial);
}

TEST(ThreadPool, ParallelForZeroRangeNeverInvokesBody) {
  core::ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
  pool.parallel_for(7, 3, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForGrainLargerThanRangeIsOneChunk) {
  core::ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(10, 20, 100, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(lo, 10u);
    EXPECT_EQ(hi, 20u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ParallelForRethrowsFirstChunkException) {
  for (const std::size_t threads : {0u, 1u, 4u}) {
    core::ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(0, 100, 10,
                          [](std::size_t lo, std::size_t) {
                            if (lo == 50) throw std::runtime_error("chunk");
                          }),
        std::runtime_error)
        << "threads=" << threads;
  }
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  core::ThreadPool pool(2);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 100;
  std::vector<std::atomic<std::size_t>> sums(kOuter);
  pool.parallel_for(0, kOuter, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t o = lo; o < hi; ++o) {
      // The inner loop issued from a pool task must not wait on workers
      // that are all busy with outer chunks (bounded-pool deadlock); it
      // runs inline instead.
      pool.parallel_for(0, kInner, 8, [&](std::size_t ilo, std::size_t ihi) {
        for (std::size_t i = ilo; i < ihi; ++i) {
          sums[o].fetch_add(i + 1, std::memory_order_relaxed);
        }
      });
    }
  });
  for (std::size_t o = 0; o < kOuter; ++o) {
    EXPECT_EQ(sums[o].load(), kInner * (kInner + 1) / 2) << "outer " << o;
  }
}

TEST(ThreadPool, PoolOfSizeOneCompletesParallelFor) {
  core::ThreadPool pool(1);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(0, 256, 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(sum.load(), 255u * 256u / 2);
}

// ------------------------------------------------------------- global pool

TEST(GlobalPool, SetGlobalThreadsResizesAndFreeFunctionDispatches) {
  GlobalPoolGuard guard;
  core::set_global_threads(2);
  EXPECT_EQ(core::global_threads(), effective(2));
  std::atomic<std::size_t> count{0};
  core::parallel_for(0, 64, 4, [&](std::size_t lo, std::size_t hi) {
    count.fetch_add(hi - lo, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 64u);
  core::set_global_threads(0);
  EXPECT_EQ(core::global_threads(), 0u);
}

TEST(GlobalPool, DefaultThreadCountRespectsBuildFlag) {
#if defined(AFFECTSYS_THREADS) && AFFECTSYS_THREADS
  // Threads enabled: the default may still be 0 (single-core host or
  // AFFECTSYS_NUM_THREADS=0), so only sanity-bound it.
  EXPECT_LE(core::default_thread_count(), 1024u);
#else
  EXPECT_EQ(core::default_thread_count(), 0u);
#endif
}
