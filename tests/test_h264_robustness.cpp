// Robustness and failure-injection tests: the decoder must survive
// truncated, corrupted and Input-Selector-edited bitstreams with clean
// error signalling (BitstreamError), never undefined behaviour — exactly
// the regime the affect-driven NAL deletion puts it in.
#include <gtest/gtest.h>

#include <random>

#include "h264/bitstream.hpp"
#include "h264/decoder.hpp"
#include "h264/encoder.hpp"
#include "h264/quality.hpp"
#include "h264/testvideo.hpp"

namespace h264 = affectsys::h264;

namespace {

std::vector<std::uint8_t> reference_stream() {
  h264::VideoConfig vc{64, 64, 12, 1.0, 0.5, 1.0, 5};
  const auto video = h264::generate_test_video(vc);
  h264::EncoderConfig ec{64, 64, 26, 12, 2, 4, true};
  h264::Encoder enc(ec);
  return enc.encode_annexb(video);
}

}  // namespace

TEST(Robustness, TruncatedStreamsThrowOrDecodePartially) {
  const auto stream = reference_stream();
  for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const auto cut = static_cast<std::size_t>(frac * static_cast<double>(stream.size()));
    std::vector<std::uint8_t> truncated(stream.begin(),
                                        stream.begin() + static_cast<long>(cut));
    h264::Decoder dec;
    try {
      const auto pics = dec.decode_annexb(truncated);
      EXPECT_LE(pics.size(), 12u);
    } catch (const h264::BitstreamError&) {
      // Acceptable: clean error on a mid-NAL cut.
    }
  }
}

TEST(Robustness, SliceBeforeParameterSetsThrows) {
  const auto stream = reference_stream();
  auto units = h264::unpack_annexb(stream);
  // Drop SPS/PPS.
  std::vector<h264::NalUnit> no_ps;
  for (auto& u : units) {
    if (u.type != h264::NalType::kSps && u.type != h264::NalType::kPps) {
      no_ps.push_back(std::move(u));
    }
  }
  h264::Decoder dec;
  EXPECT_THROW(dec.decode_annexb(h264::pack_annexb(no_ps)),
               h264::BitstreamError);
}

TEST(Robustness, BitFlipFuzzNeverCrashes) {
  const auto stream = reference_stream();
  std::mt19937 rng(1234);
  std::uniform_int_distribution<std::size_t> pos_d(0, stream.size() - 1);
  std::uniform_int_distribution<int> bit_d(0, 7);
  int clean = 0, threw = 0;
  for (int iter = 0; iter < 200; ++iter) {
    auto corrupted = stream;
    // Flip 1-4 random bits.
    const int flips = 1 + iter % 4;
    for (int k = 0; k < flips; ++k) {
      corrupted[pos_d(rng)] ^= static_cast<std::uint8_t>(1 << bit_d(rng));
    }
    h264::Decoder dec;
    try {
      dec.decode_annexb(corrupted);
      ++clean;
    } catch (const h264::BitstreamError&) {
      ++threw;
    }
    // Any other exception type or a crash fails the test by escaping.
  }
  EXPECT_EQ(clean + threw, 200);
  EXPECT_GT(threw, 0) << "expected at least some corruptions to be detected";
}

TEST(Robustness, ByteDeletionFuzzNeverCrashes) {
  const auto stream = reference_stream();
  std::mt19937 rng(77);
  std::uniform_int_distribution<std::size_t> pos_d(0, stream.size() - 64);
  std::uniform_int_distribution<std::size_t> len_d(1, 48);
  for (int iter = 0; iter < 100; ++iter) {
    auto mutated = stream;
    const std::size_t pos = pos_d(rng);
    const std::size_t len = len_d(rng);
    mutated.erase(mutated.begin() + static_cast<long>(pos),
                  mutated.begin() + static_cast<long>(pos + len));
    h264::Decoder dec;
    try {
      dec.decode_annexb(mutated);
    } catch (const h264::BitstreamError&) {
    }
  }
  SUCCEED();
}

TEST(Robustness, EmptyAndGarbageStreams) {
  h264::Decoder dec;
  EXPECT_TRUE(dec.decode_annexb({}).empty());
  const std::vector<std::uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF, 0x42};
  EXPECT_TRUE(dec.decode_annexb(garbage).empty());  // no start codes
}

TEST(Robustness, DecoderRecoversAtNextIdrAfterLostGop) {
  // Lose an entire middle GOP; the decoder must resume cleanly at the
  // next IDR (this is why the Input Selector never touches I slices).
  h264::VideoConfig vc{64, 64, 24, 1.0, 0.5, 1.0, 6};
  const auto video = h264::generate_test_video(vc);
  h264::EncoderConfig ec{64, 64, 26, 8, 0, 4, true};
  h264::Encoder enc(ec);
  auto units = enc.parameter_sets();
  auto pics = enc.encode(video);
  for (std::size_t i = 0; i < pics.size(); ++i) {
    if (pics[i].poc >= 8 && pics[i].poc < 16) continue;  // drop GOP 2
    units.push_back(std::move(pics[i].nal));
  }
  h264::Decoder dec;
  const auto display = h264::assemble_display_sequence(
      dec.decode_annexb(h264::pack_annexb(units)),
      static_cast<int>(video.size()));
  ASSERT_EQ(display.size(), video.size());
  // Third GOP (poc 16..23) decodes at full quality again.
  for (std::size_t i = 16; i < 24; ++i) {
    EXPECT_FALSE(display[i].concealed) << "frame " << i;
    EXPECT_GT(h264::psnr_luma(video[i], display[i].frame), 27.0)
        << "frame " << i;
  }
}

// --------------------------------------------------------------- quality

TEST(Quality, IdenticalFramesGivePeakPsnrAndUnitSsim) {
  h264::VideoConfig vc{32, 32, 1, 1.0, 0.5, 1.0, 7};
  const auto v = h264::generate_test_video(vc);
  EXPECT_EQ(h264::psnr_luma(v[0], v[0]), 100.0);
  EXPECT_NEAR(h264::ssim_luma(v[0], v[0]), 1.0, 1e-12);
}

TEST(Quality, PsnrDropsWithNoise) {
  h264::VideoConfig vc{32, 32, 1, 1.0, 0.5, 0.0, 8};
  const auto clean = h264::generate_test_video(vc);
  h264::YuvFrame noisy = clean[0];
  std::mt19937 rng(9);
  std::normal_distribution<double> d(0.0, 5.0);
  for (auto& p : noisy.y.data) {
    p = h264::clamp_pixel(static_cast<int>(p + d(rng)));
  }
  const double psnr = h264::psnr_luma(clean[0], noisy);
  EXPECT_LT(psnr, 45.0);
  EXPECT_GT(psnr, 25.0);
  EXPECT_LT(h264::ssim_luma(clean[0], noisy), 1.0);
}

TEST(Quality, MismatchedSizesThrow) {
  h264::YuvFrame a(32, 32), b(64, 64);
  EXPECT_THROW(h264::psnr_luma(a, b), std::invalid_argument);
  EXPECT_THROW(h264::ssim_luma(a, b), std::invalid_argument);
  EXPECT_THROW(h264::sequence_psnr({}, {}), std::invalid_argument);
}

// --------------------------------------------------------------- testvideo

TEST(TestVideo, GeneratesRequestedGeometry) {
  h264::VideoConfig vc{48, 32, 5, 1.0, 0.5, 1.0, 10};
  const auto v = h264::generate_test_video(vc);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[0].width(), 48);
  EXPECT_EQ(v[0].height(), 32);
  EXPECT_EQ(v[0].cb.width, 24);
}

TEST(TestVideo, MotionCreatesInterFrameDifference) {
  h264::VideoConfig vc{64, 64, 8, 2.0, 0.5, 0.0, 11};
  const auto moving = h264::generate_test_video(vc);
  const double psnr_moving = h264::psnr_luma(moving[0], moving[7]);
  const auto still = h264::generate_static_video(vc);
  const double psnr_still = h264::psnr_luma(still[0], still[7]);
  EXPECT_LT(psnr_moving, psnr_still);
}

TEST(TestVideo, MixedClipQuietTailIsNearStatic) {
  h264::VideoConfig vc{64, 64, 20, 1.5, 0.6, 2.0, 12};
  const auto v = h264::generate_mixed_video(vc, 0.5);
  // Busy half: consecutive frames differ a lot; quiet half: barely.
  const double busy_psnr = h264::psnr_luma(v[2], v[3]);
  const double quiet_psnr = h264::psnr_luma(v[16], v[17]);
  EXPECT_GT(quiet_psnr, busy_psnr + 6.0);
}

TEST(TestVideo, RejectsBadDimensions) {
  EXPECT_THROW(h264::YuvFrame(60, 64), std::invalid_argument);
  EXPECT_THROW(h264::YuvFrame(0, 0), std::invalid_argument);
}
