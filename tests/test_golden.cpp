// Golden-vector tests: hand-computed expected values pinning the
// spec-derived kernels (H.264 transform, quantization tables, deblocking
// thresholds, mel scale, Exp-Golomb) against regressions.
#include <gtest/gtest.h>

#include <cstring>

#include "h264/bitstream.hpp"
#include "h264/deblock.hpp"
#include "h264/entropy.hpp"
#include "h264/transform.hpp"
#include "signal/mel.hpp"

namespace h264 = affectsys::h264;
namespace sig = affectsys::signal;

// ----------------------------------------------------------- 4x4 transform

TEST(Golden, ForwardTransformOfImpulse) {
  // x = delta at (0,0).  C row factors: [1 1 1 1], [2 1 -1 -2] ... so the
  // transform of an impulse at the origin is the outer product of the
  // first columns: [1 2 1 1]^T [1 2 1 1].
  h264::Block4x4 x{};
  x[0][0] = 1;
  const auto y = h264::forward_transform(x);
  const int expected[4][4] = {
      {1, 1, 1, 1}, {2, 2, 2, 2}, {1, 1, 1, 1}, {1, 1, 1, 1}};
  const int col[4] = {1, 2, 1, 1};
  (void)expected;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(y[i][j], col[i] * col[j]) << i << "," << j;
    }
  }
}

TEST(Golden, ForwardTransformDcGain) {
  // Constant block of 1s: DC coefficient = 16, all else 0.
  h264::Block4x4 x{};
  for (auto& row : x) {
    for (auto& v : row) v = 1;
  }
  const auto y = h264::forward_transform(x);
  EXPECT_EQ(y[0][0], 16);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i || j) EXPECT_EQ(y[i][j], 0);
    }
  }
}

TEST(Golden, InverseTransformOfDc) {
  // The inverse butterflies carry unit DC gain per pass, then >>6:
  // a dequantized DC of 256 reconstructs a flat block of
  // (256 + 32) >> 6 = 4.
  h264::Block4x4 c{};
  c[0][0] = 256;
  const auto x = h264::inverse_transform(c);
  for (const auto& row : x) {
    for (int v : row) EXPECT_EQ(v, 4);
  }
}

TEST(Golden, QuantizationDcAtQp0) {
  // Spec MF(0, DC-class) = 13107, shift 15, intra offset (1<<15)/3.
  // level = (w*13107 + 10922) >> 15 for w = 16 -> 6.
  h264::Block4x4 c{};
  c[0][0] = 16;
  const auto q = h264::quantize(c, 0);
  EXPECT_EQ(q[0][0], (16 * 13107 + (1 << 15) / 3) >> 15);
  // Dequantization: V(0, DC) = 10 -> 6 * 10 << 0 = 60.
  const auto d = h264::dequantize(q, 0);
  EXPECT_EQ(d[0][0], q[0][0] * 10);
}

TEST(Golden, QuantStepDoublesEverySixQp) {
  // dequantize(1, qp) doubles when qp increases by 6.
  h264::Block4x4 one{};
  one[0][0] = 1;
  for (int qp = 0; qp + 6 <= 51; ++qp) {
    const int a = h264::dequantize(one, qp)[0][0];
    const int b = h264::dequantize(one, qp + 6)[0][0];
    EXPECT_EQ(b, 2 * a) << "qp " << qp;
  }
}

// ------------------------------------------------------------- deblocking

TEST(Golden, AlphaBetaTableSpotChecks) {
  // Values straight from Table 8-16.
  EXPECT_EQ(h264::deblock_alpha(15), 0);
  EXPECT_EQ(h264::deblock_alpha(16), 4);
  EXPECT_EQ(h264::deblock_alpha(26), 15);
  EXPECT_EQ(h264::deblock_alpha(36), 50);
  EXPECT_EQ(h264::deblock_alpha(51), 255);
  EXPECT_EQ(h264::deblock_beta(15), 0);
  EXPECT_EQ(h264::deblock_beta(16), 2);
  EXPECT_EQ(h264::deblock_beta(26), 6);
  EXPECT_EQ(h264::deblock_beta(36), 11);
  EXPECT_EQ(h264::deblock_beta(51), 18);
}

TEST(Golden, AlphaBetaMonotone) {
  for (int qp = 1; qp <= 51; ++qp) {
    EXPECT_GE(h264::deblock_alpha(qp), h264::deblock_alpha(qp - 1));
    EXPECT_GE(h264::deblock_beta(qp), h264::deblock_beta(qp - 1));
  }
}

// -------------------------------------------------------------- Exp-Golomb

TEST(Golden, ExpGolombSpecTable) {
  // Table 9-1 of the spec: code_num -> bit string.
  const struct {
    std::uint32_t value;
    const char* bits;
  } rows[] = {
      {0, "1"},        {1, "010"},      {2, "011"},
      {3, "00100"},    {4, "00101"},    {5, "00110"},
      {6, "00111"},    {7, "0001000"},  {8, "0001001"},
  };
  for (const auto& row : rows) {
    h264::BitWriter bw;
    bw.put_ue(row.value);
    std::string got;
    h264::BitReader br(bw.bytes());
    for (std::size_t i = 0; i < std::strlen(row.bits); ++i) {
      got.push_back(br.get_bit() ? '1' : '0');
    }
    EXPECT_EQ(got, row.bits) << "ue(" << row.value << ")";
  }
}

TEST(Golden, SignedExpGolombMapping) {
  // Spec 9.1.1: se(v) order is 0, 1, -1, 2, -2, ...
  const std::int32_t order[] = {0, 1, -1, 2, -2, 3, -3};
  for (std::uint32_t code = 0; code < 7; ++code) {
    h264::BitWriter bw;
    bw.put_ue(code);
    h264::BitReader br(bw.bytes());
    EXPECT_EQ(br.get_se(), order[code]) << "code " << code;
  }
}

// ----------------------------------------------------------------- zigzag

TEST(Golden, ZigzagVisitsEveryPositionOnce) {
  bool seen[4][4] = {};
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(seen[h264::kZigzagRow[i]][h264::kZigzagCol[i]]);
    seen[h264::kZigzagRow[i]][h264::kZigzagCol[i]] = true;
  }
  // Standard 4x4 zig-zag prefix: (0,0) (0,1) (1,0) (2,0) (1,1) (0,2).
  EXPECT_EQ(h264::kZigzagRow[0], 0);
  EXPECT_EQ(h264::kZigzagCol[0], 0);
  EXPECT_EQ(h264::kZigzagRow[1], 0);
  EXPECT_EQ(h264::kZigzagCol[1], 1);
  EXPECT_EQ(h264::kZigzagRow[2], 1);
  EXPECT_EQ(h264::kZigzagCol[2], 0);
  EXPECT_EQ(h264::kZigzagRow[3], 2);
  EXPECT_EQ(h264::kZigzagCol[3], 0);
}

// -------------------------------------------------------------------- mel

TEST(Golden, MelScaleReferencePoints) {
  // 1000 Hz = 1000 mel anchor of the HTK formula (within rounding).
  EXPECT_NEAR(sig::hz_to_mel(1000.0), 999.99, 0.5);
  EXPECT_NEAR(sig::hz_to_mel(0.0), 0.0, 1e-12);
  // 700 Hz -> 2595*log10(2) = 781.17 mel.
  EXPECT_NEAR(sig::hz_to_mel(700.0), 781.17, 0.01);
}
