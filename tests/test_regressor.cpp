// Tests for the circumplex regressor, MSE loss, the continuous decoder
// policy, and the battery model.
#include <gtest/gtest.h>

#include "adaptive/modes.hpp"
#include "affect/regressor.hpp"
#include "nn/loss.hpp"
#include "power/battery.hpp"

namespace affect = affectsys::affect;
namespace adaptive = affectsys::adaptive;
namespace nn = affectsys::nn;
namespace power = affectsys::power;

TEST(MseLoss, ValueAndGradient) {
  nn::Matrix pred(1, 2);
  pred(0, 0) = 1.0f;
  pred(0, 1) = -1.0f;
  const float target[2] = {0.0f, 0.0f};
  const auto res = nn::mse_loss(pred, target);
  EXPECT_NEAR(res.loss, 1.0f, 1e-6f);  // (1 + 1) / 2
  EXPECT_NEAR(res.grad(0, 0), 1.0f, 1e-6f);   // 2*d/D
  EXPECT_NEAR(res.grad(0, 1), -1.0f, 1e-6f);
}

TEST(MseLoss, ShapeChecked) {
  nn::Matrix pred(1, 2);
  const float target[3] = {0, 0, 0};
  EXPECT_THROW(nn::mse_loss(pred, target), std::invalid_argument);
}

TEST(ContinuousPolicy, ArousalQuartilesMapToModes) {
  using adaptive::DecoderMode;
  EXPECT_EQ(adaptive::mode_for_circumplex({0.0, 0.9, 0.0}),
            DecoderMode::kStandard);
  EXPECT_EQ(adaptive::mode_for_circumplex({0.0, 0.3, 0.0}),
            DecoderMode::kDeletion);
  EXPECT_EQ(adaptive::mode_for_circumplex({0.0, -0.3, 0.0}),
            DecoderMode::kDeblockOff);
  EXPECT_EQ(adaptive::mode_for_circumplex({0.0, -0.9, 0.0}),
            DecoderMode::kCombined);
}

TEST(ContinuousPolicy, ConsistentWithDiscretePolicyAtExtremes) {
  // The discrete policy's attention-critical states carry high arousal,
  // so the continuous mapping agrees at the extremes of the circumplex.
  EXPECT_EQ(adaptive::mode_for_circumplex(
                affect::circumplex(affect::Emotion::kExcited)),
            adaptive::DecoderMode::kStandard);
  EXPECT_EQ(adaptive::mode_for_circumplex(
                affect::circumplex(affect::Emotion::kSleepy)),
            adaptive::DecoderMode::kCombined);
}

class RegressorFixture : public ::testing::Test {
 protected:
  static affect::AffectRegressor& regressor() {
    static affect::AffectRegressor reg = [] {
      affect::CorpusProfile prof;
      prof.name = "regress";
      prof.num_speakers = 4;
      prof.emotions = {affect::Emotion::kAngry, affect::Emotion::kSad,
                       affect::Emotion::kHappy, affect::Emotion::kCalm};
      prof.utterances_per_speaker_emotion = 5;
      prof.utterance_seconds = 1.0;
      prof.speaker_spread = 0.1;
      affect::RegressorTrainConfig cfg;
      cfg.epochs = 12;
      return affect::train_affect_regressor(prof, cfg);
    }();
    return reg;
  }
};

TEST_F(RegressorFixture, OutputsBounded) {
  affect::SpeechSynthesizer synth(11);
  const auto utt =
      synth.synthesize(affect::Emotion::kHappy, 1, 1.0, 16000.0, 0.1);
  const auto p = regressor().estimate(utt.samples);
  EXPECT_LE(std::abs(p.valence), 1.0);
  EXPECT_LE(std::abs(p.arousal), 1.0);
  EXPECT_LE(std::abs(p.dominance), 1.0);
}

TEST_F(RegressorFixture, ArousalOrdersAngryAboveSad) {
  affect::SpeechSynthesizer synth(12);
  double angry_arousal = 0.0, sad_arousal = 0.0;
  for (int i = 0; i < 6; ++i) {
    angry_arousal += regressor()
                         .estimate(synth.synthesize(affect::Emotion::kAngry,
                                                    40 + i, 1.0, 16000.0, 0.1)
                                       .samples)
                         .arousal;
    sad_arousal += regressor()
                       .estimate(synth.synthesize(affect::Emotion::kSad,
                                                  40 + i, 1.0, 16000.0, 0.1)
                                     .samples)
                       .arousal;
  }
  EXPECT_GT(angry_arousal, sad_arousal);
}

TEST_F(RegressorFixture, DiscretizedLabelsBeatChance) {
  affect::SpeechSynthesizer synth(13);
  const affect::Emotion set[] = {affect::Emotion::kAngry,
                                 affect::Emotion::kSad,
                                 affect::Emotion::kHappy,
                                 affect::Emotion::kCalm};
  int correct = 0, total = 0;
  for (int i = 0; i < 16; ++i) {
    const affect::Emotion truth = set[i % 4];
    const auto utt = synth.synthesize(truth, 50 + i, 1.0, 16000.0, 0.1);
    correct += regressor().classify(utt.samples) == truth;
    ++total;
  }
  // 4-way task with an 8-way discretizer: chance is well below 25%.
  EXPECT_GT(correct, total / 4);
}

TEST(Battery, CapacityAndHours) {
  power::BatteryModel cell;
  // 300 mAh at 3.85 V = 4158 J.
  EXPECT_NEAR(cell.capacity_j(), 4158.0, 1.0);
  // 100 mW total draw -> 11.55 hours.
  EXPECT_NEAR(cell.hours_at_mw(100.0), 11.55, 0.01);
  EXPECT_EQ(cell.hours_at_mw(0.0), 0.0);
  // Video at 30 mW with a 30% share implies 100 mW total.
  EXPECT_NEAR(cell.playback_hours(30.0), 11.55, 0.01);
}
