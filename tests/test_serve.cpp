// Session serving layer tests: lifecycle, admission control, shedding
// determinism, and the two byte-identity contracts (batched inference
// vs. per-window forwards; served single session vs. the standalone
// pipeline).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "affect/speech_synth.hpp"
#include "android/catalog.hpp"
#include "android/personality.hpp"
#include "core/affect_table.hpp"
#include "fault/plan.hpp"
#include "nn/model.hpp"
#include "serve/server.hpp"

namespace affect = affectsys::affect;
namespace android = affectsys::android;
namespace core = affectsys::core;
namespace nn = affectsys::nn;
namespace serve = affectsys::serve;

namespace {

/// Shared across every test: workload synthesis + classifier training
/// are the expensive parts, and both are immutable (the classifier's
/// scratch is reused, but all access in here is single-threaded or
/// serialized through the batcher).
struct ServeWorld {
  serve::SharedWorkload workload;
  affect::AffectClassifier classifier;
  std::vector<android::App> catalog;
  core::AppAffectTable table;

  ServeWorld()
      : workload(serve::WorkloadConfig{}),
        classifier([] {
          affect::CorpusProfile prof;
          prof.name = "serve";
          prof.num_speakers = 4;
          prof.emotions = {affect::Emotion::kAngry, affect::Emotion::kCalm};
          prof.utterances_per_speaker_emotion = 6;
          prof.utterance_seconds = 1.0;
          prof.speaker_spread = 0.1;
          nn::TrainConfig tc;
          tc.epochs = 8;
          tc.batch_size = 8;
          tc.learning_rate = 2e-3f;
          return affect::train_affect_classifier(nn::ModelKind::kMlp, prof,
                                                 tc);
        }()),
        catalog(android::build_catalog(android::EmulatorSpec{})) {
    for (const auto e : {affect::Emotion::kAngry, affect::Emotion::kCalm}) {
      table.learn_from_profile(e, android::profile_for_emotion(e), catalog);
    }
  }

  serve::SessionEnv env() {
    serve::SessionEnv env;
    env.workload = &workload;
    env.classifier = &classifier;
    env.app_table = &table;
    env.catalog = &catalog;
    return env;
  }
};

ServeWorld& world() {
  static ServeWorld w;
  return w;
}

bool windows_bitwise_equal(const std::vector<serve::WindowRecord>& a,
                           const std::vector<serve::WindowRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].seq != b[i].seq || a[i].t_end != b[i].t_end ||
        a[i].emotion != b[i].emotion) {
      return false;
    }
    if (std::memcmp(&a[i].confidence, &b[i].confidence, sizeof(float)) != 0) {
      return false;
    }
    if (a[i].probabilities.size() != b[i].probabilities.size()) return false;
    if (!a[i].probabilities.empty() &&
        std::memcmp(a[i].probabilities.data(), b[i].probabilities.data(),
                    a[i].probabilities.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

// ------------------------------------------------------------- lifecycle

TEST(SessionLifecycle, CreateTickCloseAndReuseSlot) {
  serve::ServerConfig cfg;
  cfg.max_sessions = 2;
  serve::SessionManager server(cfg, world().env());

  const auto a = server.create_session();
  const auto b = server.create_session();
  EXPECT_EQ(server.open_sessions(), 2u);
  for (int i = 0; i < 20; ++i) server.tick();
  EXPECT_EQ(server.session(a).stats().ticks, 20u);
  EXPECT_EQ(server.session(b).stats().ticks, 20u);

  server.close_session(a);
  EXPECT_EQ(server.open_sessions(), 1u);
  EXPECT_FALSE(server.has_session(a));
  EXPECT_THROW(server.report(a), std::out_of_range);
  EXPECT_THROW(server.close_session(a), std::out_of_range);

  // The freed capacity slot is reusable, but ids are never recycled.
  const auto c = server.create_session();
  EXPECT_NE(c, a);
  EXPECT_NE(c, b);
  EXPECT_GT(c, b);
  for (int i = 0; i < 5; ++i) server.tick();
  // The late joiner ticks from its admission, not the server's epoch.
  EXPECT_EQ(server.session(c).stats().ticks, 5u);
  EXPECT_EQ(server.session(b).stats().ticks, 25u);
  EXPECT_EQ(server.stats().sessions_created, 3u);
  EXPECT_EQ(server.stats().sessions_closed, 1u);
}

TEST(SessionLifecycle, SessionRequiresWorkloadAndClassifier) {
  serve::SessionEnv empty;
  EXPECT_THROW(serve::Session(1, serve::SessionConfig{}, empty, true),
               std::invalid_argument);
}

// ------------------------------------------------------------- admission

TEST(Admission, RejectsWithTypedErrorAtCapacity) {
  serve::ServerConfig cfg;
  cfg.max_sessions = 3;
  serve::SessionManager server(cfg, world().env());
  for (int i = 0; i < 3; ++i) server.create_session();

  try {
    server.create_session();
    FAIL() << "expected AdmissionError";
  } catch (const serve::AdmissionError& e) {
    EXPECT_EQ(e.open_sessions(), 3u);
    EXPECT_EQ(e.limit(), 3u);
    EXPECT_NE(std::string(e.what()).find("capacity"), std::string::npos);
  }
  EXPECT_EQ(server.stats().sessions_rejected, 1u);
  EXPECT_EQ(server.open_sessions(), 3u);

  // Rejection is backpressure, not a wedge: closing makes room again.
  server.close_session(1);
  EXPECT_NO_THROW(server.create_session());
}

// -------------------------------------------------------------- shedding

namespace {

/// Overload recipe: service capacity of 1 window per tick against
/// several talkative sessions, with tight watermarks and a tiny
/// per-session queue so every shedding mechanism engages.
serve::ServerConfig overload_config() {
  serve::ServerConfig cfg;
  cfg.max_sessions = 8;
  cfg.batcher.max_batch = 1;
  cfg.batcher.max_delay_ticks = 0;
  cfg.backlog_hi = 4;
  cfg.backlog_lo = 1;
  cfg.session.realtime.max_inflight = 2;
  return cfg;
}

struct OverloadOutcome {
  std::vector<serve::SessionReport> reports;
  serve::ServerStats server;
  serve::BatcherStats batcher;
  int final_level = 0;
};

OverloadOutcome run_overloaded(int ticks) {
  serve::SessionManager server(overload_config(), world().env());
  std::vector<serve::SessionId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(server.create_session());
  for (int i = 0; i < ticks; ++i) server.tick();
  server.drain();
  OverloadOutcome out;
  for (const auto id : ids) out.reports.push_back(server.report(id));
  out.server = server.stats();
  out.batcher = server.batcher_stats();
  out.final_level = server.degrade_level();
  return out;
}

}  // namespace

TEST(Shedding, OverloadEngagesEveryRungOfTheLadder) {
  const auto out = run_overloaded(300);

  std::uint64_t dropped_windows = 0;
  std::uint64_t dropped_frames = 0;
  std::uint64_t applied = 0;
  for (const auto& rep : out.reports) {
    dropped_windows += rep.realtime.windows_dropped;
    dropped_frames += rep.stats.frames_dropped;
    applied += rep.stats.results_applied;
    // Per-session invariant: every window either got a result or was
    // shed before extraction; nothing vanished.
    EXPECT_EQ(rep.stats.windows_enqueued, rep.stats.results_applied);
  }
  // The degrade ladder climbed (mode forcing, then frame shedding) and
  // the per-session queues shed windows — but classified work still got
  // through.
  EXPECT_GT(out.server.degrade_ticks, 0u);
  EXPECT_EQ(out.server.max_degrade_level, serve::kFrameShedLevel);
  EXPECT_GT(dropped_windows, 0u);
  EXPECT_GT(dropped_frames, 0u);
  EXPECT_GT(applied, 0u);
  EXPECT_EQ(out.server.results_routed, applied);
}

// Rung 1 of the ladder in isolation: forcing the degrade level to 1
// turns NAL deletion on even for a session whose affect policy chose a
// quality mode, shrinking decode work without dropping whole frames.
TEST(Shedding, ForcedDeletionLevelDeletesNals) {
  serve::SessionConfig cfg;
  cfg.seed = 9;
  serve::Session session(1, cfg, world().env(), /*inline_inference=*/true);
  for (int t = 0; t < 300; ++t) {
    session.pump_audio(static_cast<std::uint64_t>(t));
    session.tick_media(static_cast<std::uint64_t>(t), /*degrade_level=*/1);
  }
  EXPECT_GT(session.stats().nals_deleted, 0u);
  EXPECT_GT(session.stats().frames_decoded, 0u);
  EXPECT_EQ(session.stats().frames_dropped, 0u);
  const auto m = session.last_effective_mode();
  EXPECT_TRUE(m == affectsys::adaptive::DecoderMode::kDeletion ||
              m == affectsys::adaptive::DecoderMode::kCombined);
}

TEST(Shedding, OverloadedRunsAreDeterministic) {
  const auto a = run_overloaded(200);
  const auto b = run_overloaded(200);
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const auto& ra = a.reports[i];
    const auto& rb = b.reports[i];
    EXPECT_TRUE(windows_bitwise_equal(ra.windows, rb.windows)) << "session " << i;
    EXPECT_EQ(ra.stable_trace, rb.stable_trace) << "session " << i;
    EXPECT_EQ(ra.decode_digest, rb.decode_digest) << "session " << i;
    EXPECT_EQ(ra.realtime.windows_dropped, rb.realtime.windows_dropped);
    EXPECT_EQ(ra.stats.frames_dropped, rb.stats.frames_dropped);
    EXPECT_EQ(ra.stats.frames_decoded, rb.stats.frames_decoded);
    EXPECT_EQ(ra.stats.nals_deleted, rb.stats.nals_deleted);
    EXPECT_EQ(ra.stats.mode_switches, rb.stats.mode_switches);
    EXPECT_EQ(ra.stats.app_launches, rb.stats.app_launches);
  }
  EXPECT_EQ(a.server.results_routed, b.server.results_routed);
  EXPECT_EQ(a.server.degrade_ticks, b.server.degrade_ticks);
  EXPECT_EQ(a.batcher.flushes, b.batcher.flushes);
  EXPECT_EQ(a.batcher.windows, b.batcher.windows);
  EXPECT_EQ(a.final_level, b.final_level);
}

// ----------------------------------- admission storms under faults

namespace {

namespace fault = affectsys::fault;

/// Outcome of a storm run, shaped for exact two-run comparison.
struct StormOutcome {
  std::vector<serve::SessionReport> survivors;  // id order
  serve::ServerStats server;
  serve::BatcherStats batcher;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t closed = 0;
  int final_level = 0;
};

/// Admission storm against an already-overloaded, fault-injected
/// server: overload watermarks (service capacity 1 window/tick), every
/// admitted session carrying bitstream+audio faults, the batcher
/// randomly forced into fallback, and a plan-driven storm of
/// create_session bursts against a 4-slot server plus deterministic
/// churn (oldest session closed every 17 ticks).  Everything — bursts,
/// burst sizes, faults — comes from seeded FaultPlans, so two runs must
/// shed, reject and degrade identically.
StormOutcome run_admission_storm(int ticks) {
  serve::ServerConfig cfg = overload_config();
  // Six tenants at capacity 1 window/tick is the proven overload shape
  // (run_overloaded); the budget is loose enough that quarantines stay
  // occasional and the offered load keeps the ladder engaged.
  cfg.max_sessions = 6;
  cfg.error_budget = 10;
  cfg.error_window_ticks = 60;
  cfg.quarantine_ticks = 8;
  cfg.fault = fault::FaultConfig{
      0x5702317ull, 0.2, fault::kind_bit(fault::FaultKind::kBatcherFallback)};
  serve::SessionManager server(cfg, world().env());

  fault::FaultPlan storm(fault::FaultConfig{
      2024, 0.3, fault::kind_bit(fault::FaultKind::kAdmissionBurst)});

  StormOutcome out;
  std::vector<serve::SessionId> ids;
  const auto admit = [&] {
    serve::SessionConfig scfg;
    scfg.seed = static_cast<unsigned>(500 + out.admitted + out.rejected);
    scfg.realtime.max_inflight = 2;
    scfg.fault =
        fault::FaultConfig{90 + out.admitted, 0.15,
                           fault::kNalUnitKinds | fault::kAudioKinds};
    try {
      ids.push_back(server.create_session(scfg));
      ++out.admitted;
    } catch (const serve::AdmissionError&) {
      ++out.rejected;  // backpressure, absorbed
    }
  };

  for (int i = 0; i < 6; ++i) admit();
  for (int t = 0; t < ticks; ++t) {
    if (storm.next(fault::kind_bit(fault::FaultKind::kAdmissionBurst))) {
      const auto burst = 2 + storm.draw(3);
      for (std::uint64_t i = 0; i < burst; ++i) admit();
    }
    if (t % 17 == 16 && server.open_sessions() > 2) {
      for (const auto id : ids) {
        if (server.has_session(id)) {
          server.close_session(id);
          ++out.closed;
          break;
        }
      }
    }
    server.tick();
  }
  server.drain();

  for (const auto id : ids) {
    if (server.has_session(id)) out.survivors.push_back(server.report(id));
  }
  out.server = server.stats();
  out.batcher = server.batcher_stats();
  out.final_level = server.degrade_level();
  return out;
}

}  // namespace

TEST(AdmissionStorm, ShedsDeterministicallyUnderLadderAndFaults) {
  const StormOutcome a = run_admission_storm(200);
  const StormOutcome b = run_admission_storm(200);

  // The storm actually stressed everything at once: rejections at the
  // admission edge, the backlog ladder engaged, faults fired inside
  // sessions, and the batcher was forced through its fallback path.
  EXPECT_GT(a.rejected, 0u);
  EXPECT_EQ(a.server.sessions_rejected, a.rejected);
  EXPECT_GT(a.server.degrade_ticks, 0u);
  EXPECT_GT(a.batcher.forced_fallback_flushes, 0u);
  EXPECT_GT(a.survivors.size(), 0u);

  // Two-run replay identity, down to every survivor's bytes.
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.closed, b.closed);
  EXPECT_EQ(a.final_level, b.final_level);
  EXPECT_EQ(a.server.sessions_created, b.server.sessions_created);
  EXPECT_EQ(a.server.sessions_rejected, b.server.sessions_rejected);
  EXPECT_EQ(a.server.sessions_quarantined, b.server.sessions_quarantined);
  EXPECT_EQ(a.server.sessions_restarted, b.server.sessions_restarted);
  EXPECT_EQ(a.server.results_routed, b.server.results_routed);
  EXPECT_EQ(a.server.results_dropped_quarantined,
            b.server.results_dropped_quarantined);
  EXPECT_EQ(a.server.degrade_ticks, b.server.degrade_ticks);
  EXPECT_EQ(a.server.max_degrade_level, b.server.max_degrade_level);
  EXPECT_EQ(a.batcher.flushes, b.batcher.flushes);
  EXPECT_EQ(a.batcher.windows, b.batcher.windows);
  EXPECT_EQ(a.batcher.forced_fallback_flushes,
            b.batcher.forced_fallback_flushes);
  ASSERT_EQ(a.survivors.size(), b.survivors.size());
  for (std::size_t i = 0; i < a.survivors.size(); ++i) {
    const auto& ra = a.survivors[i];
    const auto& rb = b.survivors[i];
    EXPECT_TRUE(windows_bitwise_equal(ra.windows, rb.windows))
        << "survivor " << i;
    EXPECT_EQ(ra.stable_trace, rb.stable_trace) << "survivor " << i;
    EXPECT_EQ(ra.decode_digest, rb.decode_digest) << "survivor " << i;
    EXPECT_EQ(ra.stats.decode_errors, rb.stats.decode_errors);
    EXPECT_EQ(ra.stats.chunks_dropped, rb.stats.chunks_dropped);
    EXPECT_EQ(ra.stats.frames_dropped, rb.stats.frames_dropped);
    EXPECT_EQ(ra.stats.nals_deleted, rb.stats.nals_deleted);
  }
}

// --------------------------------------------------------------- batching

TEST(Batcher, MlpModelIsBatchable) {
  serve::InferenceBatcher batcher(world().classifier, serve::BatcherConfig{});
  EXPECT_TRUE(batcher.batchable());
}

TEST(Batcher, BatchedResultsAreBitIdenticalToPerWindowForwards) {
  auto& w = world();
  affect::FeatureExtractor fx(w.classifier.feature_config());
  affect::SpeechSynthesizer synth(11);

  // Eight distinct windows (mixed emotions/speakers) as one batch.
  std::vector<nn::Matrix> features;
  for (int i = 0; i < 8; ++i) {
    const auto e =
        (i % 2 == 0) ? affect::Emotion::kAngry : affect::Emotion::kCalm;
    const auto utt = synth.synthesize(e, i, 1.0, 16000.0, 0.1);
    features.push_back(fx.extract(utt.samples));
  }

  auto run = [&](bool batched) {
    serve::BatcherConfig cfg;
    cfg.max_batch = 8;
    cfg.batched = batched;
    serve::InferenceBatcher batcher(w.classifier, cfg);
    for (std::size_t i = 0; i < features.size(); ++i) {
      serve::InferenceRequest req;
      req.session = i + 1;
      req.seq = i;
      req.t_end = static_cast<double>(i);
      req.set_features(features[i]);
      batcher.enqueue(std::move(req));
    }
    return batcher.flush();
  };

  const auto batched = run(true);
  const auto unbatched = run(false);
  ASSERT_EQ(batched.size(), features.size());
  ASSERT_EQ(unbatched.size(), features.size());
  for (std::size_t i = 0; i < features.size(); ++i) {
    EXPECT_EQ(batched[i].session, unbatched[i].session);
    EXPECT_EQ(batched[i].seq, unbatched[i].seq);
    EXPECT_EQ(batched[i].result.emotion, unbatched[i].result.emotion);
    const auto& pa = batched[i].result.probabilities;
    const auto& pb = unbatched[i].result.probabilities;
    ASSERT_EQ(pa.size(), pb.size());
    EXPECT_EQ(std::memcmp(pa.data(), pb.data(), pa.size() * sizeof(float)), 0)
        << "probability bits differ for window " << i;

    // Both agree bit-for-bit with the classifier's own entry point.
    const auto direct = w.classifier.classify_features(features[i]);
    ASSERT_EQ(pa.size(), direct.probabilities.size());
    EXPECT_EQ(std::memcmp(pa.data(), direct.probabilities.data(),
                          pa.size() * sizeof(float)),
              0);
  }
}

TEST(Batcher, FlushRespectsDeadlineAndCapacity) {
  auto& w = world();
  serve::BatcherConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay_ticks = 2;
  serve::InferenceBatcher batcher(w.classifier, cfg);

  affect::FeatureExtractor fx(w.classifier.feature_config());
  affect::SpeechSynthesizer synth(5);
  const auto utt = synth.synthesize(affect::Emotion::kAngry, 0, 1.0, 16000.0, 0.1);
  const nn::Matrix f = fx.extract(utt.samples);

  auto enqueue_at = [&](std::uint64_t tick) {
    serve::InferenceRequest req;
    req.session = 1;
    req.seq = 0;
    req.enqueue_tick = tick;
    req.set_features(f);
    batcher.enqueue(std::move(req));
  };

  EXPECT_FALSE(batcher.should_flush(0));  // empty
  enqueue_at(5);
  EXPECT_FALSE(batcher.should_flush(5));  // fresh, batch not full
  EXPECT_FALSE(batcher.should_flush(6));
  EXPECT_TRUE(batcher.should_flush(7));  // aged past the deadline

  for (int i = 0; i < 5; ++i) enqueue_at(7);
  EXPECT_TRUE(batcher.should_flush(7));  // full regardless of age
  EXPECT_EQ(batcher.flush().size(), 4u);  // capacity per flush
  EXPECT_EQ(batcher.pending(), 2u);
}

// ---------------------------------------------------------- byte identity

// The headline contract: one session through the whole server — sink,
// batcher, routing — is byte-identical to the standalone pipeline
// (inline classification at the sink), down to probability bits and the
// digest of every decoded pixel.
TEST(ByteIdentity, ServedSingleSessionMatchesStandalonePipeline) {
  auto& w = world();
  serve::SessionConfig scfg;
  scfg.seed = 42;

  // Standalone reference: classification happens at the sink.
  serve::Session standalone(1, scfg, w.env(), /*inline_inference=*/true);
  constexpr int kTicks = 250;
  for (int t = 0; t < kTicks; ++t) {
    standalone.pump_audio(static_cast<std::uint64_t>(t));
    standalone.tick_media(static_cast<std::uint64_t>(t), 0);
  }
  const auto ref = standalone.report();

  // Served: same seed, flush-every-tick batcher (the deadline never
  // defers a lone session's window past its tick).
  serve::ServerConfig cfg;
  cfg.batcher.max_delay_ticks = 0;
  serve::SessionManager server(cfg, w.env());
  const auto id = server.create_session(scfg);
  for (int t = 0; t < kTicks; ++t) server.tick();
  server.drain();
  const auto served = server.report(id);

  EXPECT_TRUE(windows_bitwise_equal(ref.windows, served.windows));
  EXPECT_EQ(ref.stable_trace, served.stable_trace);
  EXPECT_EQ(ref.decode_digest, served.decode_digest);
  EXPECT_EQ(ref.stats.windows_enqueued, served.stats.windows_enqueued);
  EXPECT_EQ(ref.stats.results_applied, served.stats.results_applied);
  EXPECT_EQ(ref.stats.frames_decoded, served.stats.frames_decoded);
  EXPECT_EQ(ref.stats.frames_dropped, served.stats.frames_dropped);
  EXPECT_EQ(ref.stats.nals_deleted, served.stats.nals_deleted);
  EXPECT_EQ(ref.stats.mode_switches, served.stats.mode_switches);
  EXPECT_EQ(ref.stats.app_launches, served.stats.app_launches);
  EXPECT_EQ(ref.realtime.windows_classified, served.realtime.windows_classified);
  EXPECT_EQ(ref.realtime.windows_dropped, 0u);
  EXPECT_EQ(served.realtime.windows_dropped, 0u);
  EXPECT_EQ(ref.apps.cold_starts, served.apps.cold_starts);
  EXPECT_EQ(ref.apps.kills, served.apps.kills);
  // Sanity: the run actually exercised the pipeline.
  EXPECT_GT(ref.windows.size(), 10u);
  EXPECT_FALSE(ref.stable_trace.empty());
  EXPECT_GT(ref.stats.frames_decoded, 0u);
}
