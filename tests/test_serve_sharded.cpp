// Sharded / event-driven serving tests: the scheduling-invariance
// contract (shards x wheel x work-steal all reproduce the compat run
// byte-for-byte), two-run replay identity for a lossy sharded fleet,
// feature-bank-cache byte identity on quantized workloads, duty-cycle
// transparency on the timer wheel, and the zero-steady-state-allocation
// pin for the pooled serve path.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "affect/speech_synth.hpp"
#include "android/catalog.hpp"
#include "android/personality.hpp"
#include "core/affect_table.hpp"
#include "core/thread_pool.hpp"
#include "nn/model.hpp"
#include "obs/alloc_hooks.hpp"
#include "serve/server.hpp"

namespace affect = affectsys::affect;
namespace android = affectsys::android;
namespace core = affectsys::core;
namespace nn = affectsys::nn;
namespace obs = affectsys::obs;
namespace serve = affectsys::serve;

namespace {

/// Shared across every test in this file: one classifier, one plain
/// workload (the PR 4/6 configuration) and one hop-quantized workload
/// (the feature-bank-cache configuration).  All immutable after
/// construction.
struct ShardWorld {
  serve::SharedWorkload workload;        ///< unquantized scripts
  serve::SharedWorkload quantized;       ///< scripts snapped to the hop
  affect::AffectClassifier classifier;
  std::vector<android::App> catalog;
  core::AppAffectTable table;

  static serve::WorkloadConfig quantized_config() {
    serve::WorkloadConfig wc;
    // One tick of audio (0.1 s at 16 kHz) = 1600 samples = 10 hops:
    // every speech/silence boundary lands on a frame boundary.
    wc.script_quantum_samples = 1600;
    return wc;
  }

  ShardWorld()
      : workload(serve::WorkloadConfig{}),
        quantized(quantized_config()),
        classifier([] {
          affect::CorpusProfile prof;
          prof.name = "serve-sharded";
          prof.num_speakers = 4;
          prof.emotions = {affect::Emotion::kAngry, affect::Emotion::kCalm};
          prof.utterances_per_speaker_emotion = 6;
          prof.utterance_seconds = 1.0;
          prof.speaker_spread = 0.1;
          nn::TrainConfig tc;
          tc.epochs = 8;
          tc.batch_size = 8;
          tc.learning_rate = 2e-3f;
          return affect::train_affect_classifier(nn::ModelKind::kMlp, prof,
                                                 tc);
        }()),
        catalog(android::build_catalog(android::EmulatorSpec{})) {
    for (const auto e : {affect::Emotion::kAngry, affect::Emotion::kCalm}) {
      table.learn_from_profile(e, android::profile_for_emotion(e), catalog);
    }
  }

  serve::SessionEnv env(bool use_quantized = false, bool with_apps = true) {
    serve::SessionEnv env;
    env.workload = use_quantized ? &quantized : &workload;
    env.classifier = &classifier;
    if (with_apps) {
      env.app_table = &table;
      env.catalog = &catalog;
    }
    return env;
  }
};

ShardWorld& world() {
  static ShardWorld w;
  return w;
}

bool windows_bitwise_equal(const std::vector<serve::WindowRecord>& a,
                           const std::vector<serve::WindowRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].seq != b[i].seq || a[i].t_end != b[i].t_end ||
        a[i].emotion != b[i].emotion) {
      return false;
    }
    if (std::memcmp(&a[i].confidence, &b[i].confidence, sizeof(float)) != 0) {
      return false;
    }
    if (a[i].probabilities.size() != b[i].probabilities.size()) return false;
    if (!a[i].probabilities.empty() &&
        std::memcmp(a[i].probabilities.data(), b[i].probabilities.data(),
                    a[i].probabilities.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

/// Full-report byte identity.  `ignore_cache_counters` masks the
/// feature_rows_{cached,live} split, which is the one legitimate
/// difference between a cache-on and cache-off run of the same session.
testing::AssertionResult reports_identical(const serve::SessionReport& a,
                                           const serve::SessionReport& b,
                                           bool ignore_cache_counters = false) {
  if (!windows_bitwise_equal(a.windows, b.windows)) {
    return testing::AssertionFailure() << "window records differ";
  }
  if (a.stable_trace != b.stable_trace) {
    return testing::AssertionFailure() << "stable traces differ";
  }
  if (a.decode_digest != b.decode_digest) {
    return testing::AssertionFailure() << "decode digests differ";
  }
  serve::SessionStats sa = a.stats;
  serve::SessionStats sb = b.stats;
  if (ignore_cache_counters) {
    sa.feature_rows_cached = sb.feature_rows_cached = 0;
    sa.feature_rows_live = sb.feature_rows_live = 0;
  }
  // All-std::uint64_t aggregates: memcmp is exact.
  if (std::memcmp(&sa, &sb, sizeof(sa)) != 0) {
    return testing::AssertionFailure() << "session stats differ";
  }
  if (std::memcmp(&a.realtime, &b.realtime, sizeof(a.realtime)) != 0) {
    return testing::AssertionFailure() << "realtime stats differ";
  }
  if (std::memcmp(&a.apps, &b.apps, sizeof(a.apps)) != 0) {
    return testing::AssertionFailure() << "app metrics differ";
  }
  if (std::memcmp(&a.transport, &b.transport, sizeof(a.transport)) != 0) {
    return testing::AssertionFailure() << "transport stats differ";
  }
  return testing::AssertionSuccess();
}

}  // namespace

// ------------------------------------------------- scheduling invariance

namespace {

struct GridOutcome {
  std::vector<serve::SessionReport> reports;
  serve::ServerStats stats;
};

GridOutcome run_grid(std::size_t shards, bool wheel, bool steal) {
  serve::ServerConfig cfg;
  cfg.shards = shards;
  cfg.wheel = wheel;
  cfg.work_steal = steal;
  serve::SessionManager server(cfg, world().env());
  std::vector<serve::SessionId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(server.create_session());
  for (int i = 0; i < 120; ++i) server.tick();
  server.drain();
  GridOutcome out;
  for (const auto id : ids) out.reports.push_back(server.report(id));
  out.stats = server.stats();
  return out;
}

}  // namespace

// The documented contract: shard count, scheduler mode and work-steal
// are pure work-distribution knobs — every grid point reproduces the
// shards=1/compat run byte-for-byte, per session.
TEST(ShardScheduling, ShardWheelStealDigestIdentity) {
  const GridOutcome base = run_grid(1, /*wheel=*/false, /*steal=*/true);
  ASSERT_EQ(base.reports.size(), 6u);
  // The run is non-trivial: windows classified, video decoded.
  EXPECT_GT(base.reports[0].windows.size(), 10u);
  EXPECT_GT(base.reports[0].stats.frames_decoded, 100u);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    for (const bool wheel : {false, true}) {
      for (const bool steal : {false, true}) {
        const GridOutcome got = run_grid(shards, wheel, steal);
        ASSERT_EQ(got.reports.size(), base.reports.size());
        for (std::size_t i = 0; i < base.reports.size(); ++i) {
          EXPECT_TRUE(reports_identical(got.reports[i], base.reports[i]))
              << "shards=" << shards << " wheel=" << wheel
              << " steal=" << steal << " session " << i;
        }
        EXPECT_EQ(got.stats.results_routed, base.stats.results_routed)
            << "shards=" << shards << " wheel=" << wheel
            << " steal=" << steal;
      }
    }
  }
}

// A 4-shard wheel-scheduled fleet under transport loss plus server-level
// batcher faults replays exactly: run twice, byte-compare everything.
TEST(ShardScheduling, ShardedLossyReplayIdentity) {
  const auto run = [] {
    serve::ServerConfig cfg;
    cfg.shards = 4;
    cfg.wheel = true;
    cfg.fault.rate = 0.05;  // server plan: batcher fallback site
    cfg.fault.seed = 99;
    cfg.session.transport.enabled = true;
    cfg.session.transport.fec.enabled = true;
    cfg.session.fault.rate = 0.05;  // per-session plan, id-mixed seed
    cfg.session.fault.seed = 17;
    serve::SessionManager server(cfg, world().env());
    std::vector<serve::SessionId> ids;
    for (int i = 0; i < 6; ++i) ids.push_back(server.create_session());
    for (int i = 0; i < 120; ++i) server.tick();
    server.drain();
    struct Outcome {
      std::vector<serve::SessionReport> reports;
      std::vector<affectsys::fault::FaultCounts> faults;
      serve::ServerStats stats;
    } out;
    for (const auto id : ids) {
      out.reports.push_back(server.report(id));
      out.faults.push_back(server.session(id).fault_counts());
    }
    out.stats = server.stats();
    return out;
  };

  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.reports.size(), b.reports.size());
  std::uint64_t total_lost = 0;
  std::uint64_t total_faults = 0;
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    EXPECT_TRUE(reports_identical(a.reports[i], b.reports[i]))
        << "session " << i;
    EXPECT_EQ(a.faults[i].total, b.faults[i].total) << "session " << i;
    EXPECT_EQ(a.faults[i].by_kind, b.faults[i].by_kind) << "session " << i;
    total_lost += a.reports[i].transport.packets_lost;
    total_faults += a.faults[i].total;
  }
  // The plans actually fired — this is a lossy replay, not a clean one.
  EXPECT_GT(total_lost, 0u);
  EXPECT_GT(total_faults, 0u);
  EXPECT_EQ(std::memcmp(&a.stats, &b.stats, sizeof(a.stats)), 0);
}

// ------------------------------------------------- feature-bank cache

// On a hop-quantized workload the shared feature bank serves the bulk
// of all rows, and the run is byte-identical to live extraction.
TEST(FeatureBank, QuantizedScriptCacheByteIdentity) {
  const auto run = [](bool cache) {
    serve::ServerConfig cfg;
    cfg.feature_bank_cache = cache;
    serve::SessionManager server(cfg, world().env(/*use_quantized=*/true));
    std::vector<serve::SessionId> ids;
    for (int i = 0; i < 3; ++i) ids.push_back(server.create_session());
    for (int i = 0; i < 120; ++i) server.tick();
    server.drain();
    struct Outcome {
      std::vector<serve::SessionReport> reports;
      std::vector<bool> using_cache;
      bool server_cache = false;
    } out;
    out.server_cache = server.feature_cache() != nullptr;
    for (const auto id : ids) {
      out.reports.push_back(server.report(id));
      out.using_cache.push_back(server.session(id).using_feature_cache());
    }
    return out;
  };

  const auto cached = run(true);
  const auto live = run(false);

  EXPECT_TRUE(cached.server_cache);
  EXPECT_FALSE(live.server_cache);
  ASSERT_EQ(cached.reports.size(), live.reports.size());
  for (std::size_t i = 0; i < cached.reports.size(); ++i) {
    EXPECT_TRUE(cached.using_cache[i]) << "session " << i;
    EXPECT_FALSE(live.using_cache[i]) << "session " << i;
    // The cache carries the load...
    EXPECT_GT(cached.reports[i].stats.feature_rows_cached,
              cached.reports[i].stats.feature_rows_live)
        << "session " << i;
    EXPECT_EQ(live.reports[i].stats.feature_rows_cached, 0u);
    // ...without changing a single byte of output.
    EXPECT_TRUE(reports_identical(cached.reports[i], live.reports[i],
                                  /*ignore_cache_counters=*/true))
        << "session " << i;
  }
}

// Per-session fault plans index real audio, which diverges from the
// script — such sessions must decline the cache even when it exists.
TEST(FeatureBank, FaultedSessionDeclinesCache) {
  serve::ServerConfig cfg;
  serve::SessionManager server(cfg, world().env(/*use_quantized=*/true));
  serve::SessionConfig faulty = cfg.session;
  faulty.seed = 5;
  faulty.fault.rate = 0.05;
  const auto clean_id = server.create_session();
  const auto faulty_id = server.create_session(faulty);
  EXPECT_TRUE(server.session(clean_id).using_feature_cache());
  EXPECT_FALSE(server.session(faulty_id).using_feature_cache());
}

// --------------------------------------------------- duty-cycle wheel

// A duty-cycled session on the wheel (1 active tick, 7 idle) run for
// 160 server ticks produces *exactly* the output of an always-on
// compat session run for 20 ticks: local-tick timing makes the idle
// phases invisible to media behaviour.
TEST(DutyCycle, IdleTicksAreTransparentToSessionOutput) {
  serve::SessionConfig scfg;
  scfg.seed = 11;

  // Baseline: compat scheduling, always-on, 20 ticks.  max_delay 0 so
  // results apply the tick their window is staged — the configuration
  // under which duty transparency is exact (results never span a sleep).
  serve::ServerConfig base_cfg;
  base_cfg.batcher.max_delay_ticks = 0;
  serve::SessionManager base(base_cfg, world().env());
  const auto base_id = base.create_session(scfg);
  for (int i = 0; i < 20; ++i) base.tick();
  base.drain();
  const auto base_report = base.report(base_id);
  ASSERT_EQ(base_report.stats.ticks, 20u);
  ASSERT_GT(base_report.windows.size(), 0u);

  // Duty-cycled: wheel scheduling, wakes every 8th server tick.
  serve::ServerConfig duty_cfg;
  duty_cfg.wheel = true;
  duty_cfg.batcher.max_delay_ticks = 0;
  serve::SessionConfig duty = scfg;
  duty.duty_active_ticks = 1;
  duty.duty_idle_ticks = 7;
  serve::SessionManager server(duty_cfg, world().env());
  const auto id = server.create_session(duty);
  for (int i = 0; i < 160; ++i) server.tick();
  server.drain();
  const auto duty_report = server.report(id);

  // Ran 20 times in 160 server ticks (8-tick period)...
  EXPECT_EQ(duty_report.stats.ticks, 20u);
  EXPECT_EQ(server.stats().session_runs, 20u);
  // ...and those 20 runs are the always-on run, byte for byte.
  EXPECT_TRUE(reports_identical(duty_report, base_report));
}

// ------------------------------------------- zero steady-state allocs

// The pooled serve path (staging ring + buffer pool + feature bank +
// batcher scratch + wheel slots + decoder recycling) must stop touching
// the allocator once warm.  Only meaningful when the global new/delete
// hooks are compiled in (AFFECTSYS_METRICS).
TEST(ServeAllocations, SteadyStateIsAllocationFree) {
  if (!obs::alloc_tracking_enabled()) {
    GTEST_SKIP() << "allocation hooks not compiled in";
  }
  // Inline execution: no thread-pool task queue in the measurement.
  core::set_global_threads(0);

  serve::ServerConfig cfg;
  cfg.wheel = true;
  cfg.session.record_trace = false;  // no growing replay log
  // No app manager (its kill policy logs) — audio + video only.
  serve::SessionManager server(
      cfg, world().env(/*use_quantized=*/true, /*with_apps=*/false));
  for (int i = 0; i < 4; ++i) server.create_session();

  // Warm: several clip wraps, window cadence established, every ring,
  // pool and scratch vector at its high-water mark.
  for (int i = 0; i < 150; ++i) server.tick();

  const std::uint64_t before = obs::alloc_count();
  for (int i = 0; i < 100; ++i) server.tick();
  const std::uint64_t after = obs::alloc_count();

  core::set_global_threads(core::default_thread_count());
  EXPECT_EQ(after - before, 0u)
      << "steady-state serve ticks allocated " << (after - before)
      << " times";
}
