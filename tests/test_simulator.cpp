// End-to-end tests of the whole-system scenario runner.
#include <gtest/gtest.h>

#include "core/simulator.hpp"

namespace core = affectsys::core;
namespace affect = affectsys::affect;
namespace adaptive = affectsys::adaptive;

namespace {

adaptive::AdaptiveDecoderSystem& shared_decoder() {
  static adaptive::AdaptiveDecoderSystem dec{[] {
    adaptive::PlaybackConfig cfg;
    cfg.video.frames = 24;
    return cfg;
  }()};
  return dec;
}

}  // namespace

TEST(SystemScenario, BothSubsystemsSaveUnderEstimatedEmotion) {
  core::SystemScenarioConfig cfg;
  cfg.playback.video.frames = 24;
  const auto report = core::run_system_scenario(cfg, shared_decoder());

  // Sensing is imperfect but informative.
  EXPECT_GT(report.window_accuracy, 0.4);
  EXPECT_LT(report.window_accuracy, 1.0);
  EXPECT_GE(report.mode_changes, 1u);
  EXPECT_FALSE(report.estimated_timeline.segments.empty());
  EXPECT_NEAR(report.estimated_timeline.duration_s(),
              cfg.timeline.duration_s(), 1e-9);

  // Despite classification errors, both managers still save.
  EXPECT_GT(report.playback.energy_saving(), 0.05);
  EXPECT_GT(report.app_memory_saving(), 0.0);
}

TEST(SystemScenario, SmoothingBoundsModeChanges) {
  core::SystemScenarioConfig aggressive;
  aggressive.playback.video.frames = 24;
  aggressive.smoothing = {1, 0.0};  // no smoothing
  const auto noisy = core::run_system_scenario(aggressive, shared_decoder());

  core::SystemScenarioConfig smoothed;
  smoothed.playback.video.frames = 24;
  smoothed.smoothing = {5, 120.0};
  const auto stable = core::run_system_scenario(smoothed, shared_decoder());

  EXPECT_LT(stable.mode_changes, noisy.mode_changes);
}

TEST(SystemScenario, EstimatedTimelineCoversSessionContiguously) {
  core::SystemScenarioConfig cfg;
  cfg.playback.video.frames = 24;
  const auto report = core::run_system_scenario(cfg, shared_decoder());
  double prev_end = 0.0;
  for (const auto& seg : report.estimated_timeline.segments) {
    EXPECT_NEAR(seg.start_s, prev_end, 1e-9);
    EXPECT_GT(seg.end_s, seg.start_s);
    prev_end = seg.end_s;
  }
  EXPECT_NEAR(prev_end, cfg.timeline.duration_s(), 1e-9);
}
