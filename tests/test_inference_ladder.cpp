// Inference-ladder tests: ladder-off byte identity against the
// pre-ladder server, two-run replay identity for a lossy ladder-on
// fleet (rung traces included), dwell-hysteresis no-flap, HDC
// train/infer determinism, and the truncate_bits == 0 byte-identity
// guarantee for approximate feature storage.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "affect/hdc.hpp"
#include "affect/speech_synth.hpp"
#include "core/thread_pool.hpp"
#include "nn/model.hpp"
#include "serve/server.hpp"

namespace affect = affectsys::affect;
namespace nn = affectsys::nn;
namespace serve = affectsys::serve;

namespace {

affect::CorpusProfile ladder_profile() {
  affect::CorpusProfile prof;
  prof.name = "serve-ladder";
  prof.num_speakers = 4;
  prof.emotions = {affect::Emotion::kAngry, affect::Emotion::kCalm};
  prof.utterances_per_speaker_emotion = 6;
  prof.utterance_seconds = 1.0;
  prof.speaker_spread = 0.1;
  return prof;
}

/// One classifier + one HDC model + one workload, shared by every test
/// in this file; immutable after construction.
struct LadderWorld {
  serve::SharedWorkload workload;
  affect::AffectClassifier classifier;
  affect::HdcClassifier hdc;

  LadderWorld()
      : workload(serve::WorkloadConfig{}),
        classifier([] {
          nn::TrainConfig tc;
          tc.epochs = 8;
          tc.batch_size = 8;
          tc.learning_rate = 2e-3f;
          return affect::train_affect_classifier(nn::ModelKind::kMlp,
                                                 ladder_profile(), tc);
        }()),
        hdc(affect::train_hdc_classifier(ladder_profile(),
                                         affect::HdcConfig{})) {}

  serve::SessionEnv env(bool with_hdc) {
    serve::SessionEnv env;
    env.workload = &workload;
    env.classifier = &classifier;
    if (with_hdc) env.hdc = &hdc;
    return env;
  }
};

LadderWorld& world() {
  static LadderWorld w;
  return w;
}

/// Byte-level report comparison (windows + traces + digest + stats).
testing::AssertionResult reports_identical(const serve::SessionReport& a,
                                           const serve::SessionReport& b) {
  if (a.windows.size() != b.windows.size()) {
    return testing::AssertionFailure() << "window counts differ";
  }
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    const auto& wa = a.windows[i];
    const auto& wb = b.windows[i];
    if (wa.seq != wb.seq || wa.t_end != wb.t_end ||
        wa.emotion != wb.emotion ||
        std::memcmp(&wa.confidence, &wb.confidence, sizeof(float)) != 0 ||
        wa.probabilities.size() != wb.probabilities.size() ||
        (!wa.probabilities.empty() &&
         std::memcmp(wa.probabilities.data(), wb.probabilities.data(),
                     wa.probabilities.size() * sizeof(float)) != 0)) {
      return testing::AssertionFailure() << "window " << i << " differs";
    }
  }
  if (a.stable_trace != b.stable_trace) {
    return testing::AssertionFailure() << "stable traces differ";
  }
  if (a.rung_trace != b.rung_trace) {
    return testing::AssertionFailure() << "rung traces differ";
  }
  if (a.decode_digest != b.decode_digest) {
    return testing::AssertionFailure() << "decode digests differ";
  }
  if (std::memcmp(&a.stats, &b.stats, sizeof(a.stats)) != 0) {
    return testing::AssertionFailure() << "session stats differ";
  }
  return testing::AssertionSuccess();
}

struct FleetOutcome {
  std::vector<serve::SessionReport> reports;
  serve::ServerStats stats;
};

FleetOutcome run_fleet(const serve::ServerConfig& cfg,
                       serve::SessionEnv env, std::size_t sessions,
                       int ticks) {
  serve::SessionManager server(cfg, env);
  std::vector<serve::SessionId> ids;
  for (std::size_t i = 0; i < sessions; ++i) {
    ids.push_back(server.create_session());
  }
  for (int i = 0; i < ticks; ++i) server.tick();
  server.drain();
  FleetOutcome out;
  for (const auto id : ids) out.reports.push_back(server.report(id));
  out.stats = server.stats();
  return out;
}

/// A ladder config that engages unconditionally: pressure rises every
/// tick (backlog_hi 0) and every session is always eligible.
serve::LadderConfig eager_ladder() {
  serve::LadderConfig lc;
  lc.enabled = true;
  lc.backlog_hi = 0;
  lc.backlog_lo = 0;
  lc.conf_int8 = 0.0f;
  lc.conf_hdc = 0.0f;
  lc.calm_windows = 0;
  lc.hysteresis_ticks = 1;
  return lc;
}

}  // namespace

// --------------------------------------------------- ladder-off identity

// The master switch actually masters: a server built with the ladder
// compiled in but disabled (the default), with cheap-rung models
// available in the env, reproduces the no-ladder run byte for byte —
// and stages every window on fp32.
TEST(LadderOff, ByteIdenticalToPreLadderServer) {
  const serve::ServerConfig cfg;  // ladder.enabled defaults to false
  const FleetOutcome base = run_fleet(cfg, world().env(false), 4, 120);
  const FleetOutcome got = run_fleet(cfg, world().env(true), 4, 120);

  ASSERT_EQ(base.reports.size(), got.reports.size());
  for (std::size_t i = 0; i < base.reports.size(); ++i) {
    EXPECT_TRUE(reports_identical(base.reports[i], got.reports[i]))
        << "session " << i;
    // Non-trivial run, all of it on the reference rung.
    EXPECT_GT(got.reports[i].stats.windows_enqueued, 10u);
    EXPECT_EQ(got.reports[i].stats.windows_int8, 0u);
    EXPECT_EQ(got.reports[i].stats.windows_hdc, 0u);
    EXPECT_EQ(got.reports[i].stats.rung_switches, 0u);
    EXPECT_TRUE(got.reports[i].rung_trace.empty());
  }
  EXPECT_EQ(base.stats.max_ladder_pressure, 0);
  EXPECT_EQ(got.stats.max_ladder_pressure, 0);
}

// ---------------------------------------------------- ladder-on replay

// A sharded, wheel-scheduled, ladder-on fleet under transport loss and
// seeded faults replays exactly: run twice, byte-compare every report
// including the rung traces.  The run must actually exercise the cheap
// rungs for the identity to mean anything.
TEST(LadderOn, TwoRunLossyReplayIdentity) {
  serve::ServerConfig cfg;
  cfg.shards = 4;
  cfg.wheel = true;
  cfg.ladder = eager_ladder();
  cfg.fault.rate = 0.05;
  cfg.fault.seed = 99;
  cfg.session.transport.enabled = true;
  cfg.session.transport.fec.enabled = true;
  cfg.session.fault.rate = 0.05;
  cfg.session.fault.seed = 17;

  const FleetOutcome a = run_fleet(cfg, world().env(true), 6, 120);
  const FleetOutcome b = run_fleet(cfg, world().env(true), 6, 120);

  ASSERT_EQ(a.reports.size(), b.reports.size());
  std::uint64_t cheap_windows = 0;
  std::uint64_t lost = 0;
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    EXPECT_TRUE(reports_identical(a.reports[i], b.reports[i]))
        << "session " << i;
    cheap_windows +=
        a.reports[i].stats.windows_int8 + a.reports[i].stats.windows_hdc;
    lost += a.reports[i].transport.packets_lost;
  }
  EXPECT_GT(cheap_windows, 0u) << "ladder never engaged a cheap rung";
  EXPECT_GT(lost, 0u) << "transport loss never fired";
  EXPECT_EQ(std::memcmp(&a.stats, &b.stats, sizeof(a.stats)), 0);
  EXPECT_GT(a.stats.max_ladder_pressure, 0);
}

// -------------------------------------------------------- hysteresis

// Rung moves obey the dwell clock: one step per move, never two moves
// within hysteresis_ticks of each other — whatever the backlog does.
TEST(LadderOn, RungTraceRespectsDwellAndSingleStepping) {
  serve::ServerConfig cfg;
  cfg.ladder = eager_ladder();
  cfg.ladder.hysteresis_ticks = 7;

  const FleetOutcome out = run_fleet(cfg, world().env(true), 4, 150);
  std::size_t moves = 0;
  for (const auto& report : out.reports) {
    serve::Rung prev = serve::Rung::kFp32;
    std::uint64_t prev_tick = 0;
    bool first = true;
    for (const auto& [tick, rung] : report.rung_trace) {
      const int step = std::abs(static_cast<int>(rung) -
                                static_cast<int>(prev));
      EXPECT_EQ(step, 1) << "rung move is not a single step";
      if (!first) {
        EXPECT_GE(tick - prev_tick, 7u)
            << "two moves inside the dwell window";
      }
      prev = rung;
      prev_tick = tick;
      first = false;
      ++moves;
    }
    EXPECT_EQ(report.stats.rung_switches, report.rung_trace.size());
  }
  EXPECT_GT(moves, 0u) << "no rung moves recorded";
}

// ------------------------------------------------- HDC determinism

// Training is a pure function of (config, corpus, seeds): two
// independent trainings produce bit-identical prototypes, and repeated
// inference on the same window is bit-identical too.
TEST(Hdc, TrainAndInferRoundTripIsDeterministic) {
  affectsys::core::set_global_threads(0);
  const affect::HdcConfig cfg;
  affect::HdcClassifier a =
      affect::train_hdc_classifier(ladder_profile(), cfg);
  affect::HdcClassifier b =
      affect::train_hdc_classifier(ladder_profile(), cfg);
  affectsys::core::set_global_threads(
      affectsys::core::default_thread_count());

  ASSERT_TRUE(a.trained());
  ASSERT_EQ(a.label_set().size(), b.label_set().size());
  for (std::size_t cls = 0; cls < a.label_set().size(); ++cls) {
    const auto pa = a.prototype(cls);
    const auto pb = b.prototype(cls);
    ASSERT_EQ(pa.size(), pb.size());
    EXPECT_EQ(0, std::memcmp(pa.data(), pb.data(),
                             pa.size() * sizeof(std::uint64_t)))
        << "class " << cls;
  }

  nn::Matrix x(a.timesteps(), a.feature_dim());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.flat()[i] = 0.01f * static_cast<float>(static_cast<int>(i % 200) - 100);
  }
  affect::HdcWorkspace wsa, wsb;
  affect::ClassificationResult ra, rb;
  a.classify_into(x.flat(), x.rows(), x.cols(), wsa, ra);
  b.classify_into(x.flat(), x.rows(), x.cols(), wsb, rb);
  EXPECT_EQ(ra.emotion, rb.emotion);
  ASSERT_EQ(ra.probabilities.size(), rb.probabilities.size());
  EXPECT_EQ(0, std::memcmp(ra.probabilities.data(), rb.probabilities.data(),
                           ra.probabilities.size() * sizeof(float)));
  // Same workspace reused: still bit-identical (no state leaks).
  affect::ClassificationResult ra2;
  a.classify_into(x.flat(), x.rows(), x.cols(), wsa, ra2);
  EXPECT_EQ(0, std::memcmp(ra.probabilities.data(), ra2.probabilities.data(),
                           ra.probabilities.size() * sizeof(float)));
}

// Off-default geometries walk the bundler's tail paths: a word count
// that is not a multiple of the 256-bit block (dim_bits 8256 -> 129
// words), and channel counts hitting the 8-group and single-channel
// tails (temporal_pool 4 -> 68 = 4x16 + 4 singles, 3 -> 51, 1 -> 17).
// Each must still train deterministically and classify consistently.
TEST(Hdc, TailGeometriesAreDeterministic) {
  affectsys::core::set_global_threads(0);
  struct Shape {
    std::size_t dim_bits;
    std::size_t pool;
  };
  for (const auto& shape :
       {Shape{8256, 8}, Shape{8192, 4}, Shape{4096, 3}, Shape{8192, 1}}) {
    affect::HdcConfig cfg;
    cfg.dim_bits = shape.dim_bits;
    cfg.temporal_pool = shape.pool;
    affect::HdcClassifier a =
        affect::train_hdc_classifier(ladder_profile(), cfg);
    affect::HdcClassifier b =
        affect::train_hdc_classifier(ladder_profile(), cfg);
    for (std::size_t cls = 0; cls < a.label_set().size(); ++cls) {
      const auto pa = a.prototype(cls);
      const auto pb = b.prototype(cls);
      ASSERT_EQ(pa.size(), pb.size());
      EXPECT_EQ(0, std::memcmp(pa.data(), pb.data(),
                               pa.size() * sizeof(std::uint64_t)))
          << "dim " << shape.dim_bits << " pool " << shape.pool << " class "
          << cls;
    }
    nn::Matrix x(a.timesteps(), a.feature_dim());
    for (std::size_t i = 0; i < x.size(); ++i) {
      x.flat()[i] =
          0.01f * static_cast<float>(static_cast<int>(i % 200) - 100);
    }
    affect::HdcWorkspace ws;
    affect::ClassificationResult r1, r2;
    a.classify_into(x.flat(), x.rows(), x.cols(), ws, r1);
    a.classify_into(x.flat(), x.rows(), x.cols(), ws, r2);
    ASSERT_EQ(r1.probabilities.size(), r2.probabilities.size());
    EXPECT_EQ(0, std::memcmp(r1.probabilities.data(), r2.probabilities.data(),
                             r1.probabilities.size() * sizeof(float)))
        << "dim " << shape.dim_bits << " pool " << shape.pool;
  }
  affectsys::core::set_global_threads(
      affectsys::core::default_thread_count());
}

// ------------------------------------------------ approximate storage

// truncate_bits == 0 is a byte-identity guarantee, with the cache on or
// off; truncated runs are still deterministic (two-run identity).
TEST(Truncation, ZeroBitsIsByteIdenticalAndLossyRunsReplay) {
  serve::ServerConfig base_cfg;
  base_cfg.feature_bank_cache = true;
  const FleetOutcome base = run_fleet(base_cfg, world().env(false), 3, 120);

  serve::ServerConfig zero_cfg = base_cfg;
  zero_cfg.ladder.truncate_bits = 0;  // explicit: the default
  const FleetOutcome zero = run_fleet(zero_cfg, world().env(false), 3, 120);
  ASSERT_EQ(base.reports.size(), zero.reports.size());
  for (std::size_t i = 0; i < base.reports.size(); ++i) {
    EXPECT_TRUE(reports_identical(base.reports[i], zero.reports[i]))
        << "session " << i;
  }

  serve::ServerConfig lossy_cfg = base_cfg;
  lossy_cfg.ladder.truncate_bits = 10;
  const FleetOutcome lossy_a =
      run_fleet(lossy_cfg, world().env(false), 3, 120);
  const FleetOutcome lossy_b =
      run_fleet(lossy_cfg, world().env(false), 3, 120);
  ASSERT_EQ(lossy_a.reports.size(), lossy_b.reports.size());
  for (std::size_t i = 0; i < lossy_a.reports.size(); ++i) {
    EXPECT_TRUE(reports_identical(lossy_a.reports[i], lossy_b.reports[i]))
        << "session " << i;
    // The run still classifies windows through the truncated features.
    EXPECT_GT(lossy_a.reports[i].stats.windows_enqueued, 10u);
  }
}
