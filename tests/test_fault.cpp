// Seeded structured-fuzz harness for the fault-injection layer
// (src/fault) and the recovery policies it exercises: decoder resync,
// realtime gap tolerance, and the session server's quarantine ladder.
//
// The suites sweep >= 500 FaultPlans (340 bitstream + 154 audio + 10
// serve) and assert, for every plan:
//   * no crash / no sanitizer report (the same binary runs under
//     ASan+UBSan and TSan via `ctest -L fault` in those build trees),
//   * replay identity: running the identical ScenarioConfig twice gives
//     bit-identical digests — every SCOPED_TRACE prints the
//     `affectsys_cli fault-replay` line that reproduces a failure,
//   * rate 0 is byte-identical to the un-instrumented clean path,
//   * in the multi-tenant scenario, sessions without injected faults
//     stay byte-identical to the fault-free baseline run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/audio_faults.hpp"
#include "fault/bitstream_faults.hpp"
#include "fault/plan.hpp"
#include "fault/scenario.hpp"
#include "h264/decoder.hpp"
#include "h264/encoder.hpp"
#include "h264/nal.hpp"
#include "h264/testvideo.hpp"
#include "serve/server.hpp"

namespace fault = affectsys::fault;
namespace h264 = affectsys::h264;
namespace serve = affectsys::serve;

namespace {

// Suite shapes.  The driver requirement is >= 500 plans total across
// the three suites: 170*2 + 77*2 + 5*2 = 504.
constexpr std::uint64_t kBitstreamSeeds = 170;
constexpr double kBitstreamRates[] = {0.02, 0.1};
constexpr std::uint64_t kAudioSeeds = 77;
constexpr double kAudioRates[] = {0.05, 0.2};
constexpr std::uint64_t kServeSeeds = 5;
constexpr double kServeRates[] = {0.05, 0.25};

/// The one-line repro for a failing plan (DESIGN.md "Fault injection &
/// recovery" documents the workflow).
std::string repro(const char* suite, std::uint64_t seed, double rate) {
  return "repro: affectsys_cli fault-replay " + std::string(suite) + " " +
         std::to_string(seed) + " " + std::to_string(rate);
}

}  // namespace

// ---------------------------------------------------------------------
// FaultPlan: the schedule itself.

TEST(FaultPlan, DisabledPlanNeverFiresOrAdvances) {
  fault::FaultPlan plan(fault::FaultConfig{123, 0.0, fault::kAllKinds});
  EXPECT_FALSE(plan.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(plan.next(fault::kAllKinds), std::nullopt);
  }
  EXPECT_EQ(plan.decisions(), 0u);
  EXPECT_EQ(plan.faults(), 0u);
}

TEST(FaultPlan, DisjointSiteMaskConsumesNoState) {
  // Consulting a site whose mask misses the plan's kinds must not
  // advance the RNG: the subsequent schedule matches a plan that never
  // saw those sites.
  fault::FaultPlan probed(fault::FaultConfig{9, 1.0, fault::kAudioKinds});
  fault::FaultPlan fresh(fault::FaultConfig{9, 1.0, fault::kAudioKinds});
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(probed.next(fault::kBitstreamKinds), std::nullopt);
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(probed.next(fault::kAudioKinds), fresh.next(fault::kAudioKinds));
  }
}

TEST(FaultPlan, SameSeedSameSchedule) {
  const fault::FaultConfig cfg{42, 0.3, fault::kAllKinds};
  fault::FaultPlan a(cfg), b(cfg);
  const std::uint32_t masks[] = {fault::kBitstreamKinds, fault::kAudioKinds,
                                 fault::kServeKinds, fault::kAllKinds};
  for (int i = 0; i < 1000; ++i) {
    const auto fa = a.next(masks[i % 4]);
    const auto fb = b.next(masks[i % 4]);
    ASSERT_EQ(fa, fb) << "decision " << i;
    if (fa) {
      ASSERT_EQ(a.draw(17), b.draw(17)) << "draw " << i;
    }
  }
  EXPECT_EQ(a.decisions(), b.decisions());
  EXPECT_EQ(a.faults(), b.faults());
  EXPECT_GT(a.faults(), 0u);
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  fault::FaultPlan a(fault::FaultConfig{1, 0.5, fault::kAllKinds});
  fault::FaultPlan b(fault::FaultConfig{2, 0.5, fault::kAllKinds});
  bool diverged = false;
  for (int i = 0; i < 1000 && !diverged; ++i) {
    diverged = a.next(fault::kAllKinds) != b.next(fault::kAllKinds);
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultPlan, RateOneFiresEverySiteWithinMask) {
  fault::FaultPlan plan(fault::FaultConfig{5, 1.0, fault::kAudioKinds});
  for (int i = 0; i < 200; ++i) {
    const auto k = plan.next(fault::kAudioKinds);
    ASSERT_TRUE(k.has_value());
    EXPECT_NE(fault::kAudioKinds & fault::kind_bit(*k), 0u);
  }
  EXPECT_EQ(plan.faults(), 200u);
  EXPECT_EQ(plan.decisions(), 200u);
}

TEST(FaultPlan, DrawStaysInRange) {
  fault::FaultPlan plan(fault::FaultConfig{77, 1.0, fault::kAllKinds});
  for (std::uint64_t n : {1ull, 2ull, 3ull, 7ull, 255ull, 1000000ull}) {
    for (int i = 0; i < 100; ++i) {
      EXPECT_LT(plan.draw(n), n);
    }
  }
  EXPECT_THROW(plan.draw(0), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Bitstream suite: 340 plans of NAL corruption against the resilient
// decoder.

TEST(BitstreamFuzz, ReplayIdentityAcross340Plans) {
  std::uint64_t plans = 0, total_faults = 0, total_errors = 0,
                total_resyncs = 0;
  for (double rate : kBitstreamRates) {
    for (std::uint64_t seed = 1; seed <= kBitstreamSeeds; ++seed) {
      SCOPED_TRACE(repro("bitstream", seed, rate));
      const fault::ScenarioConfig cfg{seed, rate, fault::kAllKinds};
      const fault::BitstreamScenarioResult first =
          fault::run_bitstream_scenario(cfg);
      const fault::BitstreamScenarioResult second =
          fault::run_bitstream_scenario(cfg);
      ASSERT_EQ(first, second);
      ++plans;
      total_faults += first.faults;
      total_errors += first.nal_errors;
      total_resyncs += first.resyncs;
    }
  }
  EXPECT_EQ(plans, 340u);
  // The fuzz must actually bite: faults fired, the decoder saw
  // malformed units, and at least some runs recovered at a keyframe.
  EXPECT_GT(total_faults, 0u);
  EXPECT_GT(total_errors, 0u);
  EXPECT_GT(total_resyncs, 0u);
}

TEST(BitstreamFuzz, RateZeroIsByteIdenticalToCleanStrictDecode) {
  // The un-instrumented reference: strict decode of the pristine clip.
  h264::Decoder strict;
  const auto clean_pics = strict.decode_annexb(
      fault::scenario_reference_stream());
  const std::uint64_t clean_stream_digest =
      fault::fnv1a_bytes(fault::scenario_reference_stream());
  const std::uint64_t clean_pixel_digest = fault::digest_pictures(clean_pics);

  // Rate 0 disables the plan, so the seed must be irrelevant too.
  for (std::uint64_t seed : {1ull, 99ull, 0xdeadbeefull}) {
    SCOPED_TRACE(repro("bitstream", seed, 0.0));
    const fault::BitstreamScenarioResult r =
        fault::run_bitstream_scenario({seed, 0.0, fault::kAllKinds});
    EXPECT_EQ(r.stream_digest, clean_stream_digest);
    EXPECT_EQ(r.pixel_digest, clean_pixel_digest);
    EXPECT_EQ(r.pictures, clean_pics.size());
    EXPECT_EQ(r.faults, 0u);
    EXPECT_EQ(r.nal_errors, 0u);
  }
}

// ---------------------------------------------------------------------
// Audio suite: 154 plans of chunk damage through the realtime pipeline.

TEST(AudioFuzz, ReplayIdentityAcross154Plans) {
  std::uint64_t plans = 0, total_faults = 0, total_dropped = 0,
                total_windows = 0;
  for (double rate : kAudioRates) {
    for (std::uint64_t seed = 1; seed <= kAudioSeeds; ++seed) {
      SCOPED_TRACE(repro("audio", seed, rate));
      const fault::ScenarioConfig cfg{seed, rate, fault::kAllKinds};
      const fault::AudioScenarioResult first = fault::run_audio_scenario(cfg);
      const fault::AudioScenarioResult second = fault::run_audio_scenario(cfg);
      ASSERT_EQ(first, second);
      ++plans;
      total_faults += first.faults;
      total_dropped += first.chunks_dropped;
      total_windows += first.windows_classified;
    }
  }
  EXPECT_EQ(plans, 154u);
  EXPECT_GT(total_faults, 0u);
  EXPECT_GT(total_dropped, 0u);
  // Damaged audio still classifies: the pipeline keeps producing
  // windows rather than wedging on faults.
  EXPECT_GT(total_windows, 0u);
}

TEST(AudioFuzz, RateZeroMatchesCleanPipelineRun) {
  const fault::AudioScenarioResult clean =
      fault::run_audio_scenario({1, 0.0, fault::kAllKinds});
  EXPECT_EQ(clean.faults, 0u);
  EXPECT_EQ(clean.chunks_dropped, 0u);
  EXPECT_EQ(clean.gap_resyncs, 0u);
  EXPECT_GT(clean.windows_classified, 0u);
  // Seed-independent at rate 0: the plan never consults its RNG.
  const fault::AudioScenarioResult other =
      fault::run_audio_scenario({424242, 0.0, fault::kAllKinds});
  EXPECT_EQ(clean, other);
}

TEST(AudioFuzz, SustainedDropsTripTheGapResync) {
  // Drop-only faults at a high rate open capture gaps beyond the
  // pipeline's 0.25 s tolerance; the scheduler must resync (clear and
  // restart its window clock) instead of spinning through the gap.
  const fault::AudioScenarioResult r = fault::run_audio_scenario(
      {11, 0.6, fault::kind_bit(fault::FaultKind::kAudioDrop)});
  EXPECT_GT(r.chunks_dropped, 0u);
  EXPECT_GT(r.gap_resyncs, 0u);
}

// ---------------------------------------------------------------------
// Serve suite: multi-tenant runs where only the odd-index sessions are
// faulted; the even-index tenants must come out byte-identical to the
// fault-free baseline.

TEST(ServeFuzz, ReplayIdentityAndNeighborIsolationAcross10Plans) {
  const fault::ServeScenarioResult baseline =
      fault::run_serve_scenario({1, 0.0, fault::kAllKinds});
  ASSERT_EQ(baseline.decode_digests.size(), fault::kServeScenarioSessions);
  EXPECT_EQ(baseline.sessions_quarantined, 0u);
  for (std::uint64_t f : baseline.session_faults) EXPECT_EQ(f, 0u);

  std::uint64_t plans = 0, total_faults = 0;
  for (double rate : kServeRates) {
    for (std::uint64_t seed = 1; seed <= kServeSeeds; ++seed) {
      SCOPED_TRACE(repro("serve", seed, rate));
      const fault::ScenarioConfig cfg{seed, rate, fault::kAllKinds};
      const fault::ServeScenarioResult first = fault::run_serve_scenario(cfg);
      const fault::ServeScenarioResult second = fault::run_serve_scenario(cfg);
      ASSERT_EQ(first, second);
      ++plans;

      // Quarantine isolation: the clean (even-index) tenants must be
      // byte-identical to their fault-free selves — faulted neighbors,
      // quarantines and forced batcher fallbacks may not leak in.
      for (std::size_t i = 0; i < fault::kServeScenarioSessions; i += 2) {
        EXPECT_EQ(first.decode_digests[i], baseline.decode_digests[i])
            << "clean session " << i << " decode digest drifted";
        EXPECT_EQ(first.window_digests[i], baseline.window_digests[i])
            << "clean session " << i << " window digest drifted";
        EXPECT_EQ(first.session_faults[i], 0u);
      }
      for (std::size_t i = 1; i < fault::kServeScenarioSessions; i += 2) {
        total_faults += first.session_faults[i];
      }
    }
  }
  EXPECT_EQ(plans, 10u);
  EXPECT_GT(total_faults, 0u);
}

// ---------------------------------------------------------------------
// Quarantine ladder lifecycle, in isolation.

TEST(Quarantine, FaultStormQuarantinesRestartsAndShieldsNeighbor) {
  const serve::SessionEnv env = fault::scenario_env();

  serve::ServerConfig sc;
  sc.max_sessions = 2;
  sc.backlog_hi = 1000;  // ladder out of the picture
  sc.backlog_lo = 10;
  sc.batcher.max_batch = 16;
  sc.batcher.max_delay_ticks = 0;
  sc.error_budget = 2;
  sc.error_window_ticks = 20;
  sc.quarantine_ticks = 5;

  serve::SessionConfig clean_cfg;
  clean_cfg.seed = 100;
  serve::SessionConfig storm_cfg;
  storm_cfg.seed = 101;
  // Every chunk dropped: one error per tick, so the budget (2 per 20
  // ticks) trips on tick 3.
  storm_cfg.fault = fault::FaultConfig{
      7, 1.0, fault::kind_bit(fault::FaultKind::kAudioDrop)};

  // Reference: the clean tenant running alone.
  serve::SessionManager solo(sc, env);
  const serve::SessionId solo_id = solo.create_session(clean_cfg);
  for (int t = 0; t < 40; ++t) solo.tick();
  solo.drain();
  const serve::SessionReport solo_rep = solo.report(solo_id);

  serve::SessionManager server(sc, env);
  const serve::SessionId clean_id = server.create_session(clean_cfg);
  const serve::SessionId storm_id = server.create_session(storm_cfg);
  bool saw_quarantine = false;
  for (int t = 0; t < 40; ++t) {
    server.tick();
    saw_quarantine = saw_quarantine || server.is_quarantined(storm_id);
  }
  server.drain();

  EXPECT_TRUE(saw_quarantine);
  EXPECT_GE(server.stats().sessions_quarantined, 1u);
  // quarantine_ticks = 5 inside a 40-tick run: at least one restart
  // must have happened, and the restarted session faults again, so the
  // ladder cycles more than once.
  EXPECT_GE(server.stats().sessions_restarted, 1u);
  EXPECT_GT(server.stats().sessions_quarantined,
            server.stats().sessions_restarted - 1);

  // The storm session never produced audio, so it classified nothing.
  EXPECT_EQ(server.report(storm_id).windows.size(), 0u);
  EXPECT_GT(server.session(storm_id).stats().chunks_dropped +
                server.stats().sessions_restarted,
            0u);

  // The clean neighbor is byte-identical to its solo run: same decoded
  // pixels, same classified windows.
  const serve::SessionReport rep = server.report(clean_id);
  EXPECT_EQ(rep.decode_digest, solo_rep.decode_digest);
  ASSERT_EQ(rep.windows.size(), solo_rep.windows.size());
  for (std::size_t i = 0; i < rep.windows.size(); ++i) {
    EXPECT_EQ(rep.windows[i].seq, solo_rep.windows[i].seq);
    EXPECT_EQ(rep.windows[i].t_end, solo_rep.windows[i].t_end);
    EXPECT_EQ(rep.windows[i].emotion, solo_rep.windows[i].emotion);
    EXPECT_EQ(rep.windows[i].confidence, solo_rep.windows[i].confidence);
    EXPECT_EQ(rep.windows[i].probabilities, solo_rep.windows[i].probabilities);
  }
}

// ---------------------------------------------------------------------
// Decoder recovery policy, in isolation.

namespace {

/// Short clip with several IDR periods so mid-stream damage has a
/// keyframe to resync at: gop 4, no B frames.
std::vector<std::uint8_t> multi_gop_stream() {
  h264::VideoConfig vc;
  vc.width = 48;
  vc.height = 48;
  vc.frames = 12;
  h264::EncoderConfig ec;
  ec.width = vc.width;
  ec.height = vc.height;
  ec.qp = 28;
  ec.gop_size = 4;
  ec.b_frames = 0;
  h264::Encoder enc(ec);
  return enc.encode_annexb(h264::generate_test_video(vc));
}

/// Index (into unpack order) of the first non-IDR slice.
std::size_t first_p_slice(const std::vector<h264::NalUnit>& units) {
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (units[i].type == h264::NalType::kSliceNonIdr) return i;
  }
  ADD_FAILURE() << "stream has no non-IDR slice";
  return 0;
}

}  // namespace

TEST(DecoderRecovery, StrictModeThrowsTypedDecodeError) {
  const auto stream = multi_gop_stream();
  auto units = h264::unpack_annexb(stream);
  const std::size_t victim = first_p_slice(units);
  units[victim].payload.resize(2);  // truncated mid-NAL

  h264::Decoder strict;  // resilient defaults off
  bool threw = false;
  try {
    strict.decode_annexb(h264::pack_annexb(units));
  } catch (const h264::DecodeError& e) {
    threw = true;
    EXPECT_EQ(e.nal_type(), h264::NalType::kSliceNonIdr);
    // DecodeError derives from BitstreamError, so pre-existing catch
    // sites keep working.
    EXPECT_NE(dynamic_cast<const h264::BitstreamError*>(&e), nullptr);
  }
  EXPECT_TRUE(threw);
}

TEST(DecoderRecovery, ResilientModeResyncsAtNextKeyframe) {
  const auto stream = multi_gop_stream();

  h264::Decoder clean_dec;
  const auto clean = clean_dec.decode_annexb(stream);
  ASSERT_EQ(clean.size(), 12u);

  auto units = h264::unpack_annexb(stream);
  const std::size_t victim = first_p_slice(units);
  units[victim].payload.resize(2);

  h264::Decoder dec(h264::DecoderConfig{true, /*resilient=*/true});
  std::vector<h264::DecodedPicture> pics;
  ASSERT_NO_THROW(pics = dec.decode_annexb(h264::pack_annexb(units)));

  // One malformed slice, every following non-IDR skipped until the next
  // keyframe, then normal decode resumes.
  EXPECT_EQ(dec.activity().nal_errors, 1u);
  EXPECT_GE(dec.activity().resync_skips, 1u);
  EXPECT_EQ(dec.activity().resyncs, 1u);
  EXPECT_FALSE(dec.awaiting_keyframe());
  ASSERT_GT(pics.size(), 0u);
  ASSERT_LT(pics.size(), clean.size());

  // Everything the resilient decoder did emit is bit-identical to the
  // clean decode of the same pictures (matched by poc): recovery never
  // fabricates pixels.
  for (const h264::DecodedPicture& pic : pics) {
    const auto match = std::find_if(
        clean.begin(), clean.end(),
        [&](const h264::DecodedPicture& c) { return c.poc == pic.poc; });
    ASSERT_NE(match, clean.end()) << "poc " << pic.poc;
    EXPECT_EQ(pic.frame.y.data, match->frame.y.data) << "poc " << pic.poc;
    EXPECT_EQ(pic.frame.cb.data, match->frame.cb.data) << "poc " << pic.poc;
    EXPECT_EQ(pic.frame.cr.data, match->frame.cr.data) << "poc " << pic.poc;
  }
}

TEST(DecoderRecovery, ResilientCleanDecodeIsByteIdenticalToStrict) {
  const auto stream = multi_gop_stream();
  h264::Decoder strict;
  h264::Decoder resilient(h264::DecoderConfig{true, /*resilient=*/true});
  const auto a = strict.decode_annexb(stream);
  const auto b = resilient.decode_annexb(stream);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].poc, b[i].poc);
    EXPECT_EQ(a[i].frame.y.data, b[i].frame.y.data);
    EXPECT_EQ(a[i].frame.cb.data, b[i].frame.cb.data);
    EXPECT_EQ(a[i].frame.cr.data, b[i].frame.cr.data);
  }
  EXPECT_EQ(resilient.activity().nal_errors, 0u);
  EXPECT_EQ(resilient.activity().resyncs, 0u);
}
