// Integration tests across the codec: transform/quantization invariants,
// prediction, full encode-decode round trips, deblocking behaviour and
// concealment after NAL deletion.
#include <gtest/gtest.h>

#include <random>

#include "h264/decoder.hpp"
#include "h264/deblock.hpp"
#include "h264/encoder.hpp"
#include "h264/inter.hpp"
#include "h264/intra.hpp"
#include "h264/intra4.hpp"
#include "h264/quality.hpp"
#include "h264/sei.hpp"
#include "h264/testvideo.hpp"
#include "h264/transform.hpp"

namespace h264 = affectsys::h264;

// ---------------------------------------------------------------- transform

TEST(Transform, InverseOfForwardIsScaledIdentityFreeAtQp0) {
  // At QP 0 the quantization ladder is nearly lossless for small values.
  std::mt19937 rng(1);
  std::uniform_int_distribution<int> d(-64, 64);
  for (int iter = 0; iter < 100; ++iter) {
    h264::Block4x4 res{};
    for (auto& row : res) {
      for (auto& x : row) x = d(rng);
    }
    const auto rec = h264::dequantize_inverse(h264::transform_quantize(res, 0), 0);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_NEAR(rec[i][j], res[i][j], 2) << "at " << i << "," << j;
      }
    }
  }
}

class QuantizationError : public ::testing::TestWithParam<int> {};

TEST_P(QuantizationError, BoundedByQuantStep) {
  const int qp = GetParam();
  std::mt19937 rng(qp);
  std::uniform_int_distribution<int> d(-100, 100);
  double worst = 0.0;
  for (int iter = 0; iter < 50; ++iter) {
    h264::Block4x4 res{};
    for (auto& row : res) {
      for (auto& x : row) x = d(rng);
    }
    const auto rec =
        h264::dequantize_inverse(h264::transform_quantize(res, qp), qp);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        worst = std::max(worst, std::abs(static_cast<double>(rec[i][j]) - res[i][j]));
      }
    }
  }
  // Quantization step doubles every 6 QP; error should track it.
  const double qstep = 0.625 * std::pow(2.0, qp / 6.0);
  EXPECT_LE(worst, qstep * 1.5 + 2.0);
}

INSTANTIATE_TEST_SUITE_P(QpSweep, QuantizationError,
                         ::testing::Values(0, 6, 12, 18, 24, 30, 36));

TEST(Transform, HigherQpNeverIncreasesNonzeroCount) {
  std::mt19937 rng(5);
  std::uniform_int_distribution<int> d(-80, 80);
  for (int iter = 0; iter < 50; ++iter) {
    h264::Block4x4 res{};
    for (auto& row : res) {
      for (auto& x : row) x = d(rng);
    }
    int prev = 17;
    for (int qp = 0; qp <= 48; qp += 8) {
      const int nz = h264::count_nonzero(h264::transform_quantize(res, qp));
      EXPECT_LE(nz, prev);
      prev = nz;
    }
  }
}

// ---------------------------------------------------------------- prediction

TEST(Intra, DcPredictsNeighbourAverage) {
  h264::Plane recon(32, 32, 0);
  for (int x = 0; x < 32; ++x) recon.at(x, 7) = 100;  // row above block
  for (int y = 0; y < 32; ++y) recon.at(7, y) = 200;  // col left of block
  std::uint8_t pred[16 * 16];
  h264::intra_predict(recon, 8, 8, 16, h264::IntraMode::kDc, pred);
  EXPECT_EQ(pred[0], 150);  // (16*100 + 16*200 + 16) / 32
}

TEST(Intra, VerticalReplicatesTopRow) {
  h264::Plane recon(32, 32, 0);
  for (int x = 0; x < 32; ++x) recon.at(x, 7) = static_cast<std::uint8_t>(x);
  std::uint8_t pred[16 * 16];
  h264::intra_predict(recon, 8, 8, 16, h264::IntraMode::kVertical, pred);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) EXPECT_EQ(pred[y * 16 + x], 8 + x);
  }
}

TEST(Intra, UnavailableNeighboursFallBackTo128) {
  h264::Plane recon(32, 32, 77);
  std::uint8_t pred[16 * 16];
  h264::intra_predict(recon, 0, 0, 16, h264::IntraMode::kDc, pred);
  EXPECT_EQ(pred[0], 128);
  h264::intra_predict(recon, 0, 0, 16, h264::IntraMode::kVertical, pred);
  EXPECT_EQ(pred[0], 128);
}

TEST(Inter, MotionSearchFindsKnownShift) {
  // Build a reference with a distinctive patch, then shift it.
  h264::Plane ref(64, 64, 10);
  std::mt19937 rng(3);
  std::uniform_int_distribution<int> d(0, 255);
  for (int y = 16; y < 40; ++y) {
    for (int x = 16; x < 40; ++x) ref.at(x, y) = static_cast<std::uint8_t>(d(rng));
  }
  h264::Plane cur(64, 64, 10);
  const int sx = 2, sy = -3;
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) cur.at(x, y) = ref.at_clamped(x + sx, y + sy);
  }
  int sad = -1;
  const auto mv = h264::motion_search(cur, ref, 16, 16, 16, 4, &sad);
  EXPECT_EQ(mv.dx, sx);
  EXPECT_EQ(mv.dy, sy);
  EXPECT_LE(sad, 2 * (std::abs(sx) + std::abs(sy)));  // only the zero-bias
}

TEST(Inter, AveragePredictionsRoundsToNearest) {
  const std::uint8_t a[4] = {0, 1, 255, 100};
  const std::uint8_t b[4] = {1, 2, 255, 101};
  std::uint8_t out[4];
  h264::average_predictions(a, b, out, 4);
  EXPECT_EQ(out[0], 1);  // (0+1+1)/2
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(out[2], 255);
  EXPECT_EQ(out[3], 101);
}

// ---------------------------------------------------------------- deblocking

TEST(Deblock, BoundaryStrengthRules) {
  h264::MbInfo intra_mb;
  intra_mb.intra = true;
  h264::MbInfo coded_mb;
  coded_mb.nonzero[3] = true;
  h264::MbInfo moving_mb;
  moving_mb.mv = {2, 0};
  h264::MbInfo still_mb;

  EXPECT_EQ(h264::boundary_strength(intra_mb, 0, still_mb, 0, true), 4);
  EXPECT_EQ(h264::boundary_strength(intra_mb, 0, still_mb, 0, false), 3);
  EXPECT_EQ(h264::boundary_strength(coded_mb, 3, still_mb, 0, true), 2);
  EXPECT_EQ(h264::boundary_strength(moving_mb, 0, still_mb, 0, true), 1);
  EXPECT_EQ(h264::boundary_strength(still_mb, 0, still_mb, 0, true), 0);
}

TEST(Deblock, SmoothsBlockEdge) {
  h264::YuvFrame f(32, 32);
  // Hard vertical step at the MB boundary x=16.
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) f.y.at(x, y) = x < 16 ? 60 : 90;
  }
  std::vector<h264::MbInfo> info(4);
  for (auto& mi : info) mi.intra = true;
  const int step_before = std::abs(f.y.at(16, 8) - f.y.at(15, 8));
  // QP 36: alpha = 50 > |90-60|, so the edge qualifies for filtering.
  const auto stats = h264::deblock_frame(f, info, 36);
  const int step_after = std::abs(f.y.at(16, 8) - f.y.at(15, 8));
  EXPECT_GT(stats.edges_filtered, 0u);
  EXPECT_LT(step_after, step_before);
}

TEST(Deblock, LowQpSkipsSmoothEdges) {
  h264::YuvFrame f(32, 32);
  for (auto& v : f.y.data) v = 100;  // perfectly flat
  std::vector<h264::MbInfo> info(4);
  const auto stats = h264::deblock_frame(f, info, 30);
  // bs==0 everywhere (no intra, no residual, no motion difference).
  EXPECT_EQ(stats.edges_filtered, 0u);
}

// ---------------------------------------------------------------- end-to-end

TEST(Codec, AllIntraPsnrReasonable) {
  h264::VideoConfig vc;
  vc.width = 64;
  vc.height = 64;
  vc.frames = 3;
  auto video = h264::generate_test_video(vc);

  h264::EncoderConfig ec;
  ec.width = vc.width;
  ec.height = vc.height;
  ec.qp = 20;
  ec.gop_size = 1;
  ec.b_frames = 0;
  h264::Encoder enc(ec);
  const auto stream = enc.encode_annexb(video);

  h264::Decoder dec;
  auto decoded = dec.decode_annexb(stream);
  ASSERT_EQ(decoded.size(), video.size());
  auto display = h264::assemble_display_sequence(std::move(decoded),
                                                 static_cast<int>(video.size()));
  for (std::size_t i = 0; i < video.size(); ++i) {
    EXPECT_GT(h264::psnr_luma(video[i], display[i].frame), 30.0)
        << "frame " << i;
  }
}

class GopRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GopRoundTrip, DecodesWithGoodQuality) {
  const auto [gop, bframes, qp] = GetParam();
  h264::VideoConfig vc;
  vc.width = 64;
  vc.height = 64;
  vc.frames = 12;
  vc.motion = 1.0;
  auto video = h264::generate_test_video(vc);

  h264::EncoderConfig ec;
  ec.width = vc.width;
  ec.height = vc.height;
  ec.qp = qp;
  ec.gop_size = gop;
  ec.b_frames = bframes;
  h264::Encoder enc(ec);
  const auto stream = enc.encode_annexb(video);

  h264::Decoder dec;
  auto display = h264::assemble_display_sequence(
      dec.decode_annexb(stream), static_cast<int>(video.size()));
  ASSERT_EQ(display.size(), video.size());
  for (std::size_t i = 0; i < video.size(); ++i) {
    EXPECT_FALSE(display[i].concealed) << "frame " << i;
    EXPECT_GT(h264::psnr_luma(video[i], display[i].frame), 27.0)
        << "frame " << i << " gop=" << gop << " b=" << bframes;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Structures, GopRoundTrip,
    ::testing::Values(std::make_tuple(12, 0, 24),   // IPPP
                      std::make_tuple(12, 2, 24),   // IBBP
                      std::make_tuple(6, 1, 24),    // IBPBP
                      std::make_tuple(12, 2, 32),   // coarser QP
                      std::make_tuple(4, 0, 20)));

TEST(Codec, HigherQpShrinksStream) {
  h264::VideoConfig vc;
  vc.width = 64;
  vc.height = 64;
  vc.frames = 6;
  auto video = h264::generate_test_video(vc);
  std::size_t prev = SIZE_MAX;
  for (int qp : {16, 28, 40}) {
    h264::EncoderConfig ec;
    ec.width = vc.width;
    ec.height = vc.height;
    ec.qp = qp;
    ec.gop_size = 6;
    ec.b_frames = 0;
    h264::Encoder enc(ec);
    const std::size_t size = enc.encode_annexb(video).size();
    EXPECT_LT(size, prev) << "qp " << qp;
    prev = size;
  }
}

TEST(Codec, DeletedBFrameNalsConcealButKeepRefsIntact) {
  h264::VideoConfig vc;
  vc.width = 64;
  vc.height = 64;
  vc.frames = 12;
  auto video = h264::generate_test_video(vc);

  h264::EncoderConfig ec;
  ec.width = vc.width;
  ec.height = vc.height;
  ec.qp = 26;
  ec.gop_size = 12;
  ec.b_frames = 2;
  h264::Encoder enc(ec);
  auto units = enc.parameter_sets();
  auto pics = enc.encode(video);
  int deleted = 0;
  for (auto& pic : pics) {
    // Drop every disposable (B) NAL unit.
    if (pic.nal.ref_idc == 0) {
      ++deleted;
      continue;
    }
    units.push_back(std::move(pic.nal));
  }
  ASSERT_GT(deleted, 0);

  h264::Decoder dec;
  auto display = h264::assemble_display_sequence(
      dec.decode_annexb(h264::pack_annexb(units)),
      static_cast<int>(video.size()));
  ASSERT_EQ(display.size(), video.size());
  int concealed = 0;
  for (std::size_t i = 0; i < display.size(); ++i) {
    if (display[i].concealed) {
      ++concealed;
    } else {
      // Reference pictures must still decode at full quality.
      EXPECT_GT(h264::psnr_luma(video[i], display[i].frame), 27.0);
    }
  }
  EXPECT_EQ(concealed, deleted);
}

TEST(Codec, DisablingDeblockReducesActivityAndQuality) {
  h264::VideoConfig vc;
  vc.width = 64;
  vc.height = 64;
  vc.frames = 6;
  auto video = h264::generate_test_video(vc);

  h264::EncoderConfig ec;
  ec.width = vc.width;
  ec.height = vc.height;
  ec.qp = 34;  // coarse QP so DF matters
  ec.gop_size = 6;
  ec.b_frames = 0;
  h264::Encoder enc1(ec), enc2(ec);
  const auto stream = enc1.encode_annexb(video);
  const auto stream2 = enc2.encode_annexb(video);
  ASSERT_EQ(stream, stream2);  // determinism check

  h264::Decoder with_df({.enable_deblock = true});
  h264::Decoder without_df({.enable_deblock = false});
  auto disp_on = h264::assemble_display_sequence(
      with_df.decode_annexb(stream), static_cast<int>(video.size()));
  auto disp_off = h264::assemble_display_sequence(
      without_df.decode_annexb(stream), static_cast<int>(video.size()));

  EXPECT_GT(with_df.activity().deblock_edges_examined, 0u);
  EXPECT_EQ(without_df.activity().deblock_edges_examined, 0u);

  std::vector<h264::YuvFrame> on, off;
  for (auto& p : disp_on) on.push_back(std::move(p.frame));
  for (auto& p : disp_off) off.push_back(std::move(p.frame));
  const double psnr_on = h264::sequence_psnr(video, on);
  const double psnr_off = h264::sequence_psnr(video, off);
  // DF-off output differs from DF-on and should be no better.
  EXPECT_LE(psnr_off, psnr_on + 0.2);
}

// ---------------------------------------------------- half-pel prediction

TEST(HalfPel, IntegerPositionsMatchFullPel) {
  h264::Plane ref(32, 32);
  std::mt19937 rng(21);
  std::uniform_int_distribution<int> d(0, 255);
  for (auto& v : ref.data) v = static_cast<std::uint8_t>(d(rng));
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      EXPECT_EQ(h264::sample_halfpel(ref, 2 * x, 2 * y), ref.at(x, y));
    }
  }
}

TEST(HalfPel, HalfPositionIsSixTapAverage) {
  // On a horizontal ramp the 6-tap half-pel value is the midpoint.
  h264::Plane ref(32, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 32; ++x) {
      ref.at(x, y) = static_cast<std::uint8_t>(4 * x);
    }
  }
  // Between x=10 (40) and x=11 (44): expect 42.
  EXPECT_EQ(h264::sample_halfpel(ref, 21, 8), 42);
}

TEST(HalfPel, RefinementFindsSubpelShift) {
  // Reference: smooth gradient; current frame = ref shifted by 1 full pel;
  // the half-pel search must return an even (integer) vector matching it.
  h264::Plane ref(64, 64);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      ref.at(x, y) = h264::clamp_pixel(2 * x + y);
    }
  }
  h264::Plane cur(64, 64);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) cur.at(x, y) = ref.at_clamped(x + 1, y);
  }
  int sad = 0;
  const auto mv = h264::motion_search_halfpel(cur, ref, 24, 24, 16, 3, &sad);
  EXPECT_EQ(mv.dx, 2);  // +1 full pel in half-pel units
  EXPECT_EQ(mv.dy, 0);
}

TEST(HalfPel, ImprovesInterQualityOnSmoothMotion) {
  h264::VideoConfig vc;
  vc.width = 64;
  vc.height = 64;
  vc.frames = 8;
  vc.motion = 1.5;
  vc.noise = 0.3;
  auto video = h264::generate_test_video(vc);
  auto encode_decode_psnr = [&](bool halfpel) {
    h264::EncoderConfig ec;
    ec.width = vc.width;
    ec.height = vc.height;
    ec.qp = 26;
    ec.gop_size = 8;
    ec.b_frames = 0;
    ec.halfpel_mc = halfpel;
    h264::Encoder enc(ec);
    h264::Decoder dec;
    auto display = h264::assemble_display_sequence(
        dec.decode_annexb(enc.encode_annexb(video)),
        static_cast<int>(video.size()));
    std::vector<h264::YuvFrame> frames;
    for (auto& p : display) frames.push_back(std::move(p.frame));
    return h264::sequence_psnr(video, frames);
  };
  // Half-pel refinement should never hurt and usually helps.
  EXPECT_GE(encode_decode_psnr(true), encode_decode_psnr(false) - 0.1);
}

// ---------------------------------------------------- directional intra 4x4

TEST(Intra4, DiagonalDownLeftFollowsDiagonalGradient) {
  // Scene whose intensity is constant along down-left diagonals
  // (v = x + y): DDL must predict it almost exactly, V/H cannot.
  h264::Plane recon(16, 16);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      recon.at(x, y) = static_cast<std::uint8_t>(10 * (x + y));
    }
  }
  std::uint8_t ddl[16], vert[16];
  h264::intra4_predict(recon, 8, 8, h264::Intra4Mode::kDiagonalDownLeft, ddl);
  h264::intra4_predict(recon, 8, 8, h264::Intra4Mode::kVertical, vert);
  int err_ddl = 0, err_v = 0;
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      const int truth = 10 * (8 + x + 8 + y);
      err_ddl += std::abs(static_cast<int>(ddl[y * 4 + x]) - truth);
      err_v += std::abs(static_cast<int>(vert[y * 4 + x]) - truth);
    }
  }
  EXPECT_LT(err_ddl, err_v / 2);
}

TEST(Intra4, DiagonalDownRightFollowsOppositeDiagonal) {
  // Constant along down-right diagonals (v = x - y).
  h264::Plane recon(16, 16);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      recon.at(x, y) = h264::clamp_pixel(128 + 10 * (x - y));
    }
  }
  std::uint8_t ddr[16], horiz[16];
  h264::intra4_predict(recon, 8, 8, h264::Intra4Mode::kDiagonalDownRight, ddr);
  h264::intra4_predict(recon, 8, 8, h264::Intra4Mode::kHorizontal, horiz);
  int err_ddr = 0, err_h = 0;
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      const int truth = 128 + 10 * ((8 + x) - (8 + y));
      err_ddr += std::abs(static_cast<int>(ddr[y * 4 + x]) - truth);
      err_h += std::abs(static_cast<int>(horiz[y * 4 + x]) - truth);
    }
  }
  EXPECT_LT(err_ddr, err_h / 2);
}

TEST(Intra4, ModeDecisionPicksTheMatchingDirection) {
  h264::Plane scene(16, 16);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      scene.at(x, y) = static_cast<std::uint8_t>(12 * (x + y));
    }
  }
  EXPECT_EQ(h264::choose_intra4_mode(scene, scene, 8, 8),
            h264::Intra4Mode::kDiagonalDownLeft);
  // Vertical stripes -> vertical mode.
  h264::Plane stripes(16, 16);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      stripes.at(x, y) = x % 2 ? 200 : 50;
    }
  }
  EXPECT_EQ(h264::choose_intra4_mode(stripes, stripes, 8, 8),
            h264::Intra4Mode::kVertical);
}

// ------------------------------------------------------------- intra 4x4

TEST(Intra4x4, RoundTripsOnDetailedContent) {
  // High-detail content triggers 4x4 partitions; the stream must still
  // round-trip at good quality.
  h264::VideoConfig vc;
  vc.width = 64;
  vc.height = 64;
  vc.frames = 2;
  vc.detail = 1.0;
  vc.noise = 3.0;
  auto video = h264::generate_test_video(vc);
  h264::EncoderConfig ec;
  ec.width = vc.width;
  ec.height = vc.height;
  ec.qp = 20;
  ec.gop_size = 1;
  ec.b_frames = 0;
  ec.intra4x4 = true;
  h264::Encoder enc(ec);
  h264::Decoder dec;
  auto display = h264::assemble_display_sequence(
      dec.decode_annexb(enc.encode_annexb(video)),
      static_cast<int>(video.size()));
  ASSERT_EQ(display.size(), video.size());
  for (std::size_t i = 0; i < video.size(); ++i) {
    EXPECT_GT(h264::psnr_luma(video[i], display[i].frame), 29.0);
  }
}

TEST(Intra4x4, NeverWorseThanSixteenOnly) {
  h264::VideoConfig vc;
  vc.width = 64;
  vc.height = 64;
  vc.frames = 3;
  vc.detail = 0.9;
  auto video = h264::generate_test_video(vc);
  auto psnr_with = [&](bool i4) {
    h264::EncoderConfig ec;
    ec.width = vc.width;
    ec.height = vc.height;
    ec.qp = 24;
    ec.gop_size = 1;
    ec.b_frames = 0;
    ec.intra4x4 = i4;
    h264::Encoder enc(ec);
    h264::Decoder dec;
    auto display = h264::assemble_display_sequence(
        dec.decode_annexb(enc.encode_annexb(video)),
        static_cast<int>(video.size()));
    std::vector<h264::YuvFrame> frames;
    for (auto& p : display) frames.push_back(std::move(p.frame));
    return h264::sequence_psnr(video, frames);
  };
  EXPECT_GE(psnr_with(true), psnr_with(false) - 0.1);
}

// ----------------------------------------------------------- rate control

TEST(RateControl, TracksTargetBitrate) {
  h264::VideoConfig vc;
  vc.width = 64;
  vc.height = 64;
  vc.frames = 48;
  vc.noise = 2.0;
  auto video = h264::generate_test_video(vc);

  h264::EncoderConfig ec;
  ec.width = vc.width;
  ec.height = vc.height;
  ec.qp = 28;
  ec.gop_size = 12;
  ec.b_frames = 2;
  for (double target_bps : {60000.0, 150000.0}) {
    h264::RateControlConfig rcc;
    rcc.target_bps = target_bps;
    rcc.fps = 25.0;
    rcc.initial_qp = 28;
    h264::RateController rc(rcc);
    h264::Encoder enc(ec);
    const auto pics = enc.encode_rate_controlled(video, rc);
    ASSERT_EQ(pics.size(), video.size());
    EXPECT_NEAR(rc.achieved_bps(), target_bps, 0.35 * target_bps)
        << "target " << target_bps;
  }
}

TEST(RateControl, RateControlledStreamDecodes) {
  h264::VideoConfig vc;
  vc.width = 64;
  vc.height = 64;
  vc.frames = 24;
  auto video = h264::generate_test_video(vc);
  h264::EncoderConfig ec;
  ec.width = vc.width;
  ec.height = vc.height;
  ec.qp = 28;
  ec.gop_size = 12;
  ec.b_frames = 2;
  h264::RateController rc({100000.0, 25.0, 28, 12, 48, 1.0});
  h264::Encoder enc(ec);
  auto units = enc.parameter_sets();
  for (auto& pic : enc.encode_rate_controlled(video, rc)) {
    units.push_back(std::move(pic.nal));
  }
  h264::Decoder dec;
  auto display = h264::assemble_display_sequence(
      dec.decode_annexb(h264::pack_annexb(units)),
      static_cast<int>(video.size()));
  ASSERT_EQ(display.size(), video.size());
  // Per-picture QP deltas must reconstruct correctly: quality reasonable,
  // nothing concealed.
  for (std::size_t i = 0; i < display.size(); ++i) {
    EXPECT_FALSE(display[i].concealed);
    EXPECT_GT(h264::psnr_luma(video[i], display[i].frame), 24.0);
  }
}

TEST(RateControl, LowerTargetMeansCoarserQp) {
  h264::VideoConfig vc;
  vc.width = 64;
  vc.height = 64;
  vc.frames = 36;
  vc.noise = 2.0;
  auto video = h264::generate_test_video(vc);
  h264::EncoderConfig ec;
  ec.width = vc.width;
  ec.height = vc.height;
  ec.qp = 28;
  ec.gop_size = 12;
  ec.b_frames = 0;
  auto final_qp = [&](double bps) {
    h264::RateController rc({bps, 25.0, 28, 12, 48, 1.0});
    h264::Encoder enc(ec);
    enc.encode_rate_controlled(video, rc);
    return rc.next_qp();
  };
  EXPECT_GT(final_qp(40000.0), final_qp(400000.0));
}

TEST(RateControl, RejectsBadConfig) {
  EXPECT_THROW(h264::RateController({-1.0, 25.0, 28, 12, 48, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(h264::RateController({1e5, 25.0, 28, 40, 20, 1.0}),
               std::invalid_argument);
}

// -------------------------------------------------------------------- SEI

TEST(Sei, AffectAnnotationRoundTrips) {
  h264::AffectSei in;
  in.time_ms = 123456;
  in.emotion = 9;
  in.decoder_mode = 3;
  in.confidence_pct = 87;
  const h264::NalUnit nal = h264::make_affect_sei(in);
  EXPECT_EQ(nal.type, h264::NalType::kSei);
  const auto out = h264::parse_affect_sei(nal);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->time_ms, in.time_ms);
  EXPECT_EQ(out->emotion, in.emotion);
  EXPECT_EQ(out->decoder_mode, in.decoder_mode);
  EXPECT_EQ(out->confidence_pct, in.confidence_pct);
}

TEST(Sei, ForeignSeiRejectedGracefully) {
  h264::NalUnit foreign;
  foreign.type = h264::NalType::kSei;
  foreign.payload = {0x01, 0x04, 0xAA, 0xBB, 0xCC, 0xDD, 0x80};
  EXPECT_FALSE(h264::parse_affect_sei(foreign).has_value());
  h264::NalUnit slice;
  slice.type = h264::NalType::kSliceIdr;
  EXPECT_FALSE(h264::parse_affect_sei(slice).has_value());
}

TEST(Sei, SurvivesAnnexBAndDecoderIgnoresIt) {
  h264::VideoConfig vc;
  vc.width = 64;
  vc.height = 64;
  vc.frames = 3;
  auto video = h264::generate_test_video(vc);
  h264::EncoderConfig ec;
  ec.width = vc.width;
  ec.height = vc.height;
  ec.gop_size = 3;
  ec.b_frames = 0;
  h264::Encoder enc(ec);

  auto units = enc.parameter_sets();
  h264::AffectSei note;
  note.time_ms = 777;
  note.emotion = 2;
  units.push_back(h264::make_affect_sei(note));
  for (auto& pic : enc.encode(video)) units.push_back(std::move(pic.nal));

  const auto stream = h264::pack_annexb(units);
  const auto parsed = h264::unpack_annexb(stream);
  int sei_found = 0;
  for (const auto& u : parsed) {
    if (const auto p = h264::parse_affect_sei(u)) {
      ++sei_found;
      EXPECT_EQ(p->time_ms, 777u);
    }
  }
  EXPECT_EQ(sei_found, 1);

  h264::Decoder dec;
  const auto pics = dec.decode_annexb(stream);
  EXPECT_EQ(pics.size(), 3u);  // SEI decoded past, not as a picture
}

TEST(Codec, ActivityCounterspopulated) {
  h264::VideoConfig vc;
  vc.width = 64;
  vc.height = 64;
  vc.frames = 6;
  auto video = h264::generate_test_video(vc);
  h264::EncoderConfig ec;
  ec.width = vc.width;
  ec.height = vc.height;
  ec.gop_size = 6;
  ec.b_frames = 2;
  h264::Encoder enc(ec);
  h264::Decoder dec;
  dec.decode_annexb(enc.encode_annexb(video));
  const auto& a = dec.activity();
  EXPECT_EQ(a.frames_decoded, 6u);
  EXPECT_GT(a.nal_units, 6u);  // slices + SPS/PPS
  EXPECT_GT(a.bits_parsed, 0u);
  EXPECT_GT(a.residual_blocks, 0u);
  EXPECT_GT(a.intra_mbs, 0u);
  EXPECT_GT(a.inter_mbs + a.skip_mbs, 0u);
}
