// Bit-exactness of the parallel decompositions.  The serial build
// (threads 0) is the reference; decode+deblock and GEMM must produce
// byte-identical results at every thread count, and the decoder's
// activity counters must match exactly too (see DESIGN.md "Parallel
// runtime" for why each decomposition preserves the serial order).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/thread_pool.hpp"
#include "fault/bitstream_faults.hpp"
#include "fault/plan.hpp"
#include "h264/deblock.hpp"
#include "h264/decoder.hpp"
#include "h264/encoder.hpp"
#include "h264/testvideo.hpp"
#include "nn/matrix.hpp"

namespace core = affectsys::core;
namespace h264 = affectsys::h264;
namespace nn = affectsys::nn;

namespace {

/// Every test in this file sweeps the global pool size; restore the
/// default in teardown so later suites see the stock configuration.
class ParallelDeterminism : public ::testing::Test {
 protected:
  void TearDown() override {
    core::set_global_threads(core::default_thread_count());
  }

  static constexpr std::size_t kSweep[] = {1, 2, 4};
};

void expect_frames_identical(const h264::YuvFrame& a, const h264::YuvFrame& b,
                             const char* what) {
  ASSERT_TRUE(a.same_size(b)) << what;
  EXPECT_EQ(a.y.data, b.y.data) << what << ": luma differs";
  EXPECT_EQ(a.cb.data, b.cb.data) << what << ": Cb differs";
  EXPECT_EQ(a.cr.data, b.cr.data) << what << ": Cr differs";
}

void expect_activity_identical(const h264::DecodeActivity& a,
                               const h264::DecodeActivity& b,
                               const char* what) {
  EXPECT_EQ(a.nal_units, b.nal_units) << what;
  EXPECT_EQ(a.bytes_in, b.bytes_in) << what;
  EXPECT_EQ(a.bits_parsed, b.bits_parsed) << what;
  EXPECT_EQ(a.residual_blocks, b.residual_blocks) << what;
  EXPECT_EQ(a.coefficients, b.coefficients) << what;
  EXPECT_EQ(a.iqit_blocks, b.iqit_blocks) << what;
  EXPECT_EQ(a.intra_mbs, b.intra_mbs) << what;
  EXPECT_EQ(a.inter_mbs, b.inter_mbs) << what;
  EXPECT_EQ(a.skip_mbs, b.skip_mbs) << what;
  EXPECT_EQ(a.deblock_edges_examined, b.deblock_edges_examined) << what;
  EXPECT_EQ(a.deblock_edges_filtered, b.deblock_edges_filtered) << what;
  EXPECT_EQ(a.deblock_pixels, b.deblock_pixels) << what;
  EXPECT_EQ(a.frames_decoded, b.frames_decoded) << what;
  EXPECT_EQ(a.frames_concealed, b.frames_concealed) << what;
}

/// Deterministic textured frame plus a mixed intra/inter/skip mb_info
/// layout so every boundary-strength class (4, 3, 2, 1, 0) occurs.
std::pair<h264::YuvFrame, std::vector<h264::MbInfo>> make_deblock_case(
    int width, int height) {
  h264::YuvFrame frame(width, height);
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> pix(0, 255);
  for (auto& v : frame.y.data) v = static_cast<std::uint8_t>(pix(rng));
  for (auto& v : frame.cb.data) v = static_cast<std::uint8_t>(pix(rng));
  for (auto& v : frame.cr.data) v = static_cast<std::uint8_t>(pix(rng));

  std::vector<h264::MbInfo> mbs(static_cast<std::size_t>(frame.mb_count()));
  std::uniform_int_distribution<int> kind(0, 3);
  std::uniform_int_distribution<int> mv(-8, 8);
  std::bernoulli_distribution coded(0.5);
  for (auto& mb : mbs) {
    switch (kind(rng)) {
      case 0:
        mb.intra = true;
        break;
      case 1:
        mb.skipped = true;
        break;
      default:
        mb.mv = {mv(rng), mv(rng)};
        break;
    }
    for (auto& nz : mb.nonzero) nz = !mb.skipped && coded(rng);
  }
  return {std::move(frame), std::move(mbs)};
}

}  // namespace

TEST_F(ParallelDeterminism, DecodeIsByteIdenticalAcrossThreadCounts) {
  h264::VideoConfig vc;
  vc.width = 64;
  vc.height = 64;
  vc.frames = 10;
  vc.motion = 1.5;
  const auto video = h264::generate_test_video(vc);

  h264::EncoderConfig ec;
  ec.width = vc.width;
  ec.height = vc.height;
  ec.qp = 26;
  ec.gop_size = 6;
  ec.b_frames = 1;
  h264::Encoder enc(ec);
  const auto stream = enc.encode_annexb(video);

  core::set_global_threads(0);
  h264::Decoder ref_dec;
  const auto ref = ref_dec.decode_annexb(stream);
  ASSERT_EQ(ref.size(), video.size());

  for (const std::size_t threads : kSweep) {
    core::set_global_threads(threads);
    h264::Decoder dec;
    const auto got = dec.decode_annexb(stream);
    ASSERT_EQ(got.size(), ref.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      SCOPED_TRACE(::testing::Message() << "threads=" << threads
                                        << " picture=" << i);
      EXPECT_EQ(got[i].poc, ref[i].poc);
      expect_frames_identical(got[i].frame, ref[i].frame, "decoded picture");
    }
    expect_activity_identical(dec.activity(), ref_dec.activity(),
                              "decode activity");
  }
}

TEST_F(ParallelDeterminism, RateZeroFaultPathMatchesCleanAtEveryThreadCount) {
  // The fault layer's rate-0 contract: a disabled FaultPlan must leave
  // the instrumented path byte-identical to the un-instrumented one —
  // at the serial reference AND at every pool size (the property holds
  // per decode, not just in aggregate).
  namespace fault = affectsys::fault;

  h264::VideoConfig vc;
  vc.width = 64;
  vc.height = 64;
  vc.frames = 8;
  h264::EncoderConfig ec;
  ec.width = vc.width;
  ec.height = vc.height;
  ec.qp = 26;
  ec.gop_size = 4;
  ec.b_frames = 1;
  h264::Encoder enc(ec);
  const auto stream = enc.encode_annexb(h264::generate_test_video(vc));

  core::set_global_threads(0);
  h264::Decoder ref_dec;  // strict, un-instrumented
  const auto ref = ref_dec.decode_annexb(stream);

  for (const std::size_t threads : {std::size_t{0}, std::size_t{1},
                                    std::size_t{2}, std::size_t{4}}) {
    core::set_global_threads(threads);
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);

    fault::FaultPlan plan(fault::FaultConfig{99, 0.0, fault::kAllKinds});
    fault::FaultCounts counts;
    const std::vector<std::uint8_t> injected =
        fault::inject_annexb_faults(stream, plan, counts);
    ASSERT_EQ(injected, stream);  // byte-identical bitstream
    EXPECT_EQ(counts.total, 0u);
    EXPECT_EQ(plan.decisions(), 0u);

    h264::Decoder dec(h264::DecoderConfig{true, /*resilient=*/true});
    const auto got = dec.decode_annexb(injected);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      SCOPED_TRACE(::testing::Message() << "picture " << i);
      EXPECT_EQ(got[i].poc, ref[i].poc);
      expect_frames_identical(got[i].frame, ref[i].frame,
                              "rate-0 fault-path picture");
    }
    EXPECT_EQ(dec.activity().nal_errors, 0u);
    EXPECT_EQ(dec.activity().resyncs, 0u);
  }
}

TEST_F(ParallelDeterminism, DeblockFrameIsByteIdenticalAcrossThreadCounts) {
  const auto [clean, mbs] = make_deblock_case(128, 128);

  core::set_global_threads(0);
  h264::YuvFrame ref = clean;
  const auto ref_stats = h264::deblock_frame(ref, mbs, 32);
  // The filter must actually have modified pixels for this test to bite.
  ASSERT_GT(ref_stats.pixels_modified, 0u);
  ASSERT_NE(ref.y.data, clean.y.data);

  for (const std::size_t threads : kSweep) {
    core::set_global_threads(threads);
    h264::YuvFrame got = clean;
    const auto stats = h264::deblock_frame(got, mbs, 32);
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    expect_frames_identical(got, ref, "deblocked frame");
    EXPECT_EQ(stats.edges_examined, ref_stats.edges_examined);
    EXPECT_EQ(stats.edges_filtered, ref_stats.edges_filtered);
    EXPECT_EQ(stats.pixels_modified, ref_stats.pixels_modified);
  }
}

TEST_F(ParallelDeterminism, MatmulIsBitIdenticalAcrossThreadCounts) {
  // 96^3 = 884736 multiply-adds, comfortably above the parallel
  // dispatch threshold, so the sweep exercises the pooled path.
  constexpr std::size_t kN = 96;
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> d(-1.0f, 1.0f);
  nn::Matrix a(kN, kN), b(kN, kN);
  for (std::size_t r = 0; r < kN; ++r) {
    for (std::size_t c = 0; c < kN; ++c) {
      a.at(r, c) = d(rng);
      b.at(r, c) = d(rng);
    }
  }

  core::set_global_threads(0);
  const nn::Matrix ref = a.matmul(b);
  const nn::Matrix ref_t = a.matmul_transposed(b);

  for (const std::size_t threads : kSweep) {
    core::set_global_threads(threads);
    const nn::Matrix got = a.matmul(b);
    const nn::Matrix got_t = a.matmul_transposed(b);
    for (std::size_t r = 0; r < kN; ++r) {
      for (std::size_t c = 0; c < kN; ++c) {
        // Exact float equality: row splits and k-tiling must not change
        // the accumulation order.
        ASSERT_EQ(got.at(r, c), ref.at(r, c))
            << "matmul threads=" << threads << " at " << r << "," << c;
        ASSERT_EQ(got_t.at(r, c), ref_t.at(r, c))
            << "matmul_transposed threads=" << threads << " at " << r << ","
            << c;
      }
    }
  }
}
