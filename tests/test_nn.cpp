// Tests for the NN substrate: numerical gradient checks for every layer,
// optimizer behaviour, training convergence, quantization error bounds and
// model serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <sstream>
#include <vector>

#include "nn/activation.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/gru.hpp"
#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "nn/pooling.hpp"
#include "nn/quantize.hpp"
#include "nn/trainer.hpp"

namespace nn = affectsys::nn;

namespace {

nn::Matrix random_matrix(std::size_t r, std::size_t c, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> d(0.0f, 1.0f);
  nn::Matrix m(r, c);
  for (auto& v : m.flat()) v = d(rng);
  return m;
}

/// Scalar loss = sum of elementwise products with a fixed random weight
/// matrix; lets us check dL/dx for arbitrary-output layers.
struct ProbeLoss {
  nn::Matrix weights;

  float value(const nn::Matrix& y) const {
    float acc = 0.0f;
    auto w = weights.flat();
    auto v = y.flat();
    for (std::size_t i = 0; i < v.size(); ++i) acc += w[i] * v[i];
    return acc;
  }
  nn::Matrix grad() const { return weights; }
};

/// Central-difference gradient check on a layer's input gradient and on
/// every parameter gradient.
void check_layer_gradients(nn::Layer& layer, nn::Matrix input,
                           float tol = 2e-2f) {
  nn::Matrix out = layer.forward(input);
  ProbeLoss loss{random_matrix(out.rows(), out.cols(), 999)};

  for (nn::Param* p : layer.params()) p->zero_grad();
  layer.forward(input);
  const nn::Matrix grad_in = layer.backward(loss.grad());

  const float eps = 1e-2f;
  // Input gradient (sample a few entries).
  for (std::size_t idx = 0; idx < std::min<std::size_t>(input.size(), 12);
       ++idx) {
    auto flat = input.flat();
    const float orig = flat[idx];
    flat[idx] = orig + eps;
    const float up = loss.value(layer.forward(input));
    flat[idx] = orig - eps;
    const float down = loss.value(layer.forward(input));
    flat[idx] = orig;
    const float numeric = (up - down) / (2.0f * eps);
    EXPECT_NEAR(grad_in.flat()[idx], numeric,
                tol * std::max(1.0f, std::abs(numeric)))
        << "input grad " << idx;
  }
  // Parameter gradients: recompute analytic grads on the original input.
  for (nn::Param* p : layer.params()) p->zero_grad();
  layer.forward(input);
  layer.backward(loss.grad());
  for (nn::Param* p : layer.params()) {
    for (std::size_t idx = 0;
         idx < std::min<std::size_t>(p->value.size(), 10); ++idx) {
      const float analytic = p->grad.flat()[idx];
      const float orig = p->value.flat()[idx];
      p->value.flat()[idx] = orig + eps;
      const float up = loss.value(layer.forward(input));
      p->value.flat()[idx] = orig - eps;
      const float down = loss.value(layer.forward(input));
      p->value.flat()[idx] = orig;
      const float numeric = (up - down) / (2.0f * eps);
      EXPECT_NEAR(analytic, numeric, tol * std::max(1.0f, std::abs(numeric)))
          << p->name << " grad " << idx;
    }
  }
}

}  // namespace

// ------------------------------------------------------------------ matrix

TEST(Matrix, MatmulKnownValues) {
  nn::Matrix a(2, 3);
  nn::Matrix b(3, 2);
  float v = 1.0f;
  for (auto& x : a.flat()) x = v++;
  v = 1.0f;
  for (auto& x : b.flat()) x = v++;
  const nn::Matrix c = a.matmul(b);
  // [[1,2,3],[4,5,6]] * [[1,2],[3,4],[5,6]] = [[22,28],[49,64]]
  EXPECT_EQ(c(0, 0), 22.0f);
  EXPECT_EQ(c(0, 1), 28.0f);
  EXPECT_EQ(c(1, 0), 49.0f);
  EXPECT_EQ(c(1, 1), 64.0f);
}

TEST(Matrix, TransposedVariantsAgree) {
  const nn::Matrix a = random_matrix(4, 5, 1);
  const nn::Matrix b = random_matrix(4, 3, 2);
  const nn::Matrix c = random_matrix(6, 5, 3);
  // a^T * b via transposed_matmul == a.transposed().matmul(b).
  const nn::Matrix r1 = a.transposed_matmul(b);
  const nn::Matrix r2 = a.transposed().matmul(b);
  ASSERT_TRUE(r1.same_shape(r2));
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_NEAR(r1.flat()[i], r2.flat()[i], 1e-5f);
  }
  // a * c^T via matmul_transposed == a.matmul(c.transposed()).
  const nn::Matrix r3 = a.matmul_transposed(c);
  const nn::Matrix r4 = a.matmul(c.transposed());
  ASSERT_TRUE(r3.same_shape(r4));
  for (std::size_t i = 0; i < r3.size(); ++i) {
    EXPECT_NEAR(r3.flat()[i], r4.flat()[i], 1e-5f);
  }
}

TEST(Matrix, ShapeMismatchThrows) {
  nn::Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a.matmul(b), std::invalid_argument);
  nn::Matrix c(4, 4);
  EXPECT_THROW(a += c, std::invalid_argument);
  EXPECT_THROW(a.at(5, 0), std::out_of_range);
}

// ----------------------------------------------------------------- softmax

TEST(Softmax, SumsToOneAndOrdersByLogit) {
  std::vector<float> logits = {1.0f, 3.0f, 2.0f};
  nn::softmax_inplace(logits);
  EXPECT_NEAR(logits[0] + logits[1] + logits[2], 1.0f, 1e-6f);
  EXPECT_GT(logits[1], logits[2]);
  EXPECT_GT(logits[2], logits[0]);
}

TEST(Softmax, StableForHugeLogits) {
  std::vector<float> logits = {1000.0f, 1001.0f};
  nn::softmax_inplace(logits);
  EXPECT_FALSE(std::isnan(logits[0]));
  EXPECT_NEAR(logits[0] + logits[1], 1.0f, 1e-6f);
}

TEST(Loss, CrossEntropyGradientIsPMinusOneHot) {
  nn::Matrix logits(1, 4);
  logits(0, 0) = 0.5f;
  logits(0, 1) = -1.0f;
  logits(0, 2) = 2.0f;
  logits(0, 3) = 0.0f;
  const auto probs = nn::softmax_probs(logits);
  const auto res = nn::softmax_cross_entropy(logits, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    const float expected = probs[i] - (i == 2 ? 1.0f : 0.0f);
    EXPECT_NEAR(res.grad(0, i), expected, 1e-6f);
  }
  EXPECT_NEAR(res.loss, -std::log(probs[2]), 1e-6f);
}

TEST(Loss, RejectsBadTarget) {
  nn::Matrix logits(1, 3);
  EXPECT_THROW(nn::softmax_cross_entropy(logits, 3), std::invalid_argument);
}

// ---------------------------------------------------------- gradient checks

TEST(GradCheck, Dense) {
  std::mt19937 rng(10);
  nn::Dense layer(6, 4, rng);
  check_layer_gradients(layer, random_matrix(3, 6, 11));
}

TEST(GradCheck, ActivationTanh) {
  nn::Activation layer(nn::ActKind::kTanh);
  check_layer_gradients(layer, random_matrix(2, 5, 12));
}

TEST(GradCheck, ActivationSigmoid) {
  nn::Activation layer(nn::ActKind::kSigmoid);
  check_layer_gradients(layer, random_matrix(2, 5, 13));
}

TEST(GradCheck, Conv1D) {
  std::mt19937 rng(14);
  nn::Conv1D layer(3, 4, 3, rng);
  check_layer_gradients(layer, random_matrix(8, 3, 15));
}

TEST(GradCheck, Lstm) {
  std::mt19937 rng(16);
  nn::Lstm layer(3, 4, rng);
  check_layer_gradients(layer, random_matrix(6, 3, 17), 4e-2f);
}

TEST(GradCheck, Gru) {
  std::mt19937 rng(61);
  nn::Gru layer(3, 4, rng);
  check_layer_gradients(layer, random_matrix(6, 3, 62), 4e-2f);
}

TEST(GradCheck, MeanOverTime) {
  nn::MeanOverTime layer;
  check_layer_gradients(layer, random_matrix(5, 4, 18));
}

TEST(GradCheck, LastTimestep) {
  nn::LastTimestep layer;
  check_layer_gradients(layer, random_matrix(5, 4, 19));
}

TEST(GradCheck, Flatten) {
  nn::Flatten layer;
  check_layer_gradients(layer, random_matrix(3, 4, 20));
}

TEST(GradCheck, StackedNetworkEndToEnd) {
  // Full-pipeline gradient check through Dense->ReLU->Dense with the
  // cross-entropy loss, validating Sequential::backward composition.
  std::mt19937 rng(21);
  nn::Sequential model;
  model.add(std::make_unique<nn::Flatten>())
      .add(std::make_unique<nn::Dense>(12, 8, rng))
      .add(std::make_unique<nn::Activation>(nn::ActKind::kTanh))
      .add(std::make_unique<nn::Dense>(8, 3, rng));
  nn::Matrix input = random_matrix(3, 4, 22);

  auto loss_of = [&] {
    return nn::softmax_cross_entropy(model.forward(input), 1).loss;
  };
  for (nn::Param* p : model.params()) p->zero_grad();
  const auto lr = nn::softmax_cross_entropy(model.forward(input), 1);
  model.backward(lr.grad);

  const float eps = 1e-2f;
  for (nn::Param* p : model.params()) {
    for (std::size_t idx = 0; idx < std::min<std::size_t>(p->value.size(), 6);
         ++idx) {
      const float analytic = p->grad.flat()[idx];
      const float orig = p->value.flat()[idx];
      p->value.flat()[idx] = orig + eps;
      const float up = loss_of();
      p->value.flat()[idx] = orig - eps;
      const float down = loss_of();
      p->value.flat()[idx] = orig;
      const float numeric = (up - down) / (2.0f * eps);
      EXPECT_NEAR(analytic, numeric, 2e-2f * std::max(1.0f, std::abs(numeric)))
          << p->name << "[" << idx << "]";
    }
  }
}

// --------------------------------------------------------------- optimizers

TEST(Optimizer, SgdConvergesOnQuadratic) {
  // Minimize ||w - t||^2 by feeding grad = 2(w - t).
  nn::Param w("w", 1, 4);
  const float target[4] = {1.0f, -2.0f, 0.5f, 3.0f};
  nn::Sgd opt(0.1f);
  for (int it = 0; it < 200; ++it) {
    for (std::size_t i = 0; i < 4; ++i) {
      w.grad(0, i) = 2.0f * (w.value(0, i) - target[i]);
    }
    opt.step({&w});
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(w.value(0, i), target[i], 1e-3f);
  }
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  nn::Param w("w", 1, 4);
  const float target[4] = {1.0f, -2.0f, 0.5f, 3.0f};
  nn::Adam opt(0.05f);
  for (int it = 0; it < 500; ++it) {
    for (std::size_t i = 0; i < 4; ++i) {
      w.grad(0, i) = 2.0f * (w.value(0, i) - target[i]);
    }
    opt.step({&w});
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(w.value(0, i), target[i], 1e-2f);
  }
}

TEST(Optimizer, StepZeroesGradients) {
  nn::Param w("w", 2, 2);
  w.grad.fill(1.0f);
  nn::Sgd opt(0.1f);
  opt.step({&w});
  for (float g : w.grad.flat()) EXPECT_EQ(g, 0.0f);
}

TEST(Optimizer, ClipGradientsScalesToNorm) {
  nn::Param w("w", 1, 3);
  w.grad(0, 0) = 3.0f;
  w.grad(0, 1) = 4.0f;  // norm 5
  const float pre = nn::clip_gradients({&w}, 1.0f);
  EXPECT_NEAR(pre, 5.0f, 1e-5f);
  EXPECT_NEAR(w.grad(0, 0), 0.6f, 1e-5f);
  EXPECT_NEAR(w.grad(0, 1), 0.8f, 1e-5f);
}

// ----------------------------------------------------------------- training

TEST(Training, LearnsSeparableSequenceTask) {
  // Class 0: rising ramp; class 1: falling ramp; class 2: flat + noise.
  std::mt19937 rng(30);
  std::normal_distribution<float> noise(0.0f, 0.1f);
  nn::Dataset data;
  for (int n = 0; n < 90; ++n) {
    nn::Sample s;
    s.label = static_cast<std::size_t>(n % 3);
    s.features = nn::Matrix(10, 2);
    for (std::size_t t = 0; t < 10; ++t) {
      const float x = static_cast<float>(t) / 10.0f;
      const float base = s.label == 0 ? x : (s.label == 1 ? 1.0f - x : 0.5f);
      s.features(t, 0) = base + noise(rng);
      s.features(t, 1) = -base + noise(rng);
    }
    data.push_back(std::move(s));
  }
  nn::Dataset train_set, test_set;
  nn::split_dataset(data, 0.3, 1, train_set, test_set);

  std::mt19937 mrng(31);
  nn::Sequential model;
  model.add(std::make_unique<nn::Lstm>(2, 8, mrng))
      .add(std::make_unique<nn::LastTimestep>())
      .add(std::make_unique<nn::Dense>(8, 3, mrng));
  nn::TrainConfig cfg;
  cfg.epochs = 40;
  cfg.batch_size = 8;
  cfg.learning_rate = 1e-2f;
  nn::train(model, train_set, cfg);
  const auto ev = nn::evaluate(model, test_set, 3);
  EXPECT_GT(ev.accuracy, 0.9) << "LSTM failed to learn a separable task";
}

TEST(Training, LossDecreasesOverEpochs) {
  std::mt19937 rng(32);
  nn::Dataset data;
  for (int n = 0; n < 40; ++n) {
    nn::Sample s;
    s.label = static_cast<std::size_t>(n % 2);
    s.features = random_matrix(4, 3, static_cast<unsigned>(100 + n));
    s.features(0, 0) = s.label ? 2.0f : -2.0f;
    data.push_back(std::move(s));
  }
  std::mt19937 mrng(33);
  nn::Sequential model;
  model.add(std::make_unique<nn::Flatten>())
      .add(std::make_unique<nn::Dense>(12, 8, mrng))
      .add(std::make_unique<nn::Activation>(nn::ActKind::kReLU))
      .add(std::make_unique<nn::Dense>(8, 2, mrng));
  std::vector<float> losses;
  nn::TrainConfig cfg;
  cfg.epochs = 15;
  cfg.learning_rate = 5e-3f;
  cfg.on_epoch = [&](std::size_t, float l) { losses.push_back(l); };
  nn::train(model, data, cfg);
  ASSERT_EQ(losses.size(), 15u);
  EXPECT_LT(losses.back(), losses.front() * 0.5f);
}

TEST(Training, ConfusionMatrixRowsSumToClassCounts) {
  nn::Dataset data;
  for (int n = 0; n < 30; ++n) {
    nn::Sample s;
    s.label = static_cast<std::size_t>(n % 3);
    s.features = random_matrix(2, 2, static_cast<unsigned>(n));
    data.push_back(std::move(s));
  }
  std::mt19937 mrng(34);
  nn::Sequential model;
  model.add(std::make_unique<nn::Flatten>())
      .add(std::make_unique<nn::Dense>(4, 3, mrng));
  const auto ev = nn::evaluate(model, data, 3);
  for (std::size_t truth = 0; truth < 3; ++truth) {
    std::size_t row = 0;
    for (std::size_t pred = 0; pred < 3; ++pred) {
      row += ev.confusion[truth][pred];
    }
    EXPECT_EQ(row, 10u);
  }
}

TEST(Training, SplitIsDisjointAndComplete) {
  nn::Dataset data(50);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i].features = nn::Matrix(1, 1, static_cast<float>(i));
  }
  nn::Dataset a, b;
  nn::split_dataset(data, 0.3, 7, a, b);
  EXPECT_EQ(a.size() + b.size(), data.size());
  EXPECT_FALSE(a.empty());
  EXPECT_FALSE(b.empty());
}

TEST(Training, GruLearnsSeparableSequenceTask) {
  std::mt19937 rng(63);
  std::normal_distribution<float> noise(0.0f, 0.1f);
  nn::Dataset data;
  for (int n = 0; n < 60; ++n) {
    nn::Sample s;
    s.label = static_cast<std::size_t>(n % 2);
    s.features = nn::Matrix(10, 2);
    for (std::size_t t = 0; t < 10; ++t) {
      const float x = static_cast<float>(t) / 10.0f;
      const float base = s.label == 0 ? x : 1.0f - x;
      s.features(t, 0) = base + noise(rng);
      s.features(t, 1) = -base + noise(rng);
    }
    data.push_back(std::move(s));
  }
  nn::Dataset train_set, test_set;
  nn::split_dataset(data, 0.3, 1, train_set, test_set);
  std::mt19937 mrng(64);
  nn::Sequential model;
  model.add(std::make_unique<nn::Gru>(2, 8, mrng))
      .add(std::make_unique<nn::LastTimestep>())
      .add(std::make_unique<nn::Dense>(8, 2, mrng));
  nn::TrainConfig cfg;
  cfg.epochs = 40;
  cfg.batch_size = 8;
  cfg.learning_rate = 1e-2f;
  nn::train(model, train_set, cfg);
  EXPECT_GT(nn::evaluate(model, test_set, 2).accuracy, 0.9);
}

TEST(GruModel, SmallerThanLstmSameLayout) {
  nn::ClassifierSpec spec{17, 64, 7};
  std::mt19937 rng(65);
  auto gru = nn::build_gru(spec, rng);
  auto lstm = nn::build_lstm(spec, rng);
  EXPECT_LT(gru.param_count(), lstm.param_count());
  // GRU carries 3 gate blocks vs the LSTM's 4.
  EXPECT_NEAR(static_cast<double>(gru.param_count()),
              0.75 * static_cast<double>(lstm.param_count()),
              0.05 * static_cast<double>(lstm.param_count()));
}

// ----------------------------------------------------------------- dropout

TEST(Dropout, InferenceModeIsIdentity) {
  nn::Dropout layer(0.5f, 1);
  layer.set_training(false);
  const nn::Matrix x = random_matrix(4, 4, 66);
  const nn::Matrix y = layer.forward(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(y.flat()[i], x.flat()[i]);
  }
}

TEST(Dropout, TrainingPreservesExpectedValue) {
  nn::Dropout layer(0.3f, 2);
  nn::Matrix x(1, 10000, 1.0f);
  const nn::Matrix y = layer.forward(x);
  double mean = 0.0;
  std::size_t zeros = 0;
  for (float v : y.flat()) {
    mean += v;
    zeros += v == 0.0f;
  }
  mean /= static_cast<double>(y.size());
  EXPECT_NEAR(mean, 1.0, 0.05);  // inverted scaling keeps E[y] = E[x]
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(y.size()), 0.3,
              0.03);
}

TEST(Dropout, BackwardUsesSameMask) {
  nn::Dropout layer(0.5f, 3);
  nn::Matrix x(1, 100, 1.0f);
  const nn::Matrix y = layer.forward(x);
  nn::Matrix g(1, 100, 1.0f);
  const nn::Matrix gx = layer.backward(g);
  for (std::size_t i = 0; i < y.size(); ++i) {
    // Gradient flows exactly where the activation survived.
    EXPECT_EQ(gx.flat()[i] == 0.0f, y.flat()[i] == 0.0f);
  }
}

TEST(Dropout, RejectsBadRate) {
  EXPECT_THROW(nn::Dropout(1.0f, 1), std::invalid_argument);
  EXPECT_THROW(nn::Dropout(-0.1f, 1), std::invalid_argument);
}

TEST(Dropout, SetTrainingModeTogglesWholeModel) {
  std::mt19937 rng(67);
  nn::Sequential model;
  model.add(std::make_unique<nn::Dense>(4, 4, rng))
      .add(std::make_unique<nn::Dropout>(0.5f, 4))
      .add(std::make_unique<nn::Dense>(4, 2, rng));
  nn::set_training_mode(model, false);
  const nn::Matrix x = random_matrix(1, 4, 68);
  const nn::Matrix a = model.forward(x);
  const nn::Matrix b = model.forward(x);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.flat()[i], b.flat()[i]);  // deterministic at inference
  }
}

// ------------------------------------------------------------- quantization

TEST(Quantize, ErrorBoundedByHalfScale) {
  const nn::Matrix m = random_matrix(16, 16, 40);
  float mx = 0.0f;
  for (float v : m.flat()) mx = std::max(mx, std::abs(v));
  const float scale = mx / 127.0f;
  EXPECT_LE(nn::max_quantization_error(m, nn::QuantGranularity::kPerTensor),
            scale * 0.5f + 1e-7f);
}

TEST(Quantize, PerChannelNeverWorseThanPerTensor) {
  // Make channel magnitudes wildly different so per-channel scales win.
  nn::Matrix m = random_matrix(8, 4, 41);
  for (std::size_t r = 0; r < 8; ++r) {
    m(r, 0) *= 100.0f;
    m(r, 3) *= 0.01f;
  }
  const float e_tensor =
      nn::max_quantization_error(m, nn::QuantGranularity::kPerTensor);
  const float e_channel =
      nn::max_quantization_error(m, nn::QuantGranularity::kPerChannel);
  EXPECT_LE(e_channel, e_tensor);
}

TEST(Quantize, ModelShrinksToRoughlyQuarterSize) {
  std::mt19937 rng(42);
  nn::ClassifierSpec spec{8, 16, 4};
  nn::Sequential model = nn::build_mlp(spec, rng);
  const std::size_t fp32 = model.weight_bytes(4);
  const std::size_t int8 =
      nn::quantize_model_inplace(model, nn::QuantGranularity::kPerTensor);
  EXPECT_LT(int8, fp32 / 3);
  EXPECT_GT(int8, fp32 / 5);
}

TEST(Quantize, ZeroTensorSurvives) {
  nn::Matrix z(4, 4, 0.0f);
  const auto q = nn::quantize_tensor(z, nn::QuantGranularity::kPerTensor);
  const auto back = q.dequantize();
  for (float v : back.flat()) EXPECT_EQ(v, 0.0f);
}

// ------------------------------------------------- int8 activation path

TEST(QuantizeRows, ZeroRangeRowGetsScaleZeroAndZeroValues) {
  // Row 1 is all-zero: the defined behaviour is scale 0 / values 0 so
  // the dequantized round trip is exact (0 * 0 == 0), never a div-by-0.
  nn::Matrix m(3, 40, 0.0f);
  for (std::size_t c = 0; c < 40; ++c) {
    m(0, c) = 0.25f * static_cast<float>(c);
    m(2, c) = -1.0f;
  }
  nn::RowQuantized q;
  nn::quantize_rows_into(m, q);
  EXPECT_EQ(q.scales[1], 0.0f);
  for (std::size_t c = 0; c < 40; ++c) {
    EXPECT_EQ(q.values[1 * 40 + c], 0) << "col " << c;
  }
  // Non-zero rows still have non-zero scales.
  EXPECT_GT(q.scales[0], 0.0f);
  EXPECT_GT(q.scales[2], 0.0f);
}

TEST(QuantizeRows, RowExtremesSaturateAtPlusMinus127) {
  // The max-|v| element must land exactly on +-127 (symmetric scheme),
  // and nothing may exceed it — including through the vectorized path,
  // so use a row long enough to exercise the 32-wide kernel.
  nn::Matrix m(1, 70);
  for (std::size_t c = 0; c < 70; ++c) {
    m(0, c) = 0.01f * static_cast<float>(c) - 0.3f;
  }
  m(0, 13) = 5.0f;    // positive extreme
  m(0, 57) = -5.0f;   // negative extreme, same magnitude
  nn::RowQuantized q;
  nn::quantize_rows_into(m, q);
  EXPECT_EQ(q.values[13], 127);
  EXPECT_EQ(q.values[57], -127);
  for (std::size_t c = 0; c < 70; ++c) {
    EXPECT_GE(static_cast<int>(q.values[c]), -127);
    EXPECT_LE(static_cast<int>(q.values[c]), 127);
  }
  EXPECT_NEAR(q.scales[0], 5.0f / 127.0f, 1e-7f);
}

TEST(QuantizeRows, VectorAndTailElementsAgree) {
  // Identical values placed in the 32-wide vector body and in the
  // scalar tail must quantize identically (same nearest-even rounding);
  // 37 columns puts cols 32..36 in the tail.
  nn::Matrix m(1, 37);
  for (std::size_t c = 0; c < 37; ++c) {
    m(0, c) = (c % 2 ? -1.0f : 1.0f) * 0.11f * static_cast<float>(c % 5);
  }
  m(0, 3) = 2.0f;  // pin the scale
  m(0, 35) = m(0, 2);
  m(0, 36) = m(0, 4);
  nn::RowQuantized q;
  nn::quantize_rows_into(m, q);
  EXPECT_EQ(q.values[35], q.values[2]);
  EXPECT_EQ(q.values[36], q.values[4]);
}

TEST(Int8Gemm, MatchesReferenceExactlyOnBlockTails) {
  // Integer accumulation is order-independent, so the optimized kernel
  // must be memcmp-equal to the reference — including every
  // non-multiple-of-block tail (row block 4, col block 16, k pairs).
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{1, 1, 1},  {3, 5, 7},   {4, 64, 16},  {5, 63, 17},
                {7, 2, 33}, {16, 33, 1}, {13, 129, 47}};
  for (const auto& s : shapes) {
    std::vector<std::int8_t> a(s.m * s.k), b(s.k * s.n);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<std::int8_t>(static_cast<int>((i * 37) % 255) - 127);
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = static_cast<std::int8_t>(static_cast<int>((i * 23) % 255) - 127);
    }
    std::vector<std::int32_t> opt(s.m * s.n, -1), ref(s.m * s.n, -2);
    nn::int8_gemm(a.data(), b.data(), opt.data(), s.m, s.k, s.n);
    nn::int8_gemm_reference(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
    EXPECT_EQ(0, std::memcmp(opt.data(), ref.data(),
                             opt.size() * sizeof(std::int32_t)))
        << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(QuantizedMlp, ForwardTracksFp32Model) {
  std::mt19937 rng(77);
  nn::ClassifierSpec spec{17, 64, 4};
  nn::Sequential model = nn::build_mlp(spec, rng);
  auto q = nn::QuantizedMlp::from(model);
  ASSERT_TRUE(q.has_value());
  ASSERT_EQ(q->input_features(), 17 * 64);

  // A batch of flattened windows for the int8 path; the fp32 model sees
  // each window unflattened (T x C), one sample per forward.
  constexpr std::size_t kBatch = 6;
  nn::Matrix x(kBatch, 17 * 64);
  nn::QuantWorkspace ws;
  float scale = 0.0f;
  std::vector<nn::Matrix> want;
  for (std::size_t s = 0; s < kBatch; ++s) {
    const nn::Matrix sample = random_matrix(64, 17, 78 + unsigned(s));
    for (std::size_t i = 0; i < sample.size(); ++i) {
      x(s, i) = sample.flat()[i];
    }
    want.push_back(model.forward(sample));
    for (float v : want.back().flat()) scale = std::max(scale, std::abs(v));
  }
  const nn::Matrix& got = q->forward(x, ws);
  ASSERT_EQ(got.rows(), kBatch);
  ASSERT_EQ(got.cols(), want.front().cols());
  for (std::size_t s = 0; s < kBatch; ++s) {
    for (std::size_t c = 0; c < got.cols(); ++c) {
      EXPECT_NEAR(got(s, c), want[s].flat()[c], 0.05f * scale)
          << "sample " << s << " logit " << c;
    }
  }
}

TEST(QuantizedMlp, BatchedAndSingleRowForwardsAgreeExactly) {
  // Per-row activation scales make each batch row independent — the
  // batcher's homogeneity contract for the int8 rung.
  std::mt19937 rng(79);
  nn::ClassifierSpec spec{17, 64, 4};
  nn::Sequential model = nn::build_mlp(spec, rng);
  auto q = nn::QuantizedMlp::from(model);
  ASSERT_TRUE(q.has_value());

  const nn::Matrix x = random_matrix(5, 17 * 64, 80);
  nn::QuantWorkspace ws;
  nn::Matrix batched = q->forward(x, ws);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    nn::Matrix one(1, x.cols());
    for (std::size_t c = 0; c < x.cols(); ++c) one(0, c) = x(r, c);
    nn::QuantWorkspace ws1;
    const nn::Matrix& single = q->forward(one, ws1);
    for (std::size_t c = 0; c < batched.cols(); ++c) {
      EXPECT_EQ(single(0, c), batched(r, c)) << "row " << r << " col " << c;
    }
  }
}

TEST(TruncateMantissa, ZeroBitsIsByteIdentityAndTruncationIsIdempotent) {
  std::vector<float> v = {1.5f, -0.001f, 3.14159f, 1e30f, -1e-30f, 0.0f};
  std::vector<float> orig = v;
  nn::truncate_mantissa(v, 0);
  EXPECT_EQ(0, std::memcmp(v.data(), orig.data(), v.size() * sizeof(float)));
  nn::truncate_mantissa(v, 8);
  std::vector<float> once = v;
  nn::truncate_mantissa(v, 8);
  EXPECT_EQ(0, std::memcmp(v.data(), once.data(), v.size() * sizeof(float)));
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_LE(std::abs(v[i] - orig[i]), std::abs(orig[i]) * 0.01f) << i;
  }
}

// ------------------------------------------------------------ serialization

TEST(Serialize, RoundTripsAllArchitectures) {
  nn::ClassifierSpec spec{6, 16, 5};
  for (auto kind :
       {nn::ModelKind::kMlp, nn::ModelKind::kCnn, nn::ModelKind::kLstm}) {
    std::mt19937 rng(50);
    nn::Sequential model = nn::build_model(kind, spec, rng);
    const nn::Matrix input = random_matrix(16, 6, 51);
    const nn::Matrix before = model.forward(input);

    std::stringstream ss;
    model.save(ss);
    nn::Sequential loaded = nn::Sequential::load(ss);
    const nn::Matrix after = loaded.forward(input);

    ASSERT_TRUE(before.same_shape(after));
    for (std::size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ(before.flat()[i], after.flat()[i])
          << nn::model_kind_name(kind) << " output " << i;
    }
    EXPECT_EQ(model.param_count(), loaded.param_count());
  }
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream ss;
  ss << "not a model";
  EXPECT_THROW(nn::Sequential::load(ss), std::runtime_error);
}

// --------------------------------------------------------- paper geometries

TEST(PaperModels, ParameterCountsMatchFig3c) {
  // 17 features x 64 timesteps is the default affect feature geometry.
  nn::ClassifierSpec spec{17, 64, 7};
  std::mt19937 rng(60);
  auto mlp = nn::build_mlp(spec, rng);
  auto cnn = nn::build_cnn(spec, rng);
  auto lstm = nn::build_lstm(spec, rng);
  // Paper: MLP ~508k, CNN ~649k, LSTM ~429k trainable parameters.
  EXPECT_NEAR(static_cast<double>(mlp.param_count()), 508000.0, 30000.0);
  EXPECT_NEAR(static_cast<double>(cnn.param_count()), 649000.0, 40000.0);
  EXPECT_NEAR(static_cast<double>(lstm.param_count()), 429000.0, 25000.0);
  // Size ordering of Fig 3(c): CNN > MLP > LSTM.
  EXPECT_GT(cnn.param_count(), mlp.param_count());
  EXPECT_GT(mlp.param_count(), lstm.param_count());
}
