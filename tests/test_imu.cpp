// Tests for the IMU channel: activity synthesis/classification and PPG
// motion-artifact gating.
#include <gtest/gtest.h>

#include "affect/imu.hpp"
#include "affect/ppg.hpp"

namespace affect = affectsys::affect;

namespace {

affect::ActivityTimeline three_phase() {
  affect::ActivityTimeline tl;
  tl.segments = {{0.0, 120.0, affect::ActivityState::kStill},
                 {120.0, 240.0, affect::ActivityState::kWalking},
                 {240.0, 360.0, affect::ActivityState::kRunning}};
  return tl;
}

}  // namespace

TEST(Imu, TimelineLookup) {
  const auto tl = three_phase();
  EXPECT_EQ(tl.at(10.0), affect::ActivityState::kStill);
  EXPECT_EQ(tl.at(130.0), affect::ActivityState::kWalking);
  EXPECT_EQ(tl.at(350.0), affect::ActivityState::kRunning);
  EXPECT_EQ(tl.at(9999.0), affect::ActivityState::kRunning);
}

TEST(Imu, GaitIntensityOrdersActivities) {
  EXPECT_EQ(affect::gait_profile(affect::ActivityState::kStill).amplitude_g,
            0.0);
  EXPECT_LT(affect::gait_profile(affect::ActivityState::kWalking).amplitude_g,
            affect::gait_profile(affect::ActivityState::kRunning).amplitude_g);
}

TEST(Imu, ActivityClassificationPerSegment) {
  affect::ImuConfig cfg;
  affect::ImuGenerator gen(cfg);
  const auto tl = three_phase();
  const auto imu = gen.generate(tl);
  const auto win = static_cast<std::size_t>(10.0 * cfg.sample_rate_hz);
  std::size_t correct = 0, total = 0;
  for (std::size_t start = 0; start + win <= imu.size(); start += win) {
    const double t = static_cast<double>(start) / cfg.sample_rate_hz;
    correct += affect::classify_activity({imu.data() + start, win}) ==
               tl.at(t);
    ++total;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.9);
}

TEST(Imu, ArtifactsDegradeBeatDetectionAndGatingRecovers) {
  // PPG for a neutral session; running for the middle third.
  affect::EmotionTimeline etl;
  etl.segments = {{0.0, 360.0, affect::Emotion::kNeutral}};
  affect::PpgConfig pcfg;
  pcfg.noise = 0.01;
  affect::PpgGenerator pgen(pcfg);
  auto clean = pgen.generate(etl);
  auto dirty = clean;
  affect::ActivityTimeline atl;
  atl.segments = {{0.0, 120.0, affect::ActivityState::kStill},
                  {120.0, 240.0, affect::ActivityState::kRunning},
                  {240.0, 360.0, affect::ActivityState::kStill}};
  affect::add_motion_artifacts(dirty, pcfg.sample_rate_hz, atl, 0.8);

  const auto expected_hr =
      affect::cardio_profile(affect::Emotion::kNeutral).mean_hr_bpm;
  auto hr_error_in = [&](const std::vector<double>& ppg, double t0,
                         double t1) {
    const auto b = static_cast<std::size_t>(t0 * pcfg.sample_rate_hz);
    const auto e = static_cast<std::size_t>(t1 * pcfg.sample_rate_hz);
    const auto beats =
        affect::detect_beats({ppg.data() + b, e - b}, pcfg.sample_rate_hz);
    return std::abs(affect::hrv_features(beats).mean_hr_bpm - expected_hr);
  };

  // The artifacted (running) span measures HR much worse than clean spans.
  const double err_dirty = hr_error_in(dirty, 130.0, 230.0);
  const double err_clean_span = hr_error_in(dirty, 10.0, 110.0);
  EXPECT_GT(err_dirty, err_clean_span + 3.0);

  // Gating: classify activity from the IMU and keep only still windows.
  affect::ImuConfig icfg;
  affect::ImuGenerator igen(icfg);
  const auto imu = igen.generate(atl);
  const auto iwin = static_cast<std::size_t>(30.0 * icfg.sample_rate_hz);
  double worst_gated_error = 0.0;
  for (std::size_t start = 0; start + iwin <= imu.size(); start += iwin) {
    const double t = static_cast<double>(start) / icfg.sample_rate_hz;
    if (affect::classify_activity({imu.data() + start, iwin}) !=
        affect::ActivityState::kStill) {
      continue;  // gated out
    }
    worst_gated_error =
        std::max(worst_gated_error, hr_error_in(dirty, t, t + 30.0));
  }
  // Every window that survives the gate measures HR accurately.
  EXPECT_LT(worst_gated_error, err_dirty);
  EXPECT_LT(worst_gated_error, 8.0);
}
