// Parameterized property sweeps across module boundaries: determinism,
// quantization behaviour over model kinds, codec round trips over QP, and
// selector arithmetic over (S_th, f) grids.
#include <gtest/gtest.h>

#include <random>

#include "adaptive/input_selector.hpp"
#include "h264/decoder.hpp"
#include "h264/encoder.hpp"
#include "h264/quality.hpp"
#include "h264/testvideo.hpp"
#include "nn/quantize.hpp"
#include "nn/trainer.hpp"

namespace nn = affectsys::nn;
namespace h264 = affectsys::h264;
namespace adaptive = affectsys::adaptive;

// ------------------------------------------------- NN determinism & kinds

class ModelKindSweep : public ::testing::TestWithParam<nn::ModelKind> {};

TEST_P(ModelKindSweep, TrainingIsDeterministicForFixedSeeds) {
  auto build_and_train = [&] {
    nn::Dataset data;
    std::mt19937 drng(7);
    std::normal_distribution<float> noise(0.0f, 0.2f);
    for (int n = 0; n < 24; ++n) {
      nn::Sample s;
      s.label = static_cast<std::size_t>(n % 2);
      s.features = nn::Matrix(8, 4);
      for (auto& v : s.features.flat()) {
        v = noise(drng) + (s.label ? 0.5f : -0.5f);
      }
      data.push_back(std::move(s));
    }
    std::mt19937 rng(3);
    nn::ClassifierSpec spec{4, 8, 2};
    nn::Sequential model = nn::build_model(GetParam(), spec, rng);
    nn::TrainConfig tc;
    tc.epochs = 3;
    tc.seed = 3;
    return nn::train(model, data, tc);
  };
  EXPECT_EQ(build_and_train(), build_and_train());
}

TEST_P(ModelKindSweep, QuantizationShrinksAndPreservesOutputShape) {
  std::mt19937 rng(11);
  nn::ClassifierSpec spec{6, 16, 5};
  nn::Sequential model = nn::build_model(GetParam(), spec, rng);
  nn::Matrix input(16, 6);
  std::normal_distribution<float> d(0.0f, 1.0f);
  for (auto& v : input.flat()) v = d(rng);
  const nn::Matrix before = model.forward(input);
  const std::size_t bytes =
      nn::quantize_model_inplace(model, nn::QuantGranularity::kPerChannel);
  const nn::Matrix after = model.forward(input);
  ASSERT_TRUE(before.same_shape(after));
  EXPECT_LT(bytes, model.weight_bytes(4) / 3);
  // Quantized outputs stay close to float outputs.
  float worst = 0.0f;
  float scale = 0.0f;
  for (std::size_t i = 0; i < before.size(); ++i) {
    worst = std::max(worst, std::abs(before.flat()[i] - after.flat()[i]));
    scale = std::max(scale, std::abs(before.flat()[i]));
  }
  EXPECT_LT(worst, 0.25f * std::max(scale, 1.0f));
}

INSTANTIATE_TEST_SUITE_P(Kinds, ModelKindSweep,
                         ::testing::Values(nn::ModelKind::kMlp,
                                           nn::ModelKind::kCnn,
                                           nn::ModelKind::kLstm));

// -------------------------------------------------------- codec QP sweep

class QpRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(QpRoundTrip, QualityDegradesGracefullyWithQp) {
  const int qp = GetParam();
  h264::VideoConfig vc{64, 64, 6, 1.0, 0.5, 1.0, 9};
  const auto video = h264::generate_test_video(vc);
  h264::EncoderConfig ec{64, 64, qp, 6, 1, 4, true, true, true};
  h264::Encoder enc(ec);
  h264::Decoder dec;
  auto display = h264::assemble_display_sequence(
      dec.decode_annexb(enc.encode_annexb(video)),
      static_cast<int>(video.size()));
  ASSERT_EQ(display.size(), video.size());
  std::vector<h264::YuvFrame> frames;
  for (auto& p : display) frames.push_back(std::move(p.frame));
  const double psnr = h264::sequence_psnr(video, frames);
  // Loose per-QP floors: ~ -0.5 dB/QP from a 50 dB anchor.
  EXPECT_GT(psnr, 50.0 - 0.7 * qp) << "qp " << qp;
}

INSTANTIATE_TEST_SUITE_P(Qps, QpRoundTrip,
                         ::testing::Values(12, 18, 24, 30, 36, 42));

// ------------------------------------------------- selector (S_th, f) grid

class SelectorGrid
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>> {};

TEST_P(SelectorGrid, DeletionCountFollowsCeilFormula) {
  const auto [s_th, f] = GetParam();
  h264::VideoConfig vc{64, 64, 18, 1.2, 0.6, 2.5, 13};
  const auto video = h264::generate_mixed_video(vc, 0.4);
  h264::EncoderConfig ec{64, 64, 24, 9, 2, 4, true, true, true};
  h264::Encoder enc(ec);
  auto units = enc.parameter_sets();
  for (auto& pic : enc.encode(video)) units.push_back(std::move(pic.nal));

  // Count candidates independently.
  std::size_t m = 0;
  for (const auto& nal : units) {
    const auto type = h264::peek_slice_type(nal);
    if (type && *type != h264::SliceType::kI && nal.byte_size() <= s_th) ++m;
  }
  adaptive::InputSelector sel({s_th, f});
  sel.filter(units);
  EXPECT_EQ(sel.stats().candidates, m);
  EXPECT_EQ(sel.stats().deleted, (m + f - 1) / f);
  // The surviving stream still decodes.
  adaptive::InputSelector sel2({s_th, f});
  h264::Decoder dec;
  EXPECT_NO_THROW(dec.decode_annexb(sel2.filter_annexb(h264::pack_annexb(units))));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SelectorGrid,
    ::testing::Combine(::testing::Values<std::size_t>(60, 140, 400),
                       ::testing::Values<unsigned>(1, 2, 3)));

// ------------------------------------------------ encoder config validity

TEST(EncoderConfigSweep, InvalidConfigsRejected) {
  h264::EncoderConfig bad;
  bad.width = 60;  // not a multiple of 16
  EXPECT_THROW(h264::Encoder{bad}, std::invalid_argument);
  bad = {};
  bad.qp = 52;
  EXPECT_THROW(h264::Encoder{bad}, std::invalid_argument);
  bad = {};
  bad.b_frames = 12;
  bad.gop_size = 12;
  EXPECT_THROW(h264::Encoder{bad}, std::invalid_argument);
  bad = {};
  bad.gop_size = 0;
  EXPECT_THROW(h264::Encoder{bad}, std::invalid_argument);
}
