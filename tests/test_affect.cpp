// Tests for the affect domain: emotion taxonomy, circumplex mapping,
// speech synthesis, feature assembly, SCL model and stream smoothing.
#include <gtest/gtest.h>

#include <set>

#include "affect/classifier.hpp"
#include "affect/dataset.hpp"
#include "affect/emotion.hpp"
#include "affect/features.hpp"
#include "affect/scl.hpp"
#include "affect/speech_synth.hpp"
#include "affect/stream.hpp"
#include "signal/features.hpp"

namespace affect = affectsys::affect;
namespace sig = affectsys::signal;

// ----------------------------------------------------------------- emotion

TEST(Emotion, NamesRoundTrip) {
  for (std::size_t i = 0; i < affect::kNumEmotions; ++i) {
    const auto e = static_cast<affect::Emotion>(i);
    const auto back = affect::emotion_from_name(affect::emotion_name(e));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, e);
  }
  EXPECT_FALSE(affect::emotion_from_name("bogus").has_value());
}

TEST(Emotion, CircumplexSignsMatchPsychology) {
  EXPECT_GT(affect::circumplex(affect::Emotion::kHappy).valence, 0.0);
  EXPECT_LT(affect::circumplex(affect::Emotion::kSad).valence, 0.0);
  EXPECT_GT(affect::circumplex(affect::Emotion::kAngry).arousal, 0.0);
  EXPECT_LT(affect::circumplex(affect::Emotion::kSleepy).arousal, 0.0);
  EXPECT_LT(affect::circumplex(affect::Emotion::kFearful).dominance, 0.0);
}

TEST(Emotion, NearestBasicIsIdentityForBasics) {
  for (std::size_t i = 0; i < 8; ++i) {
    const auto e = static_cast<affect::Emotion>(i);
    EXPECT_EQ(affect::nearest_basic_emotion(affect::circumplex(e)), e);
  }
}

TEST(Emotion, MoodAngleQuadrants) {
  // Happy: positive valence & arousal -> first quadrant.
  const double a = affect::mood_angle(affect::circumplex(affect::Emotion::kHappy));
  EXPECT_GT(a, 0.0);
  EXPECT_LT(a, 1.57);
  // Sad: negative valence & arousal -> third quadrant (negative angle).
  const double s = affect::mood_angle(affect::circumplex(affect::Emotion::kSad));
  EXPECT_LT(s, -1.57);
}

TEST(Emotion, AttentionCriticalStates) {
  EXPECT_TRUE(affect::is_attention_critical(affect::Emotion::kConcentrated));
  EXPECT_TRUE(affect::is_attention_critical(affect::Emotion::kTense));
  EXPECT_FALSE(affect::is_attention_critical(affect::Emotion::kRelaxed));
  EXPECT_FALSE(affect::is_attention_critical(affect::Emotion::kSleepy));
}

// -------------------------------------------------------------- synthesizer

TEST(SpeechSynth, EmotionProfilesFollowArousal) {
  const auto angry = affect::emotion_voice_profile(affect::Emotion::kAngry);
  const auto sad = affect::emotion_voice_profile(affect::Emotion::kSad);
  EXPECT_GT(angry.base_pitch_hz, sad.base_pitch_hz);
  EXPECT_GT(angry.energy, sad.energy);
  EXPECT_GT(angry.tempo, sad.tempo);
}

TEST(SpeechSynth, UtteranceHasRequestedLengthAndEnergy) {
  affect::SpeechSynthesizer synth(1);
  const auto utt = synth.synthesize(affect::Emotion::kHappy, 3, 1.5, 16000.0,
                                    0.2);
  EXPECT_EQ(utt.samples.size(), 24000u);
  EXPECT_GT(sig::rms(utt.samples), 0.01);
  EXPECT_EQ(utt.emotion, affect::Emotion::kHappy);
}

TEST(SpeechSynth, AngryLouderAndHigherPitchedThanSad) {
  affect::SpeechSynthesizer synth(2);
  const auto angry =
      synth.synthesize(affect::Emotion::kAngry, 0, 1.5, 16000.0, 0.0);
  const auto sad =
      synth.synthesize(affect::Emotion::kSad, 0, 1.5, 16000.0, 0.0);
  EXPECT_GT(sig::rms(angry.samples), sig::rms(sad.samples));
  // F0: angry ~180 Hz vs sad ~95 Hz.  A low voicing threshold tolerates
  // the inter-syllable pauses diluting the autocorrelation peak.
  const auto f_angry =
      sig::estimate_pitch(angry.samples, 16000.0, 60.0, 400.0, 0.05);
  const auto f_sad =
      sig::estimate_pitch(sad.samples, 16000.0, 60.0, 400.0, 0.05);
  ASSERT_TRUE(f_angry.has_value());
  ASSERT_TRUE(f_sad.has_value());
  EXPECT_GT(*f_angry, *f_sad);
}

TEST(SpeechSynth, SpeakersDifferButAreStable) {
  affect::SpeechSynthesizer s1(3), s2(3);
  const auto a1 = s1.synthesize(affect::Emotion::kNeutral, 1, 1.0, 16000.0, 0.3);
  const auto a2 = s2.synthesize(affect::Emotion::kNeutral, 1, 1.0, 16000.0, 0.3);
  // Same synth seed + speaker -> identical waveform.
  EXPECT_EQ(a1.samples, a2.samples);
}

TEST(SpeechSynth, CorpusProfilesMatchPaperGeometry) {
  EXPECT_EQ(affect::ravdess_profile().num_speakers, 24);
  EXPECT_EQ(affect::ravdess_profile().emotions.size(), 8u);
  EXPECT_EQ(affect::emovo_profile().num_speakers, 6);
  EXPECT_EQ(affect::emovo_profile().emotions.size(), 7u);
  EXPECT_EQ(affect::emovo_profile().utterances_per_speaker_emotion, 14);
  EXPECT_EQ(affect::cremad_profile().num_speakers, 91);
  EXPECT_EQ(affect::cremad_profile().emotions.size(), 6u);
}

TEST(SpeechSynth, CorpusCoversAllLabels) {
  affect::CorpusProfile prof = affect::emovo_profile();
  prof.num_speakers = 2;
  prof.utterances_per_speaker_emotion = 1;
  affect::SpeechSynthesizer synth(4);
  const auto utts = synth.synthesize_corpus(prof);
  EXPECT_EQ(utts.size(), 2u * prof.emotions.size());
  std::set<affect::Emotion> seen;
  for (const auto& u : utts) seen.insert(u.emotion);
  EXPECT_EQ(seen.size(), prof.emotions.size());
}

// ----------------------------------------------------------------- features

TEST(AffectFeatures, ShapeAndStandardization) {
  affect::FeatureConfig fc = affect::default_feature_config();
  affect::FeatureExtractor fx(fc);
  affect::SpeechSynthesizer synth(5);
  const auto utt =
      synth.synthesize(affect::Emotion::kHappy, 0, 1.6, 16000.0, 0.1);
  const auto m = fx.extract(utt.samples);
  EXPECT_EQ(m.rows(), fc.timesteps);
  EXPECT_EQ(m.cols(), fx.feature_dim());
  // Standardized features should be O(1).
  for (float v : m.flat()) {
    EXPECT_LT(std::abs(v), 20.0f);
  }
}

TEST(AffectFeatures, DatasetLabelsAreDense) {
  affect::CorpusProfile prof = affect::emovo_profile();
  prof.num_speakers = 2;
  prof.utterances_per_speaker_emotion = 1;
  affect::FeatureExtractor fx(affect::default_feature_config());
  const auto corpus = affect::build_corpus(prof, fx, 6);
  EXPECT_EQ(corpus.samples.size(), 14u);
  for (const auto& s : corpus.samples) {
    EXPECT_LT(s.label, corpus.num_classes());
  }
}

// ---------------------------------------------------------------------- SCL

TEST(Scl, TimelineLookup) {
  const auto tl = affect::uulmmac_session_timeline();
  EXPECT_EQ(tl.duration_s(), 2400.0);
  EXPECT_EQ(tl.at(0.0), affect::Emotion::kDistracted);
  EXPECT_EQ(tl.at(14.0 * 60.0), affect::Emotion::kConcentrated);
  EXPECT_EQ(tl.at(25.0 * 60.0), affect::Emotion::kTense);
  EXPECT_EQ(tl.at(35.0 * 60.0), affect::Emotion::kRelaxed);
  EXPECT_EQ(tl.at(9999.0), affect::Emotion::kRelaxed);  // clamps
}

TEST(Scl, ScrIntensityGrowsWithArousal) {
  const auto tense = affect::scr_intensity(affect::Emotion::kTense);
  const auto relaxed = affect::scr_intensity(affect::Emotion::kRelaxed);
  EXPECT_GT(tense.rate_per_min, relaxed.rate_per_min);
  EXPECT_GT(tense.amplitude_us, relaxed.amplitude_us);
}

TEST(Scl, TraceIsPositiveAndCoversSession) {
  affect::SclConfig cfg;
  affect::SclGenerator gen(cfg);
  const auto trace = gen.generate(affect::uulmmac_session_timeline());
  EXPECT_EQ(trace.size(), static_cast<std::size_t>(2400.0 * cfg.sample_rate_hz));
  for (double v : trace) EXPECT_GT(v, 0.0);
}

TEST(Scl, TenseWindowsMoreActiveThanRelaxed) {
  affect::SclConfig cfg;
  affect::SclGenerator gen(cfg);
  const auto tl = affect::uulmmac_session_timeline();
  const auto trace = gen.generate(tl);
  const auto win = static_cast<std::size_t>(60.0 * cfg.sample_rate_hz);
  // Average activity inside the tense segment vs the relaxed segment.
  auto mean_activity = [&](double t0, double t1) {
    double acc = 0.0;
    int n = 0;
    for (double t = t0; t + 60.0 <= t1; t += 60.0) {
      const auto start = static_cast<std::size_t>(t * cfg.sample_rate_hz);
      acc += affect::SclEmotionEstimator::activity_score(
          {trace.data() + start, win});
      ++n;
    }
    return acc / n;
  };
  EXPECT_GT(mean_activity(20.0 * 60, 29.0 * 60),
            mean_activity(29.0 * 60, 40.0 * 60));
}

TEST(Scl, CalibratedEstimatorRecoversSessionStates) {
  affect::SclConfig cfg;
  affect::SclGenerator gen(cfg);
  const auto tl = affect::uulmmac_session_timeline();
  const auto trace = gen.generate(tl);
  affect::SclEmotionEstimator est;
  est.calibrate(trace, cfg.sample_rate_hz, tl);

  const auto win = static_cast<std::size_t>(30.0 * cfg.sample_rate_hz);
  std::size_t correct = 0, total = 0;
  for (std::size_t start = 0; start + win <= trace.size(); start += win) {
    const double t = static_cast<double>(start) / cfg.sample_rate_hz;
    const auto pred = est.classify({trace.data() + start, win});
    correct += pred == tl.at(t);
    ++total;
  }
  // The magnitude heuristic is coarse; the paper relies on it resolving
  // the four session states most of the time.
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.55);
}

// -------------------------------------------------------------------- stream

TEST(Stream, MajorityVoteFiltersGlitches) {
  affect::StreamConfig cfg;
  cfg.vote_window = 3;
  cfg.min_dwell_s = 0.0;
  affect::EmotionStream stream(cfg);
  stream.push(0.0, affect::Emotion::kCalm);
  stream.push(1.0, affect::Emotion::kCalm);
  EXPECT_EQ(stream.stable(), affect::Emotion::kCalm);
  // A single glitch must not flip the majority.
  stream.push(2.0, affect::Emotion::kAngry);
  EXPECT_EQ(stream.stable(), affect::Emotion::kCalm);
  // Two more angry labels shift the vote.
  stream.push(3.0, affect::Emotion::kAngry);
  stream.push(4.0, affect::Emotion::kAngry);
  EXPECT_EQ(stream.stable(), affect::Emotion::kAngry);
}

TEST(Stream, DwellTimeBlocksRapidSwitching) {
  affect::StreamConfig cfg;
  cfg.vote_window = 1;
  cfg.min_dwell_s = 10.0;
  affect::EmotionStream stream(cfg);
  EXPECT_TRUE(stream.push(0.0, affect::Emotion::kHappy).has_value());
  // Change at t=5 is within the dwell window: suppressed.
  EXPECT_FALSE(stream.push(5.0, affect::Emotion::kSad).has_value());
  EXPECT_EQ(stream.stable(), affect::Emotion::kHappy);
  // After the dwell expires the change goes through.
  EXPECT_TRUE(stream.push(11.0, affect::Emotion::kSad).has_value());
  EXPECT_EQ(stream.stable(), affect::Emotion::kSad);
  EXPECT_EQ(stream.transitions(), 2u);
}

TEST(Stream, CallbacksFireOnChange) {
  affect::StreamConfig cfg;
  cfg.vote_window = 1;
  cfg.min_dwell_s = 0.0;
  affect::EmotionStream stream(cfg);
  std::vector<affect::Emotion> seen;
  stream.on_change([&](double, affect::Emotion e) { seen.push_back(e); });
  stream.push(0.0, affect::Emotion::kHappy);
  stream.push(1.0, affect::Emotion::kHappy);
  stream.push(2.0, affect::Emotion::kSad);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], affect::Emotion::kHappy);
  EXPECT_EQ(seen[1], affect::Emotion::kSad);
}

TEST(Stream, RejectsZeroWindow) {
  affect::StreamConfig cfg;
  cfg.vote_window = 0;
  EXPECT_THROW(affect::EmotionStream{cfg}, std::invalid_argument);
}

// ---------------------------------------------------------------- classifier

TEST(Classifier, TrainedClassifierBeatsChanceOnTinyCorpus) {
  affect::CorpusProfile prof;
  prof.name = "tiny";
  prof.num_speakers = 4;
  prof.emotions = {affect::Emotion::kAngry, affect::Emotion::kSad};
  prof.utterances_per_speaker_emotion = 6;
  prof.utterance_seconds = 1.0;
  prof.speaker_spread = 0.1;

  affectsys::nn::TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 8;
  tc.learning_rate = 2e-3f;
  auto clf = affect::train_affect_classifier(affectsys::nn::ModelKind::kMlp,
                                             prof, tc);

  affect::SpeechSynthesizer synth(123);
  int correct = 0, total = 0;
  for (int i = 0; i < 10; ++i) {
    const auto e = i % 2 ? affect::Emotion::kAngry : affect::Emotion::kSad;
    const auto utt = synth.synthesize(e, 50 + i, 1.0, 16000.0, 0.1);
    const auto res = clf.classify(utt.samples);
    correct += res.emotion == e;
    ++total;
    EXPECT_GE(res.confidence, 0.0f);
    EXPECT_LE(res.confidence, 1.0f);
  }
  // Angry vs sad is acoustically easy: demand well above chance.
  EXPECT_GE(correct, 7) << "of " << total;
}
