// Simulcast suite (ctest label "simulcast"): layer-aligned encoding,
// the switch-only-at-IDR selector state machine, the declarative switch
// policy, the rate controller's forced-IDR forgiveness, and the serve
// integration — lossy 3-layer replay identity, the IDR invariant across
// policy tables, downswitch-before-shed, and single-layer compat.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "adaptive/input_selector.hpp"
#include "adaptive/modes.hpp"
#include "fault/plan.hpp"
#include "fault/scenario.hpp"
#include "h264/ratecontrol.hpp"
#include "net/transport.hpp"
#include "serve/session.hpp"
#include "serve/workload.hpp"
#include "simulcast/encoder.hpp"
#include "simulcast/policy.hpp"
#include "simulcast/selector.hpp"

namespace adaptive = affectsys::adaptive;
namespace fault = affectsys::fault;
namespace h264 = affectsys::h264;
namespace net = affectsys::net;
namespace serve = affectsys::serve;
namespace simulcast = affectsys::simulcast;

namespace {

/// Small 2-layer ladder over a 32x32 scene for the cheap unit tests.
simulcast::SimulcastConfig small_config() {
  simulcast::SimulcastConfig cfg;
  cfg.scene = h264::VideoConfig{32, 32, 24, 1.2, 0.6, 2.5, 77};
  cfg.gop_frames = 6;
  cfg.b_frames = 2;
  cfg.layers = {{2, 40000.0, 34}, {1, 120000.0, 30}};
  return cfg;
}

/// Process-lifetime serve fixtures with a simulcast workload: the
/// scenario world's classifier/app table, plus a workload that also
/// built the stock 3-layer clip.
struct SimWorld {
  serve::SharedWorkload workload;
  SimWorld()
      : workload([] {
          serve::WorkloadConfig wc;
          wc.simulcast = simulcast::default_simulcast_config();
          return wc;
        }()) {}
};

SimWorld& sim_world() {
  static SimWorld w;
  return w;
}

serve::SessionEnv sim_env() {
  serve::SessionEnv env = fault::scenario_env();
  env.workload = &sim_world().workload;
  return env;
}

serve::SessionReport run_session(
    const serve::SessionConfig& cfg, std::uint64_t ticks,
    const std::function<int(std::uint64_t)>& level) {
  serve::Session s(1, cfg, sim_env(), /*inline_inference=*/true);
  for (std::uint64_t t = 0; t < ticks; ++t) {
    s.pump_audio(t);
    s.tick_media(t, level(t));
  }
  return s.report();
}

}  // namespace

// ----------------------------------------------------- rate controller

TEST(RateControl, ForcedIdrForgivesBucketDebt) {
  h264::RateControlConfig cfg;
  cfg.target_bps = 100000.0;
  cfg.fps = 25.0;
  cfg.initial_qp = 30;
  h264::RateController rc(cfg);
  const double budget = cfg.target_bps / cfg.fps;  // bits per picture

  // A fat IDR closes the previous GOP ~9 picture-budgets over budget.
  rc.picture_coded(static_cast<std::size_t>(10.0 * budget / 8.0));
  EXPECT_GT(rc.buffer_bits(), 3.0 * cfg.reaction * budget);
  const int spiked = rc.next_qp();
  EXPECT_GT(spiked, cfg.initial_qp);

  // Forgiveness clamps the debt to one QP step of pressure...
  rc.begin_forced_idr();
  EXPECT_LE(rc.buffer_bits(), cfg.reaction * budget + 1e-9);

  // ...so on-budget pictures in the new GOP no longer ratchet QP up.
  // (Regression: before the clamp the stale debt never drained on
  // on-budget pictures and QP climbed +2 per picture toward max_qp.)
  const int after_clamp = rc.next_qp();
  for (int i = 0; i < 4; ++i) {
    rc.picture_coded(static_cast<std::size_t>(budget / 8.0));
  }
  EXPECT_LE(rc.next_qp(), after_clamp);
}

// ------------------------------------------------ input selector scale

TEST(InputSelectorScale, RescalesDeletionThreshold) {
  adaptive::InputSelector sel(adaptive::SelectorParams{140, 1});
  EXPECT_EQ(sel.effective_s_th(), 140u);
  sel.set_layer_scale(0.25);
  EXPECT_EQ(sel.effective_s_th(), 35u);
  sel.set_layer_scale(0.001);
  EXPECT_EQ(sel.effective_s_th(), 1u);  // floors at 1, never 0
  sel.set_layer_scale(1.0);
  EXPECT_EQ(sel.effective_s_th(), 140u);
  EXPECT_THROW(sel.set_layer_scale(0.0), std::invalid_argument);
  EXPECT_THROW(sel.set_layer_scale(-1.0), std::invalid_argument);

  // A 100-byte P slice is a candidate at scale 1 (100 <= 140) but not
  // at scale 0.5 (100 > 70) — layer-relative thresholds in action.
  h264::NalUnit p;
  p.type = h264::NalType::kSliceNonIdr;
  p.payload.assign(99, 0x55);
  p.payload[0] = 0xC0;  // ue(0) ue(0): first_mb 0, slice_type P
  adaptive::InputSelector full(adaptive::SelectorParams{140, 1});
  EXPECT_FALSE(full.keeps(p));  // candidate, f=1 deletes it
  adaptive::InputSelector scaled(adaptive::SelectorParams{140, 1});
  scaled.set_layer_scale(0.5);
  EXPECT_TRUE(scaled.keeps(p));  // above the scaled threshold
}

// -------------------------------------------------------- the encoder

TEST(SimulcastEncoder, LayersAlignAndAreDeterministic) {
  const simulcast::SimulcastConfig cfg = small_config();
  const simulcast::SimulcastClip a = simulcast::encode_simulcast(cfg);
  ASSERT_EQ(a.layer_count(), 2u);
  ASSERT_EQ(a.pictures(), 24u);
  EXPECT_EQ(a.layer(0).width, 16);
  EXPECT_EQ(a.layer(1).width, 32);
  for (std::size_t l = 0; l < a.layer_count(); ++l) {
    EXPECT_FALSE(a.layer(l).params.empty());
    ASSERT_EQ(a.layer(l).slices.size(), a.pictures());
    for (std::size_t p = 0; p < a.pictures(); ++p) {
      // IDRs land exactly at GOP-segment starts in EVERY layer — the
      // aligned switch points the selector depends on.
      EXPECT_EQ(a.layer(l).idr[p] != 0, p % 6 == 0) << "l=" << l << " p=" << p;
    }
  }
  // The top layer spends more bytes than the downscaled one.
  EXPECT_GT(a.layer(1).bytes, a.layer(0).bytes);

  // Pure function of the config: a second encode is byte-identical.
  const simulcast::SimulcastClip b = simulcast::encode_simulcast(cfg);
  for (std::size_t l = 0; l < a.layer_count(); ++l) {
    ASSERT_EQ(a.layer(l).bytes, b.layer(l).bytes);
    for (std::size_t p = 0; p < a.pictures(); ++p) {
      EXPECT_EQ(a.layer(l).slices[p].payload, b.layer(l).slices[p].payload);
    }
  }
}

TEST(SimulcastEncoder, SelectorScaleTracksLayerSizes) {
  const simulcast::SimulcastClip clip =
      simulcast::encode_simulcast(small_config());
  EXPECT_DOUBLE_EQ(clip.selector_scale(1), 1.0);  // top layer = reference
  EXPECT_GT(clip.selector_scale(0), 0.0);
  EXPECT_LT(clip.selector_scale(0), 1.0);  // smaller slices, smaller S_th
}

TEST(SimulcastEncoder, RejectsBadConfigs) {
  simulcast::SimulcastConfig cfg = small_config();
  cfg.layers.clear();
  EXPECT_THROW(simulcast::encode_simulcast(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.layers[0].scale = 3;  // not a power of two
  EXPECT_THROW(simulcast::encode_simulcast(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.layers[0].scale = 4;  // 32/4 = 8, not a macroblock multiple
  EXPECT_THROW(simulcast::encode_simulcast(cfg), std::invalid_argument);
}

// ------------------------------------------------------- the selector

TEST(LayerSelector, SwitchesOnlyAtIdr) {
  simulcast::LayerSelector sel(3, 2);
  // GOP of 4: IDR at pictures 0, 4, 8, ...
  EXPECT_EQ(sel.on_picture(true), 2u);
  sel.request(0);  // mid-GOP downswitch request
  EXPECT_TRUE(sel.waiting());
  EXPECT_EQ(sel.on_picture(false), 2u);  // keeps forwarding current
  EXPECT_EQ(sel.on_picture(false), 2u);
  EXPECT_EQ(sel.on_picture(false), 2u);
  EXPECT_EQ(sel.on_picture(true), 0u);  // completes exactly at the IDR
  EXPECT_FALSE(sel.waiting());
  const simulcast::LayerSelectorStats& st = sel.stats();
  EXPECT_EQ(st.switches_requested, 1u);
  EXPECT_EQ(st.switches_completed, 1u);
  EXPECT_EQ(st.downswitches, 1u);
  EXPECT_EQ(st.upswitches, 0u);
  EXPECT_EQ(st.pictures_waited, 3u);
  EXPECT_EQ(st.last_wait_pictures, 3u);
  EXPECT_EQ(st.max_wait_pictures, 3u);
}

TEST(LayerSelector, ReRequestingCurrentCancelsPendingSwitch) {
  simulcast::LayerSelector sel(3, 0);
  sel.request(2);
  EXPECT_TRUE(sel.waiting());
  EXPECT_EQ(sel.on_picture(false), 0u);
  sel.request(0);  // back to current before any IDR: cancelled
  EXPECT_FALSE(sel.waiting());
  EXPECT_EQ(sel.on_picture(true), 0u);  // the IDR completes nothing
  EXPECT_EQ(sel.stats().switches_cancelled, 1u);
  EXPECT_EQ(sel.stats().switches_completed, 0u);
  // Re-aiming a pending switch is still ONE request.
  sel.request(1);
  sel.request(2);
  EXPECT_EQ(sel.stats().switches_requested, 2u);
  EXPECT_EQ(sel.on_picture(true), 2u);
  EXPECT_EQ(sel.stats().upswitches, 1u);
}

// --------------------------------------------------------- the policy

TEST(SwitchPolicy, DefaultTableMapsContexts) {
  const simulcast::SwitchPolicy pol = simulcast::default_switch_policy(3);
  const auto mode = adaptive::DecoderMode::kStandard;
  simulcast::ContextVector ctx;
  EXPECT_EQ(pol.target_layer(mode, ctx, 3), 2u);  // all clear: top layer
  ctx.battery = 0.1;
  EXPECT_EQ(pol.target_layer(mode, ctx, 3), 0u);  // low power pins bottom
  ctx = {};
  ctx.thermal_headroom = 0.1;
  EXPECT_EQ(pol.target_layer(mode, ctx, 3), 0u);
  ctx = {};
  ctx.pressure = 2;
  EXPECT_EQ(pol.target_layer(mode, ctx, 3), 0u);  // heavy backlog: bottom
  ctx = {};
  ctx.pressure = 1;
  EXPECT_EQ(pol.target_layer(mode, ctx, 3), 1u);  // moderate: one down
  ctx.loss_rate = 0.5;
  EXPECT_EQ(pol.target_layer(mode, ctx, 3), 0u);  // moderate AND lossy
  ctx = {};
  ctx.loss_rate = 0.5;
  EXPECT_EQ(pol.target_layer(mode, ctx, 3), 1u);  // lossy alone: one down
  ctx = {};
  EXPECT_EQ(pol.target_layer(adaptive::DecoderMode::kCombined, ctx, 3), 0u);
  EXPECT_EQ(pol.target_layer(adaptive::DecoderMode::kDeletion, ctx, 3), 1u);
  EXPECT_EQ(pol.target_layer(adaptive::DecoderMode::kDeblockOff, ctx, 3), 1u);
}

TEST(SwitchPolicy, FirstMatchWinsAndTargetsClamp) {
  simulcast::SwitchPolicy pol;
  pol.rules = {{-1, 0, -1, -1, 0},   // matches everything
               {-1, 0, -1, -1, 2}};  // never reached
  simulcast::ContextVector ctx;
  ctx.pressure = 3;
  EXPECT_EQ(pol.target_layer(adaptive::DecoderMode::kStandard, ctx, 3), 0u);

  simulcast::SwitchPolicy wild;
  wild.default_target = 7;  // beyond the clip: clamps to the top layer
  EXPECT_EQ(wild.target_layer(adaptive::DecoderMode::kStandard, ctx, 3), 2u);
}

// ---------------------------------------------------- serve integration

TEST(ServeSimulcast, ThreeLayerLossyReplayIsByteIdentical) {
  // Seeded packet loss + a degrade-level storm (retarget pressure every
  // few ticks) — the full simulcast transport path must replay bit for
  // bit: pixels, layer schedule, per-layer byte split, loss exposure.
  serve::SessionConfig cfg;
  cfg.seed = 11;
  cfg.simulcast.enabled = true;
  cfg.fault = fault::FaultConfig{41, 0.05, fault::kNetKinds};
  cfg.transport = fault::net_scenario_transport(true);
  cfg.transport.layers = 3;
  const auto storm = [](std::uint64_t t) {
    return static_cast<int>((t / 4) % 4);
  };
  const serve::SessionReport a = run_session(cfg, 80, storm);
  const serve::SessionReport b = run_session(cfg, 80, storm);
  EXPECT_EQ(a.decode_digest, b.decode_digest);
  EXPECT_EQ(a.layer_trace, b.layer_trace);
  EXPECT_EQ(a.stats.frames_decoded, b.stats.frames_decoded);
  EXPECT_EQ(a.stats.packets_lost, b.stats.packets_lost);
  EXPECT_EQ(a.stats.nals_lost, b.stats.nals_lost);
  EXPECT_EQ(a.stats.layer_switches, b.stats.layer_switches);
  EXPECT_EQ(a.stats.layer_bytes, b.stats.layer_bytes);
  EXPECT_EQ(a.stats.layer_pictures, b.stats.layer_pictures);
  // The storm actually exercised the machinery.
  EXPECT_GT(a.stats.packets_lost, 0u);
  EXPECT_GT(a.stats.layer_switches, 0u);
  EXPECT_GT(a.layer_trace.size(), 1u);
}

TEST(ServeSimulcast, SwitchesOnlyAtIdrAcrossPolicies) {
  const simulcast::SimulcastClip& clip = *sim_world().workload.simulcast_clip();
  const int gop = sim_world().workload.config().simulcast.gop_frames;

  // A spread of policy tables, stock and pathological: whatever the
  // table wants, a forwarded-layer change may only land on an aligned
  // IDR — the invariant is the selector's, not the policy's.
  std::vector<simulcast::SwitchPolicy> policies;
  policies.push_back(simulcast::default_switch_policy(3));
  {
    simulcast::SwitchPolicy flip;  // thrash layers with every pressure step
    flip.rules = {{-1, 3, -1, -1, 0},
                  {-1, 2, -1, -1, 2},
                  {-1, 1, -1, -1, 0}};
    flip.default_target = 1;
    policies.push_back(flip);
  }
  {
    simulcast::SwitchPolicy pin;  // constant bottom layer
    pin.default_target = 0;
    policies.push_back(pin);
  }

  for (std::size_t pi = 0; pi < policies.size(); ++pi) {
    serve::SessionConfig cfg;
    cfg.seed = 21 + static_cast<unsigned>(pi);
    cfg.simulcast.enabled = true;
    cfg.simulcast.use_default_policy = false;
    cfg.simulcast.policy = policies[pi];
    const serve::SessionReport rep =
        run_session(cfg, 80, [](std::uint64_t t) {
          return static_cast<int>((t * 3) % 4);
        });
    for (const auto& [pic, layer] : rep.layer_trace) {
      EXPECT_TRUE(clip.idr_at(pic % clip.pictures()))
          << "policy " << pi << ": layer change to " << int(layer)
          << " at non-IDR picture " << pic;
    }
    // Switch latency is bounded by one GOP by construction.
    EXPECT_LT(rep.layer_selector.max_wait_pictures,
              static_cast<std::uint64_t>(gop));
  }
}

TEST(ServeSimulcast, DownswitchBeforeShedSavesFrames) {
  // Permanent shed-level overload: a simulcast session downswitches to
  // the bottom layer first and only sheds once locked there, so the
  // first tick's frames survive as bottom-layer pictures.
  serve::SessionConfig cfg;
  cfg.seed = 31;
  cfg.simulcast.enabled = true;
  const serve::SessionReport rep =
      run_session(cfg, 40, [](std::uint64_t) { return 3; });
  EXPECT_GT(rep.stats.frames_downswitched, 0u);
  EXPECT_GT(rep.stats.layer_pictures[0], 0u);
  EXPECT_EQ(rep.stats.layer_pictures[2], 0u);  // never walked the top layer
  // Once locked on the bottom layer the shed verdict stands again, but
  // the downswitched first tick means not every slot was dropped.
  EXPECT_GT(rep.stats.frames_dropped, 0u);
  EXPECT_LT(rep.stats.frames_dropped, 40u * 3u);
}

TEST(ServeSimulcast, ZeroLossTransportMatchesInProcessPath) {
  // Same clip, same policy, perfect channel: the transport-fed
  // simulcast session decodes the exact pixels of the in-process one.
  serve::SessionConfig base;
  base.seed = 17;
  base.simulcast.enabled = true;
  const auto steady = [](std::uint64_t) { return 0; };
  const serve::SessionReport a = run_session(base, 60, steady);
  serve::SessionConfig tcfg = base;
  tcfg.transport = fault::net_scenario_transport(true);
  tcfg.transport.layers = 3;
  const serve::SessionReport b = run_session(tcfg, 60, steady);
  EXPECT_EQ(a.decode_digest, b.decode_digest);
  EXPECT_EQ(a.stats.frames_decoded, b.stats.frames_decoded);
  EXPECT_EQ(a.layer_trace, b.layer_trace);
  EXPECT_EQ(b.stats.packets_lost, 0u);
}

TEST(ServeSimulcast, DisabledLeavesSingleStreamPathUntouched) {
  // Single-layer compat: with simulcast off the media paths and wire
  // format are the pre-simulcast ones — transport digest matches the
  // in-process reference and every simulcast stat stays zero.
  serve::SessionConfig base;
  base.seed = 5;
  const auto steady = [](std::uint64_t) { return 0; };
  const serve::SessionReport a = run_session(base, 60, steady);
  serve::SessionConfig tcfg = base;
  tcfg.transport = fault::net_scenario_transport(true);  // layers = 1
  const serve::SessionReport b = run_session(tcfg, 60, steady);
  EXPECT_EQ(a.decode_digest, b.decode_digest);
  for (const serve::SessionReport* rep : {&a, &b}) {
    EXPECT_TRUE(rep->layer_trace.empty());
    EXPECT_EQ(rep->stats.layer_switches, 0u);
    EXPECT_EQ(rep->stats.frames_downswitched, 0u);
    for (std::size_t l = 0; l < 4; ++l) {
      EXPECT_EQ(rep->stats.layer_pictures[l], 0u);
      EXPECT_EQ(rep->stats.layer_bytes[l], 0u);
    }
    EXPECT_EQ(rep->layer_selector.switches_requested, 0u);
  }
}
