// Unit tests for the H.264 syntax layer: bit I/O, Exp-Golomb, emulation
// prevention, NAL packing and entropy coding.
#include <gtest/gtest.h>

#include <random>
#include <span>

#include "h264/bitstream.hpp"
#include "h264/entropy.hpp"
#include "h264/nal.hpp"

namespace h264 = affectsys::h264;

TEST(BitIo, SingleBitsRoundTrip) {
  h264::BitWriter bw;
  const bool pattern[] = {true, false, true, true, false, false, true};
  for (bool b : pattern) bw.put_bit(b);
  bw.finish_rbsp();
  h264::BitReader br(bw.bytes());
  for (bool b : pattern) EXPECT_EQ(br.get_bit(), b);
}

TEST(BitIo, FixedWidthFields) {
  h264::BitWriter bw;
  bw.put_bits(0xA5, 8);
  bw.put_bits(0x3, 2);
  bw.put_bits(0x12345, 20);
  bw.finish_rbsp();
  h264::BitReader br(bw.bytes());
  EXPECT_EQ(br.get_bits(8), 0xA5u);
  EXPECT_EQ(br.get_bits(2), 0x3u);
  EXPECT_EQ(br.get_bits(20), 0x12345u);
}

TEST(BitIo, ReadPastEndThrows) {
  h264::BitWriter bw;
  bw.put_bits(0xFF, 8);
  h264::BitReader br(bw.bytes());
  br.get_bits(8);
  EXPECT_THROW(br.get_bit(), h264::BitstreamError);
}

TEST(BitIo, PutBitsRejectsOver32) {
  h264::BitWriter bw;
  EXPECT_THROW(bw.put_bits(0, 33), std::invalid_argument);
}

class ExpGolombUe : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ExpGolombUe, RoundTrips) {
  h264::BitWriter bw;
  bw.put_ue(GetParam());
  bw.finish_rbsp();
  h264::BitReader br(bw.bytes());
  EXPECT_EQ(br.get_ue(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Values, ExpGolombUe,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 8u, 255u,
                                           1023u, 65535u, 1000000u));

class ExpGolombSe : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(ExpGolombSe, RoundTrips) {
  h264::BitWriter bw;
  bw.put_se(GetParam());
  bw.finish_rbsp();
  h264::BitReader br(bw.bytes());
  EXPECT_EQ(br.get_se(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Values, ExpGolombSe,
                         ::testing::Values(0, 1, -1, 2, -2, 17, -17, 1000,
                                           -1000, 123456, -123456));

TEST(ExpGolomb, KnownEncodings) {
  // ue(0) = "1", ue(1) = "010", ue(2) = "011".
  h264::BitWriter bw;
  bw.put_ue(0);
  bw.put_ue(1);
  bw.put_ue(2);
  // bits: 1 010 011 -> 1010011x
  ASSERT_GE(bw.bit_count(), 7u);
  h264::BitReader br(bw.bytes());
  EXPECT_EQ(br.get_bits(7), 0b1010011u);
}

TEST(ExpGolomb, FuzzRoundTrip) {
  std::mt19937 rng(99);
  std::uniform_int_distribution<std::uint32_t> d(0, 1u << 20);
  h264::BitWriter bw;
  std::vector<std::uint32_t> vals(500);
  for (auto& v : vals) {
    v = d(rng);
    bw.put_ue(v);
  }
  bw.finish_rbsp();
  h264::BitReader br(bw.bytes());
  for (auto v : vals) EXPECT_EQ(br.get_ue(), v);
}

TEST(EmulationPrevention, InsertsAndRemoves) {
  const std::vector<std::uint8_t> rbsp = {0x00, 0x00, 0x01, 0xAB,
                                          0x00, 0x00, 0x00, 0x00, 0x02};
  const auto ebsp = h264::add_emulation_prevention(rbsp);
  // No 0x000001 or 0x000000 patterns may survive.
  for (std::size_t i = 0; i + 2 < ebsp.size(); ++i) {
    const bool bad = ebsp[i] == 0 && ebsp[i + 1] == 0 && ebsp[i + 2] <= 1;
    EXPECT_FALSE(bad) << "at offset " << i;
  }
  EXPECT_EQ(h264::remove_emulation_prevention(ebsp), rbsp);
}

TEST(EmulationPrevention, RandomPayloadRoundTrip) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> byte(0, 4);  // zero-heavy payloads
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::uint8_t> rbsp(200);
    for (auto& b : rbsp) b = static_cast<std::uint8_t>(byte(rng));
    const auto ebsp = h264::add_emulation_prevention(rbsp);
    EXPECT_EQ(h264::remove_emulation_prevention(ebsp), rbsp);
  }
}

TEST(Nal, PackUnpackRoundTrip) {
  std::vector<h264::NalUnit> units(3);
  units[0].type = h264::NalType::kSps;
  units[0].ref_idc = 3;
  units[0].payload = {0x42, 0x00, 0x1E};
  units[1].type = h264::NalType::kSliceIdr;
  units[1].ref_idc = 3;
  units[1].payload = {0x11, 0x22, 0x33, 0x44};
  units[2].type = h264::NalType::kSliceNonIdr;
  units[2].ref_idc = 0;
  units[2].payload = {0x55};

  const auto stream = h264::pack_annexb(units);
  const auto parsed = h264::unpack_annexb(stream);
  ASSERT_EQ(parsed.size(), units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    EXPECT_EQ(parsed[i].type, units[i].type);
    EXPECT_EQ(parsed[i].ref_idc, units[i].ref_idc);
    EXPECT_EQ(parsed[i].payload, units[i].payload);
  }
}

TEST(Nal, TruncatedStartCodePrefixYieldsNoUnits) {
  // Streams cut off inside (or right after) a start code must parse to
  // zero units — no out-of-bounds header read, no phantom unit.
  const std::vector<std::vector<std::uint8_t>> truncated = {
      {},
      {0x00},
      {0x00, 0x00},
      {0x00, 0x00, 0x01},        // complete code, no header byte
      {0x00, 0x00, 0x00, 0x01},  // 4-byte code, no header byte
  };
  for (const auto& stream : truncated) {
    EXPECT_TRUE(h264::unpack_annexb(stream).empty())
        << "stream of " << stream.size() << " bytes";
  }
}

TEST(Nal, StartCodeTruncatedAtStreamEndIsIgnored) {
  // A valid unit followed by a dangling start code: the unit survives,
  // the dangling code is not a unit.
  std::vector<h264::NalUnit> units(1);
  units[0].type = h264::NalType::kSliceIdr;
  units[0].ref_idc = 3;
  units[0].payload = {0x11, 0x22};
  auto stream = h264::pack_annexb(units);
  stream.insert(stream.end(), {0x00, 0x00, 0x01});
  const auto parsed = h264::unpack_annexb(stream);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].payload, units[0].payload);
}

TEST(Nal, AdjacentStartCodesYieldNoEmptyUnit) {
  // "00 00 01 | 00 00 01 | header payload": the zero-byte region
  // between the codes holds no header and must be skipped cleanly.
  const std::vector<std::uint8_t> stream = {0x00, 0x00, 0x01, 0x00, 0x00,
                                            0x01, 0x65, 0xAB, 0xCD};
  const auto parsed = h264::unpack_annexb(stream);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].type, h264::NalType::kSliceIdr);
  EXPECT_EQ((parsed[0].payload), (std::vector<std::uint8_t>{0xAB, 0xCD}));
}

TEST(Nal, ZeroLengthPayloadRoundTrips) {
  // Header-only units (empty payload) are legal framing and must be
  // preserved through pack/unpack, in every position.
  std::vector<h264::NalUnit> units(3);
  units[0].type = h264::NalType::kSps;
  units[0].ref_idc = 3;
  units[0].payload = {};  // leading
  units[1].type = h264::NalType::kSliceIdr;
  units[1].ref_idc = 2;
  units[1].payload = {0x42, 0x17};
  units[2].type = h264::NalType::kPps;
  units[2].ref_idc = 1;
  units[2].payload = {};  // trailing
  const auto parsed = h264::unpack_annexb(h264::pack_annexb(units));
  ASSERT_EQ(parsed.size(), units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    EXPECT_EQ(parsed[i].type, units[i].type) << "unit " << i;
    EXPECT_EQ(parsed[i].ref_idc, units[i].ref_idc) << "unit " << i;
    EXPECT_EQ(parsed[i].payload, units[i].payload) << "unit " << i;
  }
}

TEST(Nal, UnpackFuzzedTruncationsNeverCrash) {
  // Every prefix of a real packed stream must parse without throwing
  // or reading out of bounds (the fault layer truncates mid-NAL and
  // mid-start-code at will).
  std::vector<h264::NalUnit> units(2);
  units[0].type = h264::NalType::kSps;
  units[0].ref_idc = 3;
  units[0].payload = {0x42, 0x00, 0x1E, 0x00};
  units[1].type = h264::NalType::kSliceIdr;
  units[1].ref_idc = 3;
  units[1].payload = {0x00, 0x01, 0x00, 0x00, 0x02, 0x00};
  const auto stream = h264::pack_annexb(units);
  for (std::size_t len = 0; len <= stream.size(); ++len) {
    const auto parsed = h264::unpack_annexb(
        std::span<const std::uint8_t>(stream.data(), len));
    EXPECT_LE(parsed.size(), units.size()) << "prefix " << len;
  }
}

TEST(Nal, ByteSizeCountsHeader) {
  h264::NalUnit nal;
  nal.payload = {1, 2, 3};
  EXPECT_EQ(nal.byte_size(), 4u);
}

TEST(EmulationPrevention, GuardsTrailingZeroRun) {
  // Regression: add_emulation_prevention used to leave an RBSP's final
  // 00 00 unguarded, so the EBSP ended in a bare zero run that
  // unpack_annexb's padding trim then ate — the pack/unpack asymmetry.
  const std::vector<std::vector<std::uint8_t>> rbsps = {
      {0x00, 0x00},
      {0x00, 0x00, 0x00},
      {0x00, 0x00, 0x03},
      {0xAB, 0x00, 0x00},
      {0x00, 0x00, 0x00, 0x00},
      {0x42, 0x00, 0x00, 0x03, 0x00, 0x00},
  };
  for (const auto& rbsp : rbsps) {
    const auto ebsp = h264::add_emulation_prevention(rbsp);
    ASSERT_GE(ebsp.size(), 2u);
    EXPECT_FALSE(ebsp[ebsp.size() - 2] == 0 && ebsp.back() == 0)
        << "EBSP may not end in 00 00";
    EXPECT_EQ(h264::remove_emulation_prevention(ebsp), rbsp);
  }
}

TEST(EmulationPrevention, ExhaustiveZeroHeavyRoundTrip) {
  // Every payload up to 5 bytes over {00, 01, 02, 03, AB}: covers every
  // placement of a 00 00 0{0..3} sequence — start, middle, end — plus
  // overlapping runs.  For each, the EBSP invariant must hold (no
  // 00 00 0{0,1} anywhere, no trailing 00 00) and the round trip must
  // be exact.
  const std::uint8_t alpha[] = {0x00, 0x01, 0x02, 0x03, 0xAB};
  for (std::size_t len = 0; len <= 5; ++len) {
    std::vector<std::size_t> idx(len, 0);
    while (true) {
      std::vector<std::uint8_t> rbsp(len);
      for (std::size_t i = 0; i < len; ++i) rbsp[i] = alpha[idx[i]];
      const auto ebsp = h264::add_emulation_prevention(rbsp);
      for (std::size_t i = 0; i + 2 < ebsp.size(); ++i) {
        ASSERT_FALSE(ebsp[i] == 0 && ebsp[i + 1] == 0 && ebsp[i + 2] <= 1)
            << "emulation at offset " << i;
      }
      if (ebsp.size() >= 2) {
        ASSERT_FALSE(ebsp[ebsp.size() - 2] == 0 && ebsp.back() == 0);
      }
      ASSERT_EQ(h264::remove_emulation_prevention(ebsp), rbsp);

      std::size_t k = 0;
      for (; k < len; ++k) {
        if (++idx[k] < sizeof(alpha)) break;
        idx[k] = 0;
      }
      if (k == len) break;
    }
  }
}

TEST(Nal, PackUnpackPreservesGuardedTrailingZeros) {
  // The full framing round trip for zero-tailed payloads, in every NAL
  // position: RBSP -> EBSP -> Annex-B -> units -> RBSP must be the
  // identity (trailing-zero padding trim included).
  const std::vector<std::vector<std::uint8_t>> rbsps = {
      {0x00, 0x00},
      {0x11, 0x00, 0x00},
      {0x00, 0x00, 0x03},
      {0x00, 0x00, 0x00},
      {0x7F, 0x00, 0x00, 0x00, 0x00},
  };
  for (const auto& rbsp : rbsps) {
    for (std::size_t pos = 0; pos < 2; ++pos) {
      std::vector<h264::NalUnit> units(2);
      units[0].type = h264::NalType::kSps;
      units[0].ref_idc = 3;
      units[0].payload = {0x42};
      units[1].type = h264::NalType::kSliceIdr;
      units[1].ref_idc = 3;
      units[1].payload = {0x65};
      units[pos].payload = h264::add_emulation_prevention(rbsp);

      const auto parsed = h264::unpack_annexb(h264::pack_annexb(units));
      ASSERT_EQ(parsed.size(), units.size()) << "position " << pos;
      EXPECT_EQ(parsed[pos].payload, units[pos].payload)
          << "EBSP changed through pack/unpack at position " << pos;
      EXPECT_EQ(h264::remove_emulation_prevention(parsed[pos].payload), rbsp)
          << "RBSP round trip at position " << pos;
    }
  }
}

TEST(Entropy, ZeroBlockIsOneSymbol) {
  h264::Block4x4 zero{};
  h264::BitWriter bw;
  const std::size_t bits = h264::encode_residual_block(bw, zero);
  EXPECT_EQ(bits, 1u);  // ue(0) == one bit
  bw.finish_rbsp();
  h264::BitReader br(bw.bytes());
  int nz = -1;
  const auto decoded = h264::decode_residual_block(br, &nz);
  EXPECT_EQ(nz, 0);
  EXPECT_EQ(decoded, zero);
}

TEST(Entropy, DenseBlockRoundTrip) {
  h264::Block4x4 blk{};
  int v = -8;
  for (auto& row : blk) {
    for (auto& x : row) x = (v == 0) ? ++v : v++;
  }
  h264::BitWriter bw;
  h264::encode_residual_block(bw, blk);
  bw.finish_rbsp();
  h264::BitReader br(bw.bytes());
  EXPECT_EQ(h264::decode_residual_block(br), blk);
}

TEST(Entropy, FuzzRoundTripManyBlocks) {
  std::mt19937 rng(31337);
  std::uniform_int_distribution<int> level(-32, 32);
  std::uniform_real_distribution<double> density(0.0, 1.0);
  for (int iter = 0; iter < 300; ++iter) {
    const double p = density(rng);
    h264::Block4x4 blk{};
    for (auto& row : blk) {
      for (auto& x : row) {
        if (density(rng) < p) x = level(rng);
      }
    }
    h264::BitWriter bw;
    h264::encode_residual_block(bw, blk);
    bw.finish_rbsp();
    h264::BitReader br(bw.bytes());
    int nz = 0;
    const auto decoded = h264::decode_residual_block(br, &nz);
    EXPECT_EQ(decoded, blk);
    EXPECT_EQ(nz, h264::count_nonzero(blk));
  }
}

TEST(Entropy, SparseCheaperThanDense) {
  h264::Block4x4 sparse{};
  sparse[0][0] = 3;
  h264::Block4x4 dense{};
  for (auto& row : dense) {
    for (auto& x : row) x = 5;
  }
  h264::BitWriter bw1, bw2;
  const auto bits_sparse = h264::encode_residual_block(bw1, sparse);
  const auto bits_dense = h264::encode_residual_block(bw2, dense);
  EXPECT_LT(bits_sparse, bits_dense);
}
