// Tests for the smartphone simulator substrate: catalog, flash model,
// process manager semantics, kill policies, personality profiles, monkey
// generator and tracing.
#include <gtest/gtest.h>

#include <set>

#include "android/catalog.hpp"
#include "android/flash.hpp"
#include "android/monkey.hpp"
#include "android/personality.hpp"
#include "android/policy.hpp"
#include "android/process.hpp"
#include "android/trace.hpp"

namespace android = affectsys::android;
namespace affect = affectsys::affect;

// ------------------------------------------------------------------ catalog

TEST(Catalog, Has44UniqueApps) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  EXPECT_EQ(catalog.size(), 44u);
  std::set<android::AppId> ids;
  for (const auto& a : catalog) ids.insert(a.id);
  EXPECT_EQ(ids.size(), 44u);
}

TEST(Catalog, SizesArePlausible) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  for (const auto& a : catalog) {
    EXPECT_GT(a.image_bytes, 5ull * 1024 * 1024) << a.name;
    EXPECT_LT(a.image_bytes, 500ull * 1024 * 1024) << a.name;
    EXPECT_GT(a.memory_bytes, a.image_bytes / 10) << a.name;
    EXPECT_GT(a.init_time_s, 0.0) << a.name;
  }
}

TEST(Catalog, DeterministicForSameSeed) {
  const auto a = android::build_catalog(android::EmulatorSpec{}, 7);
  const auto b = android::build_catalog(android::EmulatorSpec{}, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].image_bytes, b[i].image_bytes);
  }
}

TEST(Catalog, ProtectedAppsExist) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  std::size_t protected_count = 0;
  for (const auto& a : catalog) protected_count += a.protected_from_kill;
  EXPECT_GE(protected_count, 5u);   // messaging + calling + settings + system
  EXPECT_LE(protected_count, 15u);  // but most apps are killable
}

TEST(Catalog, CategoryLookup) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  const auto msgs =
      android::apps_in_category(catalog, android::AppCategory::kMessaging);
  EXPECT_EQ(msgs.size(), 3u);
}

// -------------------------------------------------------------------- flash

TEST(Flash, TimeScalesWithBytes) {
  android::FlashStorage flash;
  const auto small = flash.read(10 * 1024 * 1024);
  const auto large = flash.read(100 * 1024 * 1024);
  EXPECT_GT(large.time_s, small.time_s);
  EXPECT_NEAR(large.energy_nj / small.energy_nj, 10.0, 1e-6);
}

TEST(Flash, TotalsAccumulate) {
  android::FlashStorage flash;
  flash.read_and_account(1024);
  flash.read_and_account(2048);
  EXPECT_EQ(flash.totals().bytes, 3072u);
  flash.reset_totals();
  EXPECT_EQ(flash.totals().bytes, 0u);
}

// ----------------------------------------------------------------- policies

TEST(Policies, FifoPicksOldestLoad) {
  android::FifoKillPolicy fifo;
  std::vector<android::VictimCandidate> c = {
      {1, 10.0, 50.0, 100, 3}, {2, 5.0, 60.0, 100, 1}, {3, 20.0, 40.0, 100, 9}};
  EXPECT_EQ(fifo.select_victim(c), 2u);
}

TEST(Policies, LruPicksLeastRecentlyUsed) {
  android::LruKillPolicy lru;
  std::vector<android::VictimCandidate> c = {
      {1, 10.0, 50.0, 100, 3}, {2, 5.0, 60.0, 100, 1}, {3, 20.0, 40.0, 100, 9}};
  EXPECT_EQ(lru.select_victim(c), 3u);
}

TEST(Policies, FrequencyPicksLeastLaunched) {
  android::FrequencyKillPolicy freq;
  std::vector<android::VictimCandidate> c = {
      {1, 10.0, 50.0, 100, 3}, {2, 5.0, 60.0, 100, 1}, {3, 20.0, 40.0, 100, 9}};
  EXPECT_EQ(freq.select_victim(c), 2u);
}

// ----------------------------------------------------------- process manager

namespace {

android::ProcessManagerConfig tight_config() {
  android::ProcessManagerConfig cfg;
  cfg.process_limit = 8;
  cfg.ram_bytes = 3ull * 1024 * 1024 * 1024;
  cfg.reserved_bytes = 1ull * 1024 * 1024 * 1024;
  return cfg;
}

}  // namespace

TEST(ProcessManager, ColdThenWarmStart) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  android::FifoKillPolicy fifo;
  android::ProcessManager pm(catalog, tight_config(), fifo);
  const android::AppId app = catalog[5].id;

  const auto cost1 = pm.launch(app, 1.0);
  EXPECT_GT(cost1.bytes, 0u);
  EXPECT_GT(cost1.time_s, 0.0);
  EXPECT_EQ(pm.metrics().cold_starts, 1u);

  const auto cost2 = pm.launch(app, 2.0);
  EXPECT_EQ(cost2.bytes, 0u);
  EXPECT_EQ(pm.metrics().warm_starts, 1u);
  EXPECT_EQ(pm.foreground(), app);
}

TEST(ProcessManager, EnforcesProcessLimit) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  android::FifoKillPolicy fifo;
  android::ProcessManager pm(catalog, tight_config(), fifo);
  double t = 0.0;
  for (const auto& a : catalog) {
    pm.launch(a.id, t += 1.0);
    EXPECT_TRUE(pm.invariants_hold()) << "after launching " << a.name;
  }
  EXPECT_GT(pm.metrics().kills, 0u);
  EXPECT_LE(pm.killable_count(), 9u);  // limit 8 + foreground grace
}

TEST(ProcessManager, NeverKillsProtectedOrForeground) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  android::FifoKillPolicy fifo;
  android::Tracer tracer;
  android::ProcessManager pm(catalog, tight_config(), fifo, &tracer);
  double t = 0.0;
  for (const auto& a : catalog) pm.launch(a.id, t += 1.0);
  // Every killed app must be unprotected.
  for (const auto& ev : tracer.events()) {
    if (ev.type != android::TraceEventType::kKill) continue;
    EXPECT_FALSE(pm.app_info(ev.app).protected_from_kill)
        << "killed protected app " << ev.app;
  }
  // Protected processes are still resident at the end.
  for (const auto& a : catalog) {
    if (a.protected_from_kill) EXPECT_TRUE(pm.is_running(a.id)) << a.name;
  }
}

TEST(ProcessManager, RamBudgetRespected) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  android::LruKillPolicy lru;
  auto cfg = tight_config();
  android::ProcessManager pm(catalog, cfg, lru);
  double t = 0.0;
  for (int round = 0; round < 3; ++round) {
    for (const auto& a : catalog) {
      pm.launch(a.id, t += 1.0);
      EXPECT_LE(pm.used_ram(), cfg.ram_bytes + (1ull << 30));
    }
  }
}

TEST(ProcessManager, MetricsAddUp) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  android::FifoKillPolicy fifo;
  android::ProcessManager pm(catalog, tight_config(), fifo);
  double t = 0.0;
  std::size_t launches = 0;
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < 10; ++i) {
      pm.launch(catalog[i].id, t += 1.0);
      ++launches;
    }
  }
  EXPECT_EQ(pm.metrics().cold_starts + pm.metrics().warm_starts, launches);
  EXPECT_GT(pm.metrics().memory_loaded_bytes, 0u);
  EXPECT_GT(pm.metrics().loading_time_s, 0.0);
}

TEST(ProcessManager, CompressionDefersKills) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  android::LruKillPolicy lru1, lru2;
  android::ProcessManagerConfig plain = tight_config();
  plain.process_limit = 40;  // isolate RAM pressure
  android::ProcessManagerConfig zram = plain;
  zram.compress_instead_of_kill = true;

  android::ProcessManager pm_plain(catalog, plain, lru1);
  android::ProcessManager pm_zram(catalog, zram, lru2);
  double t = 0.0;
  for (const auto& a : catalog) {
    pm_plain.launch(a.id, t += 1.0);
    pm_zram.launch(a.id, t);
  }
  EXPECT_GT(pm_zram.metrics().compressions, 0u);
  EXPECT_LT(pm_zram.metrics().kills, pm_plain.metrics().kills);
  // More processes survive resident under compression.
  EXPECT_GT(pm_zram.running_count(), pm_plain.running_count());
  EXPECT_LE(pm_zram.used_ram(), zram.ram_bytes + (1ull << 30));
}

TEST(ProcessManager, CompressedWarmStartPaysDecompression) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  android::FifoKillPolicy fifo;
  android::ProcessManagerConfig cfg = tight_config();
  cfg.process_limit = 40;
  cfg.compress_instead_of_kill = true;
  android::ProcessManager pm(catalog, cfg, fifo);
  double t = 0.0;
  for (const auto& a : catalog) pm.launch(a.id, t += 1.0);
  ASSERT_GT(pm.compressed_count(), 0u);
  // Relaunch the first app (FIFO victim, so it was compressed first if
  // still resident).  Find any compressed resident app instead.
  android::AppId compressed_app = 0;
  for (const auto& a : catalog) {
    if (pm.is_running(a.id)) compressed_app = a.id;
  }
  const auto before = pm.metrics().decompressions;
  // Launch every resident app until a decompression happens.
  for (const auto& a : catalog) {
    if (pm.is_running(a.id)) pm.launch(a.id, t += 1.0);
    if (pm.metrics().decompressions > before) break;
  }
  (void)compressed_app;
  EXPECT_GT(pm.metrics().decompressions, before);
  EXPECT_GT(pm.metrics().compression_time_s, 0.0);
}

TEST(ProcessManager, PreloadMakesNextLaunchWarm) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  android::FifoKillPolicy fifo;
  android::ProcessManager pm(catalog, tight_config(), fifo);
  const android::AppId app = catalog[6].id;
  EXPECT_TRUE(pm.preload(app, 1.0));
  EXPECT_TRUE(pm.is_running(app));
  EXPECT_NE(pm.foreground(), app);  // preload does not steal focus
  const auto cost = pm.launch(app, 2.0);
  EXPECT_EQ(cost.bytes, 0u);  // warm start
  EXPECT_EQ(pm.metrics().warm_starts, 1u);
  EXPECT_EQ(pm.metrics().prefetches, 1u);
  EXPECT_GT(pm.metrics().prefetch_bytes, 0u);
  EXPECT_EQ(pm.metrics().loading_time_s, 0.0);  // no user-visible wait
}

TEST(ProcessManager, PreloadRefusesWhenItWouldEvict) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  android::FifoKillPolicy fifo;
  android::ProcessManagerConfig cfg = tight_config();
  android::ProcessManager pm(catalog, cfg, fifo);
  double t = 0.0;
  for (const auto& a : catalog) pm.launch(a.id, t += 1.0);  // fill budgets
  // Find a non-resident app; preloading it must fail (no headroom).
  for (const auto& a : catalog) {
    if (!pm.is_running(a.id)) {
      EXPECT_FALSE(pm.preload(a.id, t + 1.0));
      break;
    }
  }
  EXPECT_EQ(pm.metrics().prefetches, 0u);
}

TEST(ProcessManager, PreloadOfResidentAppIsNoop) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  android::FifoKillPolicy fifo;
  android::ProcessManager pm(catalog, tight_config(), fifo);
  pm.launch(catalog[0].id, 1.0);
  EXPECT_FALSE(pm.preload(catalog[0].id, 2.0));
}

TEST(ProcessManager, UnknownAppThrows) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  android::FifoKillPolicy fifo;
  android::ProcessManager pm(catalog, tight_config(), fifo);
  EXPECT_THROW(pm.launch(9999, 0.0), std::invalid_argument);
}

// -------------------------------------------------------------- personality

TEST(Personality, FourSubjectsWithPaperTraits) {
  const auto subjects = android::paper_subjects();
  ASSERT_EQ(subjects.size(), 4u);
  EXPECT_GT(subjects[0].scores.agreeableness, 0.8);  // subject 1
  EXPECT_EQ(subjects[2].emulated_emotion, affect::Emotion::kExcited);
  EXPECT_EQ(subjects[3].emulated_emotion, affect::Emotion::kCalm);
}

TEST(Personality, WeightsNormalized) {
  for (const auto& s : android::paper_subjects()) {
    double sum = 0.0;
    for (const auto& [c, w] : s.category_weights) {
      EXPECT_GE(w, 0.0);
      sum += w;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "subject " << s.subject_id;
  }
}

TEST(Personality, MessagingBrowsingDominates) {
  // Paper: "messaging and internet browsing dominate the daily app usage
  // with about 60% to 70% in total".
  for (const auto& s : android::paper_subjects()) {
    const double share = android::messaging_browsing_share(s);
    EXPECT_GE(share, 0.55) << "subject " << s.subject_id;
    EXPECT_LE(share, 0.75) << "subject " << s.subject_id;
  }
}

TEST(Personality, EmotionLookupCoversAllEmotions) {
  for (std::size_t i = 0; i < affect::kNumEmotions; ++i) {
    const auto& p =
        android::profile_for_emotion(static_cast<affect::Emotion>(i));
    EXPECT_GE(p.subject_id, 1);
    EXPECT_LE(p.subject_id, 4);
  }
  EXPECT_EQ(android::profile_for_emotion(affect::Emotion::kExcited).subject_id,
            3);
  EXPECT_EQ(android::profile_for_emotion(affect::Emotion::kCalm).subject_id,
            4);
}

// ------------------------------------------------------------------- monkey

TEST(Monkey, HistogramTracksProfileWeights) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  android::MonkeyScript monkey(catalog, {12.0, 5});
  const auto& s3 = android::subject(3);
  const auto hist = monkey.sample_category_histogram(s3, 4000);
  const double msg =
      static_cast<double>(hist.at(android::AppCategory::kMessaging)) / 4000.0;
  const auto expected = s3.category_weights.at(android::AppCategory::kMessaging);
  EXPECT_NEAR(msg, expected, 0.05);
  // Subject 3's signature categories appear.
  EXPECT_GT(hist.at(android::AppCategory::kCalling), 0u);
  EXPECT_GT(hist.at(android::AppCategory::kSharedTransport), 0u);
}

TEST(Monkey, EventsCoverTimelineInOrder) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  android::MonkeyScript monkey(catalog, {10.0, 1});
  affect::EmotionTimeline tl;
  tl.segments = {{0.0, 300.0, affect::Emotion::kExcited},
                 {300.0, 600.0, affect::Emotion::kCalm}};
  const auto events = monkey.generate(tl);
  ASSERT_GT(events.size(), 20u);
  double prev = -1.0;
  for (const auto& ev : events) {
    EXPECT_GT(ev.time_s, prev);
    prev = ev.time_s;
    EXPECT_LT(ev.time_s, 600.0);
    EXPECT_EQ(ev.emotion, tl.at(ev.time_s));
  }
}

TEST(Monkey, DeterministicForSeed) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  affect::EmotionTimeline tl;
  tl.segments = {{0.0, 200.0, affect::Emotion::kExcited}};
  android::MonkeyScript m1(catalog, {10.0, 77});
  android::MonkeyScript m2(catalog, {10.0, 77});
  const auto e1 = m1.generate(tl);
  const auto e2 = m2.generate(tl);
  ASSERT_EQ(e1.size(), e2.size());
  for (std::size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].app, e2[i].app);
  }
}

// -------------------------------------------------------------------- trace

TEST(Trace, SpansReconstructLifetimes) {
  android::Tracer tracer;
  tracer.record(1.0, android::TraceEventType::kColdStart, 10);
  tracer.record(5.0, android::TraceEventType::kKill, 10, "pressure");
  tracer.record(7.0, android::TraceEventType::kColdStart, 10);
  tracer.record(2.0, android::TraceEventType::kColdStart, 11);
  const auto spans = tracer.process_spans(10.0);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].app, 10u);
  EXPECT_EQ(spans[0].start_s, 1.0);
  EXPECT_EQ(spans[0].end_s, 5.0);
  EXPECT_EQ(spans[1].start_s, 7.0);
  EXPECT_EQ(spans[1].end_s, 10.0);  // still alive at trace end
  EXPECT_EQ(spans[2].app, 11u);
}

TEST(Trace, TimelineRenderShowsAliveAndDead) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  android::Tracer tracer;
  tracer.record(0.0, android::TraceEventType::kColdStart, catalog[0].id);
  tracer.record(50.0, android::TraceEventType::kKill, catalog[0].id);
  const auto s = tracer.render_timeline(catalog, 100.0, 40);
  EXPECT_NE(s.find('='), std::string::npos);
  EXPECT_NE(s.find('.'), std::string::npos);
  EXPECT_NE(s.find(catalog[0].name), std::string::npos);
}

TEST(Trace, CountByType) {
  android::Tracer tracer;
  tracer.record(0.0, android::TraceEventType::kColdStart, 1);
  tracer.record(1.0, android::TraceEventType::kKill, 1);
  tracer.record(2.0, android::TraceEventType::kKill, 2);
  EXPECT_EQ(tracer.count(android::TraceEventType::kKill), 2u);
  EXPECT_EQ(tracer.count(android::TraceEventType::kWarmStart), 0u);
}
