# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_synth_and_replay "/usr/bin/cmake" "-DCLI=/root/repo/build/tools/affectsys_cli" "-DWORKDIR=/root/repo/build/tools" "-P" "/root/repo/tools/cli_smoke.cmake")
set_tests_properties(cli_synth_and_replay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
