# Empty compiler generated dependencies file for affectsys_cli.
# This may be replaced when dependencies are built.
