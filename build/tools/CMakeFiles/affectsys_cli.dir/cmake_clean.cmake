file(REMOVE_RECURSE
  "CMakeFiles/affectsys_cli.dir/affectsys_cli.cpp.o"
  "CMakeFiles/affectsys_cli.dir/affectsys_cli.cpp.o.d"
  "affectsys_cli"
  "affectsys_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affectsys_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
