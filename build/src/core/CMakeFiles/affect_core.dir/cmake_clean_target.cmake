file(REMOVE_RECURSE
  "libaffect_core.a"
)
