# Empty compiler generated dependencies file for affect_core.
# This may be replaced when dependencies are built.
