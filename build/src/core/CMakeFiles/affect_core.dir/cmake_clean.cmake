file(REMOVE_RECURSE
  "CMakeFiles/affect_core.dir/affect_table.cpp.o"
  "CMakeFiles/affect_core.dir/affect_table.cpp.o.d"
  "CMakeFiles/affect_core.dir/controller.cpp.o"
  "CMakeFiles/affect_core.dir/controller.cpp.o.d"
  "CMakeFiles/affect_core.dir/emotional_policy.cpp.o"
  "CMakeFiles/affect_core.dir/emotional_policy.cpp.o.d"
  "CMakeFiles/affect_core.dir/manager_experiment.cpp.o"
  "CMakeFiles/affect_core.dir/manager_experiment.cpp.o.d"
  "CMakeFiles/affect_core.dir/simulator.cpp.o"
  "CMakeFiles/affect_core.dir/simulator.cpp.o.d"
  "libaffect_core.a"
  "libaffect_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affect_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
