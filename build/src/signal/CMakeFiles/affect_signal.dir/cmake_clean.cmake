file(REMOVE_RECURSE
  "CMakeFiles/affect_signal.dir/features.cpp.o"
  "CMakeFiles/affect_signal.dir/features.cpp.o.d"
  "CMakeFiles/affect_signal.dir/fft.cpp.o"
  "CMakeFiles/affect_signal.dir/fft.cpp.o.d"
  "CMakeFiles/affect_signal.dir/mel.cpp.o"
  "CMakeFiles/affect_signal.dir/mel.cpp.o.d"
  "CMakeFiles/affect_signal.dir/stats.cpp.o"
  "CMakeFiles/affect_signal.dir/stats.cpp.o.d"
  "CMakeFiles/affect_signal.dir/window.cpp.o"
  "CMakeFiles/affect_signal.dir/window.cpp.o.d"
  "libaffect_signal.a"
  "libaffect_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affect_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
