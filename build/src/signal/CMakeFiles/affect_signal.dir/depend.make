# Empty dependencies file for affect_signal.
# This may be replaced when dependencies are built.
