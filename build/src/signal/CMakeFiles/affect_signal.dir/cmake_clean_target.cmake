file(REMOVE_RECURSE
  "libaffect_signal.a"
)
