
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signal/features.cpp" "src/signal/CMakeFiles/affect_signal.dir/features.cpp.o" "gcc" "src/signal/CMakeFiles/affect_signal.dir/features.cpp.o.d"
  "/root/repo/src/signal/fft.cpp" "src/signal/CMakeFiles/affect_signal.dir/fft.cpp.o" "gcc" "src/signal/CMakeFiles/affect_signal.dir/fft.cpp.o.d"
  "/root/repo/src/signal/mel.cpp" "src/signal/CMakeFiles/affect_signal.dir/mel.cpp.o" "gcc" "src/signal/CMakeFiles/affect_signal.dir/mel.cpp.o.d"
  "/root/repo/src/signal/stats.cpp" "src/signal/CMakeFiles/affect_signal.dir/stats.cpp.o" "gcc" "src/signal/CMakeFiles/affect_signal.dir/stats.cpp.o.d"
  "/root/repo/src/signal/window.cpp" "src/signal/CMakeFiles/affect_signal.dir/window.cpp.o" "gcc" "src/signal/CMakeFiles/affect_signal.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
