
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/android/app.cpp" "src/android/CMakeFiles/affect_android.dir/app.cpp.o" "gcc" "src/android/CMakeFiles/affect_android.dir/app.cpp.o.d"
  "/root/repo/src/android/catalog.cpp" "src/android/CMakeFiles/affect_android.dir/catalog.cpp.o" "gcc" "src/android/CMakeFiles/affect_android.dir/catalog.cpp.o.d"
  "/root/repo/src/android/flash.cpp" "src/android/CMakeFiles/affect_android.dir/flash.cpp.o" "gcc" "src/android/CMakeFiles/affect_android.dir/flash.cpp.o.d"
  "/root/repo/src/android/monkey.cpp" "src/android/CMakeFiles/affect_android.dir/monkey.cpp.o" "gcc" "src/android/CMakeFiles/affect_android.dir/monkey.cpp.o.d"
  "/root/repo/src/android/personality.cpp" "src/android/CMakeFiles/affect_android.dir/personality.cpp.o" "gcc" "src/android/CMakeFiles/affect_android.dir/personality.cpp.o.d"
  "/root/repo/src/android/policy.cpp" "src/android/CMakeFiles/affect_android.dir/policy.cpp.o" "gcc" "src/android/CMakeFiles/affect_android.dir/policy.cpp.o.d"
  "/root/repo/src/android/process.cpp" "src/android/CMakeFiles/affect_android.dir/process.cpp.o" "gcc" "src/android/CMakeFiles/affect_android.dir/process.cpp.o.d"
  "/root/repo/src/android/replay.cpp" "src/android/CMakeFiles/affect_android.dir/replay.cpp.o" "gcc" "src/android/CMakeFiles/affect_android.dir/replay.cpp.o.d"
  "/root/repo/src/android/trace.cpp" "src/android/CMakeFiles/affect_android.dir/trace.cpp.o" "gcc" "src/android/CMakeFiles/affect_android.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/affect/CMakeFiles/affect_affect.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/affect_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/affect_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
