# Empty compiler generated dependencies file for affect_android.
# This may be replaced when dependencies are built.
