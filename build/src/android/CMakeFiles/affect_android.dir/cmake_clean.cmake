file(REMOVE_RECURSE
  "CMakeFiles/affect_android.dir/app.cpp.o"
  "CMakeFiles/affect_android.dir/app.cpp.o.d"
  "CMakeFiles/affect_android.dir/catalog.cpp.o"
  "CMakeFiles/affect_android.dir/catalog.cpp.o.d"
  "CMakeFiles/affect_android.dir/flash.cpp.o"
  "CMakeFiles/affect_android.dir/flash.cpp.o.d"
  "CMakeFiles/affect_android.dir/monkey.cpp.o"
  "CMakeFiles/affect_android.dir/monkey.cpp.o.d"
  "CMakeFiles/affect_android.dir/personality.cpp.o"
  "CMakeFiles/affect_android.dir/personality.cpp.o.d"
  "CMakeFiles/affect_android.dir/policy.cpp.o"
  "CMakeFiles/affect_android.dir/policy.cpp.o.d"
  "CMakeFiles/affect_android.dir/process.cpp.o"
  "CMakeFiles/affect_android.dir/process.cpp.o.d"
  "CMakeFiles/affect_android.dir/replay.cpp.o"
  "CMakeFiles/affect_android.dir/replay.cpp.o.d"
  "CMakeFiles/affect_android.dir/trace.cpp.o"
  "CMakeFiles/affect_android.dir/trace.cpp.o.d"
  "libaffect_android.a"
  "libaffect_android.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affect_android.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
