# Empty dependencies file for affect_android.
# This may be replaced when dependencies are built.
