file(REMOVE_RECURSE
  "libaffect_android.a"
)
