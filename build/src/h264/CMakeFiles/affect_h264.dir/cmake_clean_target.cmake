file(REMOVE_RECURSE
  "libaffect_h264.a"
)
