
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/h264/arith.cpp" "src/h264/CMakeFiles/affect_h264.dir/arith.cpp.o" "gcc" "src/h264/CMakeFiles/affect_h264.dir/arith.cpp.o.d"
  "/root/repo/src/h264/bitstream.cpp" "src/h264/CMakeFiles/affect_h264.dir/bitstream.cpp.o" "gcc" "src/h264/CMakeFiles/affect_h264.dir/bitstream.cpp.o.d"
  "/root/repo/src/h264/deblock.cpp" "src/h264/CMakeFiles/affect_h264.dir/deblock.cpp.o" "gcc" "src/h264/CMakeFiles/affect_h264.dir/deblock.cpp.o.d"
  "/root/repo/src/h264/decoder.cpp" "src/h264/CMakeFiles/affect_h264.dir/decoder.cpp.o" "gcc" "src/h264/CMakeFiles/affect_h264.dir/decoder.cpp.o.d"
  "/root/repo/src/h264/encoder.cpp" "src/h264/CMakeFiles/affect_h264.dir/encoder.cpp.o" "gcc" "src/h264/CMakeFiles/affect_h264.dir/encoder.cpp.o.d"
  "/root/repo/src/h264/entropy.cpp" "src/h264/CMakeFiles/affect_h264.dir/entropy.cpp.o" "gcc" "src/h264/CMakeFiles/affect_h264.dir/entropy.cpp.o.d"
  "/root/repo/src/h264/frame.cpp" "src/h264/CMakeFiles/affect_h264.dir/frame.cpp.o" "gcc" "src/h264/CMakeFiles/affect_h264.dir/frame.cpp.o.d"
  "/root/repo/src/h264/inter.cpp" "src/h264/CMakeFiles/affect_h264.dir/inter.cpp.o" "gcc" "src/h264/CMakeFiles/affect_h264.dir/inter.cpp.o.d"
  "/root/repo/src/h264/intra.cpp" "src/h264/CMakeFiles/affect_h264.dir/intra.cpp.o" "gcc" "src/h264/CMakeFiles/affect_h264.dir/intra.cpp.o.d"
  "/root/repo/src/h264/intra4.cpp" "src/h264/CMakeFiles/affect_h264.dir/intra4.cpp.o" "gcc" "src/h264/CMakeFiles/affect_h264.dir/intra4.cpp.o.d"
  "/root/repo/src/h264/nal.cpp" "src/h264/CMakeFiles/affect_h264.dir/nal.cpp.o" "gcc" "src/h264/CMakeFiles/affect_h264.dir/nal.cpp.o.d"
  "/root/repo/src/h264/quality.cpp" "src/h264/CMakeFiles/affect_h264.dir/quality.cpp.o" "gcc" "src/h264/CMakeFiles/affect_h264.dir/quality.cpp.o.d"
  "/root/repo/src/h264/ratecontrol.cpp" "src/h264/CMakeFiles/affect_h264.dir/ratecontrol.cpp.o" "gcc" "src/h264/CMakeFiles/affect_h264.dir/ratecontrol.cpp.o.d"
  "/root/repo/src/h264/sei.cpp" "src/h264/CMakeFiles/affect_h264.dir/sei.cpp.o" "gcc" "src/h264/CMakeFiles/affect_h264.dir/sei.cpp.o.d"
  "/root/repo/src/h264/testvideo.cpp" "src/h264/CMakeFiles/affect_h264.dir/testvideo.cpp.o" "gcc" "src/h264/CMakeFiles/affect_h264.dir/testvideo.cpp.o.d"
  "/root/repo/src/h264/transform.cpp" "src/h264/CMakeFiles/affect_h264.dir/transform.cpp.o" "gcc" "src/h264/CMakeFiles/affect_h264.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
