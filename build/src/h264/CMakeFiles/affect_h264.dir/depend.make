# Empty dependencies file for affect_h264.
# This may be replaced when dependencies are built.
