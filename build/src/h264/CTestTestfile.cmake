# CMake generated Testfile for 
# Source directory: /root/repo/src/h264
# Build directory: /root/repo/build/src/h264
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
