file(REMOVE_RECURSE
  "CMakeFiles/affect_nn.dir/activation.cpp.o"
  "CMakeFiles/affect_nn.dir/activation.cpp.o.d"
  "CMakeFiles/affect_nn.dir/conv1d.cpp.o"
  "CMakeFiles/affect_nn.dir/conv1d.cpp.o.d"
  "CMakeFiles/affect_nn.dir/dense.cpp.o"
  "CMakeFiles/affect_nn.dir/dense.cpp.o.d"
  "CMakeFiles/affect_nn.dir/dropout.cpp.o"
  "CMakeFiles/affect_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/affect_nn.dir/gru.cpp.o"
  "CMakeFiles/affect_nn.dir/gru.cpp.o.d"
  "CMakeFiles/affect_nn.dir/loss.cpp.o"
  "CMakeFiles/affect_nn.dir/loss.cpp.o.d"
  "CMakeFiles/affect_nn.dir/lstm.cpp.o"
  "CMakeFiles/affect_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/affect_nn.dir/matrix.cpp.o"
  "CMakeFiles/affect_nn.dir/matrix.cpp.o.d"
  "CMakeFiles/affect_nn.dir/model.cpp.o"
  "CMakeFiles/affect_nn.dir/model.cpp.o.d"
  "CMakeFiles/affect_nn.dir/optimizer.cpp.o"
  "CMakeFiles/affect_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/affect_nn.dir/pooling.cpp.o"
  "CMakeFiles/affect_nn.dir/pooling.cpp.o.d"
  "CMakeFiles/affect_nn.dir/quantize.cpp.o"
  "CMakeFiles/affect_nn.dir/quantize.cpp.o.d"
  "CMakeFiles/affect_nn.dir/trainer.cpp.o"
  "CMakeFiles/affect_nn.dir/trainer.cpp.o.d"
  "libaffect_nn.a"
  "libaffect_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affect_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
