
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/nn/CMakeFiles/affect_nn.dir/activation.cpp.o" "gcc" "src/nn/CMakeFiles/affect_nn.dir/activation.cpp.o.d"
  "/root/repo/src/nn/conv1d.cpp" "src/nn/CMakeFiles/affect_nn.dir/conv1d.cpp.o" "gcc" "src/nn/CMakeFiles/affect_nn.dir/conv1d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/affect_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/affect_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/affect_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/affect_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/gru.cpp" "src/nn/CMakeFiles/affect_nn.dir/gru.cpp.o" "gcc" "src/nn/CMakeFiles/affect_nn.dir/gru.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/affect_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/affect_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/nn/CMakeFiles/affect_nn.dir/lstm.cpp.o" "gcc" "src/nn/CMakeFiles/affect_nn.dir/lstm.cpp.o.d"
  "/root/repo/src/nn/matrix.cpp" "src/nn/CMakeFiles/affect_nn.dir/matrix.cpp.o" "gcc" "src/nn/CMakeFiles/affect_nn.dir/matrix.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/affect_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/affect_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/affect_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/affect_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/nn/CMakeFiles/affect_nn.dir/pooling.cpp.o" "gcc" "src/nn/CMakeFiles/affect_nn.dir/pooling.cpp.o.d"
  "/root/repo/src/nn/quantize.cpp" "src/nn/CMakeFiles/affect_nn.dir/quantize.cpp.o" "gcc" "src/nn/CMakeFiles/affect_nn.dir/quantize.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/affect_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/affect_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/signal/CMakeFiles/affect_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
