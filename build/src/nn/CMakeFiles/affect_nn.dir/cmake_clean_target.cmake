file(REMOVE_RECURSE
  "libaffect_nn.a"
)
