# Empty compiler generated dependencies file for affect_nn.
# This may be replaced when dependencies are built.
