# Empty dependencies file for affect_nn.
# This may be replaced when dependencies are built.
