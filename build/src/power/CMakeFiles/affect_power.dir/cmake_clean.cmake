file(REMOVE_RECURSE
  "CMakeFiles/affect_power.dir/area.cpp.o"
  "CMakeFiles/affect_power.dir/area.cpp.o.d"
  "CMakeFiles/affect_power.dir/model.cpp.o"
  "CMakeFiles/affect_power.dir/model.cpp.o.d"
  "CMakeFiles/affect_power.dir/offload.cpp.o"
  "CMakeFiles/affect_power.dir/offload.cpp.o.d"
  "libaffect_power.a"
  "libaffect_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affect_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
