# Empty compiler generated dependencies file for affect_power.
# This may be replaced when dependencies are built.
