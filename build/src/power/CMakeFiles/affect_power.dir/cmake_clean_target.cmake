file(REMOVE_RECURSE
  "libaffect_power.a"
)
