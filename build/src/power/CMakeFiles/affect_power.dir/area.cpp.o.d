src/power/CMakeFiles/affect_power.dir/area.cpp.o: \
 /root/repo/src/power/area.cpp /usr/include/stdc-predef.h \
 /root/repo/src/power/area.hpp
