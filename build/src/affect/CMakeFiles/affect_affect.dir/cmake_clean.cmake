file(REMOVE_RECURSE
  "CMakeFiles/affect_affect.dir/classifier.cpp.o"
  "CMakeFiles/affect_affect.dir/classifier.cpp.o.d"
  "CMakeFiles/affect_affect.dir/dataset.cpp.o"
  "CMakeFiles/affect_affect.dir/dataset.cpp.o.d"
  "CMakeFiles/affect_affect.dir/ecg.cpp.o"
  "CMakeFiles/affect_affect.dir/ecg.cpp.o.d"
  "CMakeFiles/affect_affect.dir/emotion.cpp.o"
  "CMakeFiles/affect_affect.dir/emotion.cpp.o.d"
  "CMakeFiles/affect_affect.dir/features.cpp.o"
  "CMakeFiles/affect_affect.dir/features.cpp.o.d"
  "CMakeFiles/affect_affect.dir/imu.cpp.o"
  "CMakeFiles/affect_affect.dir/imu.cpp.o.d"
  "CMakeFiles/affect_affect.dir/ppg.cpp.o"
  "CMakeFiles/affect_affect.dir/ppg.cpp.o.d"
  "CMakeFiles/affect_affect.dir/realtime.cpp.o"
  "CMakeFiles/affect_affect.dir/realtime.cpp.o.d"
  "CMakeFiles/affect_affect.dir/regressor.cpp.o"
  "CMakeFiles/affect_affect.dir/regressor.cpp.o.d"
  "CMakeFiles/affect_affect.dir/scl.cpp.o"
  "CMakeFiles/affect_affect.dir/scl.cpp.o.d"
  "CMakeFiles/affect_affect.dir/scl_nn.cpp.o"
  "CMakeFiles/affect_affect.dir/scl_nn.cpp.o.d"
  "CMakeFiles/affect_affect.dir/signal_io.cpp.o"
  "CMakeFiles/affect_affect.dir/signal_io.cpp.o.d"
  "CMakeFiles/affect_affect.dir/speech_synth.cpp.o"
  "CMakeFiles/affect_affect.dir/speech_synth.cpp.o.d"
  "CMakeFiles/affect_affect.dir/stream.cpp.o"
  "CMakeFiles/affect_affect.dir/stream.cpp.o.d"
  "CMakeFiles/affect_affect.dir/vad.cpp.o"
  "CMakeFiles/affect_affect.dir/vad.cpp.o.d"
  "libaffect_affect.a"
  "libaffect_affect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affect_affect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
