
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/affect/classifier.cpp" "src/affect/CMakeFiles/affect_affect.dir/classifier.cpp.o" "gcc" "src/affect/CMakeFiles/affect_affect.dir/classifier.cpp.o.d"
  "/root/repo/src/affect/dataset.cpp" "src/affect/CMakeFiles/affect_affect.dir/dataset.cpp.o" "gcc" "src/affect/CMakeFiles/affect_affect.dir/dataset.cpp.o.d"
  "/root/repo/src/affect/ecg.cpp" "src/affect/CMakeFiles/affect_affect.dir/ecg.cpp.o" "gcc" "src/affect/CMakeFiles/affect_affect.dir/ecg.cpp.o.d"
  "/root/repo/src/affect/emotion.cpp" "src/affect/CMakeFiles/affect_affect.dir/emotion.cpp.o" "gcc" "src/affect/CMakeFiles/affect_affect.dir/emotion.cpp.o.d"
  "/root/repo/src/affect/features.cpp" "src/affect/CMakeFiles/affect_affect.dir/features.cpp.o" "gcc" "src/affect/CMakeFiles/affect_affect.dir/features.cpp.o.d"
  "/root/repo/src/affect/imu.cpp" "src/affect/CMakeFiles/affect_affect.dir/imu.cpp.o" "gcc" "src/affect/CMakeFiles/affect_affect.dir/imu.cpp.o.d"
  "/root/repo/src/affect/ppg.cpp" "src/affect/CMakeFiles/affect_affect.dir/ppg.cpp.o" "gcc" "src/affect/CMakeFiles/affect_affect.dir/ppg.cpp.o.d"
  "/root/repo/src/affect/realtime.cpp" "src/affect/CMakeFiles/affect_affect.dir/realtime.cpp.o" "gcc" "src/affect/CMakeFiles/affect_affect.dir/realtime.cpp.o.d"
  "/root/repo/src/affect/regressor.cpp" "src/affect/CMakeFiles/affect_affect.dir/regressor.cpp.o" "gcc" "src/affect/CMakeFiles/affect_affect.dir/regressor.cpp.o.d"
  "/root/repo/src/affect/scl.cpp" "src/affect/CMakeFiles/affect_affect.dir/scl.cpp.o" "gcc" "src/affect/CMakeFiles/affect_affect.dir/scl.cpp.o.d"
  "/root/repo/src/affect/scl_nn.cpp" "src/affect/CMakeFiles/affect_affect.dir/scl_nn.cpp.o" "gcc" "src/affect/CMakeFiles/affect_affect.dir/scl_nn.cpp.o.d"
  "/root/repo/src/affect/signal_io.cpp" "src/affect/CMakeFiles/affect_affect.dir/signal_io.cpp.o" "gcc" "src/affect/CMakeFiles/affect_affect.dir/signal_io.cpp.o.d"
  "/root/repo/src/affect/speech_synth.cpp" "src/affect/CMakeFiles/affect_affect.dir/speech_synth.cpp.o" "gcc" "src/affect/CMakeFiles/affect_affect.dir/speech_synth.cpp.o.d"
  "/root/repo/src/affect/stream.cpp" "src/affect/CMakeFiles/affect_affect.dir/stream.cpp.o" "gcc" "src/affect/CMakeFiles/affect_affect.dir/stream.cpp.o.d"
  "/root/repo/src/affect/vad.cpp" "src/affect/CMakeFiles/affect_affect.dir/vad.cpp.o" "gcc" "src/affect/CMakeFiles/affect_affect.dir/vad.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/signal/CMakeFiles/affect_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/affect_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
