# Empty dependencies file for affect_affect.
# This may be replaced when dependencies are built.
