file(REMOVE_RECURSE
  "libaffect_affect.a"
)
