file(REMOVE_RECURSE
  "libaffect_adaptive.a"
)
