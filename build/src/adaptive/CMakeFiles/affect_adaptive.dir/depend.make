# Empty dependencies file for affect_adaptive.
# This may be replaced when dependencies are built.
