file(REMOVE_RECURSE
  "CMakeFiles/affect_adaptive.dir/input_selector.cpp.o"
  "CMakeFiles/affect_adaptive.dir/input_selector.cpp.o.d"
  "CMakeFiles/affect_adaptive.dir/modes.cpp.o"
  "CMakeFiles/affect_adaptive.dir/modes.cpp.o.d"
  "CMakeFiles/affect_adaptive.dir/playback.cpp.o"
  "CMakeFiles/affect_adaptive.dir/playback.cpp.o.d"
  "CMakeFiles/affect_adaptive.dir/prestore.cpp.o"
  "CMakeFiles/affect_adaptive.dir/prestore.cpp.o.d"
  "libaffect_adaptive.a"
  "libaffect_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affect_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
