
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adaptive/input_selector.cpp" "src/adaptive/CMakeFiles/affect_adaptive.dir/input_selector.cpp.o" "gcc" "src/adaptive/CMakeFiles/affect_adaptive.dir/input_selector.cpp.o.d"
  "/root/repo/src/adaptive/modes.cpp" "src/adaptive/CMakeFiles/affect_adaptive.dir/modes.cpp.o" "gcc" "src/adaptive/CMakeFiles/affect_adaptive.dir/modes.cpp.o.d"
  "/root/repo/src/adaptive/playback.cpp" "src/adaptive/CMakeFiles/affect_adaptive.dir/playback.cpp.o" "gcc" "src/adaptive/CMakeFiles/affect_adaptive.dir/playback.cpp.o.d"
  "/root/repo/src/adaptive/prestore.cpp" "src/adaptive/CMakeFiles/affect_adaptive.dir/prestore.cpp.o" "gcc" "src/adaptive/CMakeFiles/affect_adaptive.dir/prestore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/h264/CMakeFiles/affect_h264.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/affect_power.dir/DependInfo.cmake"
  "/root/repo/build/src/affect/CMakeFiles/affect_affect.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/affect_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/affect_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
