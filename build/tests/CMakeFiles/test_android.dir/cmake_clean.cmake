file(REMOVE_RECURSE
  "CMakeFiles/test_android.dir/test_android.cpp.o"
  "CMakeFiles/test_android.dir/test_android.cpp.o.d"
  "test_android"
  "test_android.pdb"
  "test_android[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_android.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
