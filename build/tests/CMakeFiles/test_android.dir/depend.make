# Empty dependencies file for test_android.
# This may be replaced when dependencies are built.
