# Empty compiler generated dependencies file for test_affect.
# This may be replaced when dependencies are built.
