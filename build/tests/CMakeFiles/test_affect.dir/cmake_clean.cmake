file(REMOVE_RECURSE
  "CMakeFiles/test_affect.dir/test_affect.cpp.o"
  "CMakeFiles/test_affect.dir/test_affect.cpp.o.d"
  "test_affect"
  "test_affect.pdb"
  "test_affect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_affect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
