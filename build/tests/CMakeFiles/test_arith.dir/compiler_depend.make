# Empty compiler generated dependencies file for test_arith.
# This may be replaced when dependencies are built.
