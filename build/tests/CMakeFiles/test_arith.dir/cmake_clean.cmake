file(REMOVE_RECURSE
  "CMakeFiles/test_arith.dir/test_arith.cpp.o"
  "CMakeFiles/test_arith.dir/test_arith.cpp.o.d"
  "test_arith"
  "test_arith.pdb"
  "test_arith[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
