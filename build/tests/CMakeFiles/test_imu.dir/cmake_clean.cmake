file(REMOVE_RECURSE
  "CMakeFiles/test_imu.dir/test_imu.cpp.o"
  "CMakeFiles/test_imu.dir/test_imu.cpp.o.d"
  "test_imu"
  "test_imu.pdb"
  "test_imu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_imu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
