# Empty dependencies file for test_imu.
# This may be replaced when dependencies are built.
