# Empty compiler generated dependencies file for test_ppg.
# This may be replaced when dependencies are built.
