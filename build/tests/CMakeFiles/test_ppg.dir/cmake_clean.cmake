file(REMOVE_RECURSE
  "CMakeFiles/test_ppg.dir/test_ppg.cpp.o"
  "CMakeFiles/test_ppg.dir/test_ppg.cpp.o.d"
  "test_ppg"
  "test_ppg.pdb"
  "test_ppg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ppg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
