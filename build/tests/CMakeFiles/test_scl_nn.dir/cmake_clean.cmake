file(REMOVE_RECURSE
  "CMakeFiles/test_scl_nn.dir/test_scl_nn.cpp.o"
  "CMakeFiles/test_scl_nn.dir/test_scl_nn.cpp.o.d"
  "test_scl_nn"
  "test_scl_nn.pdb"
  "test_scl_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
