# Empty compiler generated dependencies file for test_scl_nn.
# This may be replaced when dependencies are built.
