file(REMOVE_RECURSE
  "CMakeFiles/test_sweeps.dir/test_sweeps.cpp.o"
  "CMakeFiles/test_sweeps.dir/test_sweeps.cpp.o.d"
  "test_sweeps"
  "test_sweeps.pdb"
  "test_sweeps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
