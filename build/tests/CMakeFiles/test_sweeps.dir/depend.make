# Empty dependencies file for test_sweeps.
# This may be replaced when dependencies are built.
