file(REMOVE_RECURSE
  "CMakeFiles/test_h264_robustness.dir/test_h264_robustness.cpp.o"
  "CMakeFiles/test_h264_robustness.dir/test_h264_robustness.cpp.o.d"
  "test_h264_robustness"
  "test_h264_robustness.pdb"
  "test_h264_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_h264_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
