# Empty dependencies file for test_h264_robustness.
# This may be replaced when dependencies are built.
