# Empty dependencies file for test_adaptive.
# This may be replaced when dependencies are built.
