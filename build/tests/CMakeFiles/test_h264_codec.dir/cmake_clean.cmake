file(REMOVE_RECURSE
  "CMakeFiles/test_h264_codec.dir/test_h264_codec.cpp.o"
  "CMakeFiles/test_h264_codec.dir/test_h264_codec.cpp.o.d"
  "test_h264_codec"
  "test_h264_codec.pdb"
  "test_h264_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_h264_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
