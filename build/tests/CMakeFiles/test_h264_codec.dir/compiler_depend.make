# Empty compiler generated dependencies file for test_h264_codec.
# This may be replaced when dependencies are built.
