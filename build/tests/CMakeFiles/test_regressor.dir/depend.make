# Empty dependencies file for test_regressor.
# This may be replaced when dependencies are built.
