file(REMOVE_RECURSE
  "CMakeFiles/test_regressor.dir/test_regressor.cpp.o"
  "CMakeFiles/test_regressor.dir/test_regressor.cpp.o.d"
  "test_regressor"
  "test_regressor.pdb"
  "test_regressor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regressor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
