
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_nn.cpp" "tests/CMakeFiles/test_nn.dir/test_nn.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_nn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/affect_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/affect_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
