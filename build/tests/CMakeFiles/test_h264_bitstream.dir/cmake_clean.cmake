file(REMOVE_RECURSE
  "CMakeFiles/test_h264_bitstream.dir/test_h264_bitstream.cpp.o"
  "CMakeFiles/test_h264_bitstream.dir/test_h264_bitstream.cpp.o.d"
  "test_h264_bitstream"
  "test_h264_bitstream.pdb"
  "test_h264_bitstream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_h264_bitstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
