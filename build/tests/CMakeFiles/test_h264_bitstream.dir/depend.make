# Empty dependencies file for test_h264_bitstream.
# This may be replaced when dependencies are built.
