file(REMOVE_RECURSE
  "CMakeFiles/test_realtime.dir/test_realtime.cpp.o"
  "CMakeFiles/test_realtime.dir/test_realtime.cpp.o.d"
  "test_realtime"
  "test_realtime.pdb"
  "test_realtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_realtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
