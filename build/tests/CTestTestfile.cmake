# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_signal[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_affect[1]_include.cmake")
include("/root/repo/build/tests/test_h264_bitstream[1]_include.cmake")
include("/root/repo/build/tests/test_h264_codec[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_android[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_h264_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_ppg[1]_include.cmake")
include("/root/repo/build/tests/test_regressor[1]_include.cmake")
include("/root/repo/build/tests/test_realtime[1]_include.cmake")
include("/root/repo/build/tests/test_arith[1]_include.cmake")
include("/root/repo/build/tests/test_scl_nn[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_imu[1]_include.cmake")
include("/root/repo/build/tests/test_replay[1]_include.cmake")
include("/root/repo/build/tests/test_golden[1]_include.cmake")
include("/root/repo/build/tests/test_sweeps[1]_include.cmake")
