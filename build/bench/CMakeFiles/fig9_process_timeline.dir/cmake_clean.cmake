file(REMOVE_RECURSE
  "CMakeFiles/fig9_process_timeline.dir/fig9_process_timeline.cpp.o"
  "CMakeFiles/fig9_process_timeline.dir/fig9_process_timeline.cpp.o.d"
  "fig9_process_timeline"
  "fig9_process_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_process_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
