# Empty compiler generated dependencies file for fig9_process_timeline.
# This may be replaced when dependencies are built.
