# Empty dependencies file for ablation_fusion.
# This may be replaced when dependencies are built.
