# Empty compiler generated dependencies file for ablation_offload.
# This may be replaced when dependencies are built.
