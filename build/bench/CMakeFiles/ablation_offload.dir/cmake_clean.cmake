file(REMOVE_RECURSE
  "CMakeFiles/ablation_offload.dir/ablation_offload.cpp.o"
  "CMakeFiles/ablation_offload.dir/ablation_offload.cpp.o.d"
  "ablation_offload"
  "ablation_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
