# Empty compiler generated dependencies file for ablation_models.
# This may be replaced when dependencies are built.
