file(REMOVE_RECURSE
  "CMakeFiles/ablation_models.dir/ablation_models.cpp.o"
  "CMakeFiles/ablation_models.dir/ablation_models.cpp.o.d"
  "ablation_models"
  "ablation_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
