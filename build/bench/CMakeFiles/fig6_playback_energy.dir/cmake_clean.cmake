file(REMOVE_RECURSE
  "CMakeFiles/fig6_playback_energy.dir/fig6_playback_energy.cpp.o"
  "CMakeFiles/fig6_playback_energy.dir/fig6_playback_energy.cpp.o.d"
  "fig6_playback_energy"
  "fig6_playback_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_playback_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
