# Empty dependencies file for fig6_playback_energy.
# This may be replaced when dependencies are built.
