# Empty dependencies file for ablation_entropy.
# This may be replaced when dependencies are built.
