file(REMOVE_RECURSE
  "CMakeFiles/ablation_entropy.dir/ablation_entropy.cpp.o"
  "CMakeFiles/ablation_entropy.dir/ablation_entropy.cpp.o.d"
  "ablation_entropy"
  "ablation_entropy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
