file(REMOVE_RECURSE
  "CMakeFiles/ablation_selector_sweep.dir/ablation_selector_sweep.cpp.o"
  "CMakeFiles/ablation_selector_sweep.dir/ablation_selector_sweep.cpp.o.d"
  "ablation_selector_sweep"
  "ablation_selector_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_selector_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
