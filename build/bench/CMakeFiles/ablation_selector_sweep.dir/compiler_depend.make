# Empty compiler generated dependencies file for ablation_selector_sweep.
# This may be replaced when dependencies are built.
