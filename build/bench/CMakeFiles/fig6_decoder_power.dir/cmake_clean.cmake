file(REMOVE_RECURSE
  "CMakeFiles/fig6_decoder_power.dir/fig6_decoder_power.cpp.o"
  "CMakeFiles/fig6_decoder_power.dir/fig6_decoder_power.cpp.o.d"
  "fig6_decoder_power"
  "fig6_decoder_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_decoder_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
