# Empty compiler generated dependencies file for fig6_decoder_power.
# This may be replaced when dependencies are built.
