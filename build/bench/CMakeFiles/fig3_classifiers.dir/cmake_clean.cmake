file(REMOVE_RECURSE
  "CMakeFiles/fig3_classifiers.dir/fig3_classifiers.cpp.o"
  "CMakeFiles/fig3_classifiers.dir/fig3_classifiers.cpp.o.d"
  "fig3_classifiers"
  "fig3_classifiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_classifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
