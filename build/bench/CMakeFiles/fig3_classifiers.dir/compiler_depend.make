# Empty compiler generated dependencies file for fig3_classifiers.
# This may be replaced when dependencies are built.
