# Empty compiler generated dependencies file for ablation_smoothing.
# This may be replaced when dependencies are built.
