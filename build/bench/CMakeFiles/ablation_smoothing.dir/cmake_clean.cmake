file(REMOVE_RECURSE
  "CMakeFiles/ablation_smoothing.dir/ablation_smoothing.cpp.o"
  "CMakeFiles/ablation_smoothing.dir/ablation_smoothing.cpp.o.d"
  "ablation_smoothing"
  "ablation_smoothing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_smoothing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
