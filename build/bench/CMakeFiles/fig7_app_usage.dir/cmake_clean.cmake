file(REMOVE_RECURSE
  "CMakeFiles/fig7_app_usage.dir/fig7_app_usage.cpp.o"
  "CMakeFiles/fig7_app_usage.dir/fig7_app_usage.cpp.o.d"
  "fig7_app_usage"
  "fig7_app_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_app_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
