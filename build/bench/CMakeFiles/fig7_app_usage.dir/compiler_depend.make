# Empty compiler generated dependencies file for fig7_app_usage.
# This may be replaced when dependencies are built.
