file(REMOVE_RECURSE
  "CMakeFiles/fig10_memory_loading.dir/fig10_memory_loading.cpp.o"
  "CMakeFiles/fig10_memory_loading.dir/fig10_memory_loading.cpp.o.d"
  "fig10_memory_loading"
  "fig10_memory_loading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_memory_loading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
