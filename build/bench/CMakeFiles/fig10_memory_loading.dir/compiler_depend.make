# Empty compiler generated dependencies file for fig10_memory_loading.
# This may be replaced when dependencies are built.
