# Empty dependencies file for ablation_prefetch.
# This may be replaced when dependencies are built.
