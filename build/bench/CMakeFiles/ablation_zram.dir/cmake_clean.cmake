file(REMOVE_RECURSE
  "CMakeFiles/ablation_zram.dir/ablation_zram.cpp.o"
  "CMakeFiles/ablation_zram.dir/ablation_zram.cpp.o.d"
  "ablation_zram"
  "ablation_zram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_zram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
