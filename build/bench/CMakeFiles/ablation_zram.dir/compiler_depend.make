# Empty compiler generated dependencies file for ablation_zram.
# This may be replaced when dependencies are built.
