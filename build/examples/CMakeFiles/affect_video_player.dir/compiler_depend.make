# Empty compiler generated dependencies file for affect_video_player.
# This may be replaced when dependencies are built.
