file(REMOVE_RECURSE
  "CMakeFiles/affect_video_player.dir/affect_video_player.cpp.o"
  "CMakeFiles/affect_video_player.dir/affect_video_player.cpp.o.d"
  "affect_video_player"
  "affect_video_player.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affect_video_player.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
