file(REMOVE_RECURSE
  "CMakeFiles/train_affect_classifier.dir/train_affect_classifier.cpp.o"
  "CMakeFiles/train_affect_classifier.dir/train_affect_classifier.cpp.o.d"
  "train_affect_classifier"
  "train_affect_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_affect_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
