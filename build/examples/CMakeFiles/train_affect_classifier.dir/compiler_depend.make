# Empty compiler generated dependencies file for train_affect_classifier.
# This may be replaced when dependencies are built.
