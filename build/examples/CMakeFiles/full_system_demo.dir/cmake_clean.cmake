file(REMOVE_RECURSE
  "CMakeFiles/full_system_demo.dir/full_system_demo.cpp.o"
  "CMakeFiles/full_system_demo.dir/full_system_demo.cpp.o.d"
  "full_system_demo"
  "full_system_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_system_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
