# Empty dependencies file for full_system_demo.
# This may be replaced when dependencies are built.
