file(REMOVE_RECURSE
  "CMakeFiles/emotional_app_manager.dir/emotional_app_manager.cpp.o"
  "CMakeFiles/emotional_app_manager.dir/emotional_app_manager.cpp.o.d"
  "emotional_app_manager"
  "emotional_app_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emotional_app_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
