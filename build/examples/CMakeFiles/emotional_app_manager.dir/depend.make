# Empty dependencies file for emotional_app_manager.
# This may be replaced when dependencies are built.
