// Full-system demo: one 40-minute biosignal session drives the video
// decoder AND the app manager through a single controller — the complete
// Fig 4 architecture in one run, with classification errors propagating
// into both subsystems' measured savings.
//
// Usage: full_system_demo [scl_seed]
#include <cstdio>
#include <cstdlib>

#include "core/simulator.hpp"

using namespace affectsys;

int main(int argc, char** argv) {
  core::SystemScenarioConfig cfg;
  if (argc > 1) cfg.scl.seed = static_cast<unsigned>(std::atoi(argv[1]));

  std::printf("profiling the adaptive decoder...\n");
  adaptive::AdaptiveDecoderSystem dec(cfg.playback);

  std::printf("running the 40-minute session (SCL seed %u)...\n\n",
              cfg.scl.seed);
  const auto report = core::run_system_scenario(cfg, dec);

  std::printf("--- emotion sensing ---\n");
  std::printf("raw window accuracy: %.1f%%   stable transitions: %zu\n",
              100.0 * report.window_accuracy, report.mode_changes);
  for (const auto& seg : report.estimated_timeline.segments) {
    std::printf("  %5.1f - %5.1f min  %s\n", seg.start_s / 60.0,
                seg.end_s / 60.0, affect::emotion_name(seg.emotion).data());
  }

  std::printf("\n--- video subsystem ---\n");
  for (const auto& seg : report.playback.segments) {
    std::printf("  %5.1f - %5.1f min  %-13s -> %-16s %8.2f mJ\n",
                seg.start_s / 60.0, seg.end_s / 60.0,
                affect::emotion_name(seg.emotion).data(),
                adaptive::mode_name(seg.mode).data(), seg.energy_nj / 1e6);
  }
  std::printf("playback energy saving: %.1f%%\n",
              100.0 * report.playback.energy_saving());

  std::printf("\n--- app/memory subsystem (manager sees estimates only) ---\n");
  std::printf("memory loaded: %.2f GB -> %.2f GB  (%.1f%% saved)\n",
              static_cast<double>(report.app_baseline.memory_loaded_bytes) / 1e9,
              static_cast<double>(report.app_proposed.memory_loaded_bytes) / 1e9,
              100.0 * report.app_memory_saving());
  std::printf("loading time:  %.1f s -> %.1f s  (%.1f%% saved)\n",
              report.app_baseline.loading_time_s,
              report.app_proposed.loading_time_s,
              100.0 * report.app_time_saving());
  return 0;
}
