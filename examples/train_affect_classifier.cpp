// Trains an affect classifier on a synthesized corpus, quantizes it to
// 8 bits, and saves both models to disk — the offline half of deploying
// the system to a wearable.
//
// Usage: train_affect_classifier [mlp|cnn|lstm] [epochs] [out.bin]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "affect/classifier.hpp"
#include "nn/quantize.hpp"

using namespace affectsys;

int main(int argc, char** argv) {
  nn::ModelKind kind = nn::ModelKind::kLstm;
  if (argc > 1) {
    if (!std::strcmp(argv[1], "mlp")) kind = nn::ModelKind::kMlp;
    else if (!std::strcmp(argv[1], "cnn")) kind = nn::ModelKind::kCnn;
    else if (!std::strcmp(argv[1], "lstm")) kind = nn::ModelKind::kLstm;
    else {
      std::fprintf(stderr, "unknown model kind '%s'\n", argv[1]);
      return 1;
    }
  }
  const std::size_t epochs = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  const char* out_path = argc > 3 ? argv[3] : "affect_model.bin";

  // A small EMOVO-geometry corpus keeps this example to ~a minute.
  affect::CorpusProfile prof = affect::emovo_profile();
  prof.utterances_per_speaker_emotion = 4;

  const affect::FeatureConfig fc = affect::default_feature_config();
  const affect::FeatureExtractor fx(fc);
  std::printf("synthesizing %s corpus (%d speakers x %zu emotions)...\n",
              prof.name.c_str(), prof.num_speakers, prof.emotions.size());
  const auto corpus = affect::build_corpus(prof, fx, 7);

  nn::Dataset train_set, test_set;
  nn::split_dataset(corpus.samples, 0.25, 1, train_set, test_set);

  nn::ClassifierSpec spec{fx.feature_dim(), fx.timesteps(),
                          corpus.num_classes()};
  std::mt19937 rng(1);
  nn::Sequential model = nn::build_model(kind, spec, rng);
  std::printf("training %s (%zu parameters) for %zu epochs...\n",
              nn::model_kind_name(kind), model.param_count(), epochs);

  nn::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 8;
  tc.learning_rate = 1.5e-3f;
  tc.on_epoch = [](std::size_t epoch, float loss) {
    std::printf("  epoch %2zu  loss %.4f\n", epoch, loss);
  };
  nn::train(model, train_set, tc);

  const auto ev = nn::evaluate(model, test_set, corpus.num_classes());
  std::printf("test accuracy: %.1f%% (%zu-way)\n", 100.0 * ev.accuracy,
              corpus.num_classes());

  {
    std::ofstream os(out_path, std::ios::binary);
    model.save(os);
  }
  std::printf("saved float32 model to %s (%zu KB)\n", out_path,
              model.weight_bytes(4) / 1024);

  const std::size_t q_bytes =
      nn::quantize_model_inplace(model, nn::QuantGranularity::kPerTensor);
  const auto ev8 = nn::evaluate(model, test_set, corpus.num_classes());
  const std::string q_path = std::string(out_path) + ".int8";
  {
    std::ofstream os(q_path, std::ios::binary);
    model.save(os);
  }
  std::printf("8-bit accuracy: %.1f%% — storage would be %zu KB (saved %s)\n",
              100.0 * ev8.accuracy, q_bytes / 1024, q_path.c_str());
  return 0;
}
