// Quickstart: the full affect-to-hardware loop in ~60 lines.
//
// 1. Synthesize "biosignal" audio for a sequence of user emotions.
// 2. Classify each window with a small on-device model.
// 3. Route labels through the SystemController (smoothing + policies).
// 4. Watch the H.264 decoder mode and app-manager ranking follow.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "affect/classifier.hpp"
#include "core/controller.hpp"
#include "core/manager_experiment.hpp"

using namespace affectsys;

int main() {
  // --- 1. train a tiny angry-vs-calm classifier on synthesized speech ----
  affect::CorpusProfile corpus;
  corpus.name = "quickstart";
  corpus.num_speakers = 4;
  corpus.emotions = {affect::Emotion::kAngry, affect::Emotion::kCalm};
  corpus.utterances_per_speaker_emotion = 6;
  corpus.utterance_seconds = 1.0;
  corpus.speaker_spread = 0.1;

  nn::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 8;
  tc.learning_rate = 2e-3f;
  std::printf("training a %zu-class classifier on synthetic speech...\n",
              corpus.emotions.size());
  auto classifier =
      affect::train_affect_classifier(nn::ModelKind::kMlp, corpus, tc);

  // --- 2. wire the controller: emotion -> video mode + app ranking -------
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  core::AppAffectTable table;
  table.learn_from_profile(affect::Emotion::kAngry, android::subject(3),
                           catalog);
  table.learn_from_profile(affect::Emotion::kCalm, android::subject(4),
                           catalog);
  core::EmotionalKillPolicy app_policy(table);

  affect::StreamConfig sc;
  sc.vote_window = 3;
  sc.min_dwell_s = 2.0;
  core::SystemController controller(sc, adaptive::AffectVideoPolicy{},
                                    &app_policy);
  controller.subscribe([](const core::ControllerEvent& ev) {
    std::printf("  [t=%5.1fs] stable emotion -> %-8s video mode -> %s\n",
                ev.time_s, affect::emotion_name(ev.emotion).data(),
                adaptive::mode_name(ev.video_mode).data());
  });

  // --- 3. stream classified windows through the controller ---------------
  affect::SpeechSynthesizer live(2024);
  double t = 0.0;
  auto feed = [&](affect::Emotion truth, int windows) {
    std::printf("user is %s:\n", affect::emotion_name(truth).data());
    for (int i = 0; i < windows; ++i) {
      const auto utt = live.synthesize(truth, 90 + i, 1.0, 16000.0, 0.1);
      const auto res = classifier.classify(utt.samples);
      controller.on_classification(t += 1.0, res.emotion);
    }
  };
  feed(affect::Emotion::kAngry, 5);
  feed(affect::Emotion::kCalm, 7);

  // --- 4. show the app ranking the manager would use ---------------------
  std::printf("\ncurrent emotion: %s — top background apps to keep:\n",
              affect::emotion_name(controller.current_emotion()).data());
  const auto rank = table.rank(controller.current_emotion());
  for (std::size_t i = 0; i < std::min<std::size_t>(5, rank.size()); ++i) {
    for (const auto& a : catalog) {
      if (a.id == rank[i]) std::printf("  #%zu %s\n", i + 1, a.name.c_str());
    }
  }
  std::printf("\ndone: the decoder mode and kill priorities now follow the "
              "user's affect.\n");
  return 0;
}
