// Emotional app manager demo (the Section 5 case study as an application).
//
// Simulates a phone session whose user is excited for 12 minutes and calm
// for 8, replaying the identical app-usage sequence under the default
// FIFO manager and the affect-driven manager, then prints the lifespan
// diagrams and loading savings.
//
// Usage: emotional_app_manager [monkey_seed]
#include <cstdio>
#include <cstdlib>

#include "core/manager_experiment.hpp"

using namespace affectsys;

int main(int argc, char** argv) {
  core::ManagerExperimentConfig cfg;
  if (argc > 1) cfg.monkey.seed = static_cast<unsigned>(std::atoi(argv[1]));

  std::printf("emotional app manager demo (seed %u)\n", cfg.monkey.seed);
  std::printf("emulator: %d apps, %llu MB RAM, background limit %d\n",
              cfg.emulator.total_apps,
              static_cast<unsigned long long>(cfg.emulator.ram_bytes >> 20),
              cfg.emulator.process_limit);

  const auto res = core::run_manager_experiment(cfg);
  std::printf("generated %zu app launches over %.0f minutes\n\n",
              res.events.size(), res.duration_s / 60.0);

  std::printf("--- default FIFO manager ---\n%s\n",
              res.baseline_trace.render_timeline(res.catalog, res.duration_s)
                  .c_str());
  std::printf("--- emotion-adaptive manager ---\n%s\n",
              res.proposed_trace.render_timeline(res.catalog, res.duration_s)
                  .c_str());

  std::printf("memory loaded at app start:  %.2f GB -> %.2f GB  (%.1f%% saved)\n",
              static_cast<double>(res.baseline.memory_loaded_bytes) / 1e9,
              static_cast<double>(res.proposed.memory_loaded_bytes) / 1e9,
              100.0 * res.memory_saving());
  std::printf("app loading time:            %.1f s -> %.1f s  (%.1f%% saved)\n",
              res.baseline.loading_time_s, res.proposed.loading_time_s,
              100.0 * res.time_saving());
  return 0;
}
