// Affect-driven video player (the Section 4 case study as an application).
//
// Plays a 40-minute visual-search session: a skin-conductance trace is
// generated, the emotion estimator labels it, and the adaptive H.264
// decoder switches working modes live.  Prints a minute-by-minute log and
// the final energy/quality report.
//
// Usage: affect_video_player [s_th] [f]
#include <cstdio>
#include <cstdlib>

#include "adaptive/playback.hpp"

using namespace affectsys;

int main(int argc, char** argv) {
  adaptive::PlaybackConfig cfg;
  if (argc > 1) cfg.s_th = static_cast<std::size_t>(std::atoi(argv[1]));
  if (argc > 2) cfg.f = static_cast<unsigned>(std::atoi(argv[2]));

  std::printf("affect-driven H.264 player  (S_th=%zu, f=%u)\n", cfg.s_th,
              cfg.f);
  std::printf("profiling decoder modes on the prototype clip...\n");
  adaptive::AdaptiveDecoderSystem system(cfg);
  for (auto m :
       {adaptive::DecoderMode::kStandard, adaptive::DecoderMode::kDeletion,
        adaptive::DecoderMode::kDeblockOff,
        adaptive::DecoderMode::kCombined}) {
    const auto& p = system.profile(m);
    std::printf("  %-16s power %.3f  psnr %.2f dB\n",
                adaptive::mode_name(m).data(), p.norm_power, p.psnr_db);
  }

  // Live session: SC signal -> estimator -> smoothed emotion -> mode.
  const auto timeline = affect::uulmmac_session_timeline();
  affect::SclConfig scfg;
  affect::SclGenerator gen(scfg);
  const auto trace = gen.generate(timeline);
  affect::SclEmotionEstimator estimator;
  estimator.calibrate(trace, scfg.sample_rate_hz, timeline);

  std::printf("\nplaying 40-minute session...\n");
  const adaptive::AffectVideoPolicy policy;
  const auto report = adaptive::simulate_playback_from_scl(
      system, trace, scfg.sample_rate_hz, estimator, policy);

  for (const auto& seg : report.segments) {
    std::printf("  %5.1f - %5.1f min  %-13s -> %-16s %8.2f mJ  %6.2f dB\n",
                seg.start_s / 60.0, seg.end_s / 60.0,
                affect::emotion_name(seg.emotion).data(),
                adaptive::mode_name(seg.mode).data(), seg.energy_nj / 1e6,
                seg.psnr_db);
  }
  std::printf("\nsession energy: %.2f mJ (standard playback: %.2f mJ)\n",
              report.total_energy_nj / 1e6, report.standard_energy_nj / 1e6);
  std::printf("energy saving:  %.1f%%\n", 100.0 * report.energy_saving());
  return 0;
}
