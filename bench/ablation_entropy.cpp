// Ablation: entropy-coder comparison on real quantized residuals.
//
// The paper's decoder uses CAVLC (baseline profile).  This bench harvests
// the actual residual blocks produced while encoding the prototype clip
// and codes them with the Exp-Golomb CAVLC-style coder vs the
// CABAC-style adaptive arithmetic coder across the QP range, reproducing
// the classic ~10-15% main-profile bitrate advantage.
#include <cstdio>
#include <vector>

#include "h264/arith.hpp"
#include "h264/bitstream.hpp"
#include "h264/entropy.hpp"
#include "h264/intra.hpp"
#include "h264/testvideo.hpp"
#include "h264/transform.hpp"

using namespace affectsys::h264;

namespace {

/// Harvests quantized intra-DC residual blocks from a clip at one QP —
/// the same coefficient statistics the slice coder sees.
std::vector<Block4x4> harvest_blocks(const std::vector<YuvFrame>& video,
                                     int qp) {
  std::vector<Block4x4> out;
  for (const YuvFrame& f : video) {
    for (int y0 = 0; y0 + 4 <= f.height(); y0 += 4) {
      for (int x0 = 0; x0 + 4 <= f.width(); x0 += 4) {
        std::uint8_t pred[16];
        intra_predict(f.y, x0, y0, 4, IntraMode::kDc, pred);
        Block4x4 residual{};
        for (int y = 0; y < 4; ++y) {
          for (int x = 0; x < 4; ++x) {
            residual[y][x] =
                static_cast<int>(f.y.at(x0 + x, y0 + y)) - pred[y * 4 + x];
          }
        }
        out.push_back(transform_quantize(residual, qp));
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  VideoConfig vc{64, 64, 12, 1.2, 0.6, 2.5, 77};
  const auto video = generate_mixed_video(vc, 0.25);

  std::printf("=== ablation: CAVLC-style vs CABAC-style residual coding ===\n");
  std::printf("%4s %10s %14s %14s %10s\n", "QP", "blocks", "CAVLC (bits)",
              "CABAC (bits)", "saving");
  for (int qp : {16, 20, 24, 28, 32, 36, 40}) {
    const auto blocks = harvest_blocks(video, qp);

    BitWriter cavlc;
    for (const auto& blk : blocks) encode_residual_block(cavlc, blk);

    ArithEncoder enc;
    ResidualContexts ctx;
    for (const auto& blk : blocks) {
      encode_residual_block_cabac(enc, ctx, blk);
    }
    const std::size_t cabac_bits = enc.finish().size() * 8;

    std::printf("%4d %10zu %14zu %14zu %9.1f%%\n", qp, blocks.size(),
                cavlc.bit_count(), cabac_bits,
                100.0 * (1.0 - static_cast<double>(cabac_bits) /
                                   static_cast<double>(cavlc.bit_count())));
  }
  std::printf(
      "\nreading: adaptive arithmetic coding wins at every QP, in the same\n"
      "direction as H.264 main-profile CABAC vs CAVLC.  The gap here is\n"
      "larger than silicon's ~10-15%% because our baseline coder uses\n"
      "generic Exp-Golomb codewords rather than the spec's context-switched\n"
      "VLC tables (DESIGN.md documents that simplification).\n");
  return 0;
}
