// Conference benchmark.  Four questions:
//
//   1. What does active-speaker multiplexing buy on the wire?  An
//      8-speaker room under the conference policy (dominant at the top
//      rung, recent mid, idle bottom) vs the same 8 sessions all pinned
//      to the top layer, equal seeds and emotion scripts.  Gated at
//      >= 30% wire-byte reduction.
//   2. How fast does the floor move?  The room run's worst
//      waiting-for-keyframe stretch across members is gated under one
//      GOP, with at least one completed layer switch and at least one
//      dominance move as evidence the machinery ran.
//   3. Does a lossy room replay?  An 8-speaker room with seeded packet
//      loss runs twice; the bench fails hard on any divergence in
//      digests, layer traces, transport counters or the speaker_trace.
//   4. Is a K=1 room really a plain session?  Digest + trace identity
//      between a one-member room and the same session outside any room.
//
// Dumps BENCH_conference.json; tools/run_verify.sh `conference` runs
// this in the Release tree and regresses wire_reduction_pct against the
// committed copy.
//
// Usage: bench_conference [output.json]  (default: BENCH_conference.json)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "conf/room.hpp"
#include "fault/plan.hpp"
#include "fault/scenario.hpp"
#include "obs/json.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/workload.hpp"
#include "simulcast/encoder.hpp"

using namespace affectsys;

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kSpeakers = 8;
constexpr std::uint64_t kTicks = 200;
constexpr std::uint64_t kLossyTicks = 140;

const serve::SharedWorkload& conf_workload() {
  static serve::SharedWorkload w([] {
    serve::WorkloadConfig wc;
    wc.simulcast = simulcast::default_simulcast_config();
    return wc;
  }());
  return w;
}

serve::SessionEnv conf_env() {
  serve::SessionEnv env = fault::scenario_env();
  env.workload = &conf_workload();
  return env;
}

/// Wide watermarks: the comparison isolates ROLE-driven byte savings,
/// so the backlog degrade ladder must not fire.
serve::ServerConfig server_config() {
  serve::ServerConfig cfg;
  cfg.max_sessions = 16;
  cfg.backlog_hi = 1000;
  cfg.backlog_lo = 500;
  return cfg;
}

serve::SessionConfig member_config(unsigned seed) {
  serve::SessionConfig cfg;
  cfg.seed = seed;
  cfg.simulcast.enabled = true;
  cfg.transport = fault::net_scenario_transport(true);
  cfg.transport.layers = 3;
  return cfg;
}

std::uint64_t wire_bytes(const serve::SessionReport& rep) {
  std::uint64_t total = 0;
  for (const std::uint64_t b : rep.stats.layer_bytes) total += b;
  return total;
}

struct RoomRun {
  std::vector<serve::SessionReport> reports;
  conf::RoomReport room;
  double ticks_per_sec = 0.0;
};

/// One 8-speaker room run; loss_rate > 0 adds a seeded kNetKinds plan
/// per member.
RoomRun run_room(std::uint64_t ticks, double loss_rate) {
  serve::SessionManager mgr(server_config(), conf_env());
  const conf::RoomId room = mgr.create_room();
  std::vector<serve::SessionId> ids;
  for (unsigned i = 0; i < kSpeakers; ++i) {
    serve::SessionConfig cfg = member_config(101 + i);
    if (loss_rate > 0.0) {
      cfg.fault = fault::FaultConfig{101 + i * 7, loss_rate, fault::kNetKinds};
    }
    ids.push_back(mgr.create_session(cfg, room));
  }
  const auto t0 = Clock::now();
  for (std::uint64_t t = 0; t < ticks; ++t) mgr.tick();
  const std::chrono::duration<double> dt = Clock::now() - t0;
  mgr.drain();
  RoomRun out;
  for (const serve::SessionId id : ids) out.reports.push_back(mgr.report(id));
  out.room = mgr.room_report(room);
  out.ticks_per_sec = static_cast<double>(ticks) / dt.count();
  return out;
}

/// The same 8 sessions with no room and the top layer pinned — every
/// speaker ships full quality all the time (the pre-conference wire).
std::uint64_t run_all_top(std::uint64_t ticks) {
  serve::SessionManager mgr(server_config(), conf_env());
  std::vector<serve::SessionId> ids;
  for (unsigned i = 0; i < kSpeakers; ++i) {
    serve::SessionConfig cfg = member_config(101 + i);
    cfg.simulcast.use_default_policy = false;
    cfg.simulcast.policy.default_target = 2;
    ids.push_back(mgr.create_session(cfg));
  }
  for (std::uint64_t t = 0; t < ticks; ++t) mgr.tick();
  mgr.drain();
  std::uint64_t total = 0;
  for (const serve::SessionId id : ids) total += wire_bytes(mgr.report(id));
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_conference.json";
  const int gop = conf_workload().config().simulcast.gop_frames;

  // ---- 1 & 2. Wire economy + floor-move latency ---------------------
  const RoomRun room = run_room(kTicks, 0.0);
  std::uint64_t room_bytes = 0, layer_switches = 0, max_wait = 0;
  for (const serve::SessionReport& rep : room.reports) {
    room_bytes += wire_bytes(rep);
    layer_switches += rep.stats.layer_switches;
    if (rep.layer_selector.max_wait_pictures > max_wait) {
      max_wait = rep.layer_selector.max_wait_pictures;
    }
  }
  const std::uint64_t top_bytes = run_all_top(kTicks);
  const double reduction_pct =
      top_bytes ? (1.0 - static_cast<double>(room_bytes) /
                             static_cast<double>(top_bytes)) *
                      100.0
                : 0.0;
  std::printf("wire bytes:     all-top %llu  conference %llu  "
              "reduction %.1f%%\n",
              static_cast<unsigned long long>(top_bytes),
              static_cast<unsigned long long>(room_bytes), reduction_pct);
  std::printf("switching:      %llu speaker moves  %llu layer switches  "
              "max wait %llu pics (gop %d)\n",
              static_cast<unsigned long long>(room.room.speaker_switches),
              static_cast<unsigned long long>(layer_switches),
              static_cast<unsigned long long>(max_wait), gop);
  std::printf("room ticks/s:   %.1f (%zu speakers)\n", room.ticks_per_sec,
              kSpeakers);

  // ---- 3. Lossy replay identity -------------------------------------
  const RoomRun a = run_room(kLossyTicks, 0.05);
  const RoomRun b = run_room(kLossyTicks, 0.05);
  bool replay_ok = a.room == b.room;
  std::uint64_t lost = 0;
  for (std::size_t i = 0; i < a.reports.size() && replay_ok; ++i) {
    const serve::SessionReport& ra = a.reports[i];
    const serve::SessionReport& rb = b.reports[i];
    replay_ok = ra.session_id == rb.session_id &&
                ra.decode_digest == rb.decode_digest &&
                ra.layer_trace == rb.layer_trace &&
                ra.stats.packets_lost == rb.stats.packets_lost &&
                ra.stats.layer_bytes == rb.stats.layer_bytes;
    lost += ra.stats.packets_lost;
  }
  replay_ok = replay_ok && lost > 0;  // the loss plan actually fired
  std::printf("lossy replay:   %s (%llu packets lost)\n",
              replay_ok ? "PASS" : "FAIL",
              static_cast<unsigned long long>(lost));

  // ---- 4. K=1 room == plain session ---------------------------------
  bool k1_ok = false;
  {
    const serve::SessionConfig cfg = member_config(55);
    serve::SessionManager plain(server_config(), conf_env());
    const serve::SessionId pid = plain.create_session(cfg);
    serve::SessionManager roomed(server_config(), conf_env());
    const serve::SessionId rid =
        roomed.create_session(cfg, roomed.create_room());
    for (std::uint64_t t = 0; t < 100; ++t) {
      plain.tick();
      roomed.tick();
    }
    plain.drain();
    roomed.drain();
    const serve::SessionReport p = plain.report(pid);
    const serve::SessionReport r = roomed.report(rid);
    k1_ok = p.decode_digest == r.decode_digest &&
            p.layer_trace == r.layer_trace &&
            p.stats.layer_bytes == r.stats.layer_bytes;
  }
  std::printf("k=1 identity:   %s\n", k1_ok ? "PASS" : "FAIL");

  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value("conference");
  w.key("wire").begin_object();
  w.key("speakers").value(static_cast<std::uint64_t>(kSpeakers));
  w.key("all_top_bytes").value(top_bytes);
  w.key("conference_bytes").value(room_bytes);
  w.key("wire_reduction_pct").value(reduction_pct);
  w.end_object();
  w.key("switching").begin_object();
  w.key("speaker_switches").value(room.room.speaker_switches);
  w.key("layer_switches").value(layer_switches);
  w.key("max_wait_pictures").value(max_wait);
  w.key("gop_frames").value(static_cast<std::uint64_t>(gop));
  w.end_object();
  w.key("room_ticks_per_sec").value(room.ticks_per_sec);
  w.key("lossy_replay_identical").value(replay_ok);
  w.key("k1_identical").value(k1_ok);
  w.end_object();

  std::ofstream out(out_path);
  out << w.str() << "\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  // ISSUE 10 gates.
  if (!replay_ok) {
    std::fprintf(stderr, "FAIL: lossy room replay divergence\n");
    return 1;
  }
  if (!k1_ok) {
    std::fprintf(stderr, "FAIL: K=1 room diverged from a plain session\n");
    return 1;
  }
  if (room.room.speaker_switches == 0 || layer_switches == 0 ||
      max_wait >= static_cast<std::uint64_t>(gop)) {
    std::fprintf(stderr,
                 "FAIL: speaker-switch latency %llu pics breaches the 1-GOP "
                 "bound (%d) or the floor never moved\n",
                 static_cast<unsigned long long>(max_wait), gop);
    return 1;
  }
  if (reduction_pct < 30.0) {
    std::fprintf(stderr, "FAIL: wire reduction %.1f%% below the 30%% gate\n",
                 reduction_pct);
    return 1;
  }
  return 0;
}
