// Ablation: emotion-stream smoothing (vote window + dwell hysteresis).
//
// Raw classifier labels flicker; every flicker is a decoder mode switch.
// This bench feeds a noisy label stream derived from the SC trace through
// EmotionStream configurations of increasing aggressiveness and reports
// mode switches and label agreement with ground truth.
#include <cstdio>
#include <vector>

#include "affect/scl.hpp"
#include "affect/stream.hpp"

using namespace affectsys;

int main() {
  affect::SclConfig scfg;
  affect::SclGenerator gen(scfg);
  const auto timeline = affect::uulmmac_session_timeline();
  const auto trace = gen.generate(timeline);
  affect::SclEmotionEstimator est;
  est.calibrate(trace, scfg.sample_rate_hz, timeline);

  // Raw labels every 15 s (noisier than the 30 s windows used elsewhere).
  const double window_s = 15.0;
  const auto win = static_cast<std::size_t>(window_s * scfg.sample_rate_hz);
  std::vector<std::pair<double, affect::Emotion>> raw;
  for (std::size_t start = 0; start + win <= trace.size(); start += win) {
    const double t = static_cast<double>(start) / scfg.sample_rate_hz;
    raw.push_back({t, est.classify({trace.data() + start, win})});
  }

  std::printf("=== ablation: emotion stream smoothing ===\n");
  std::printf("%zu raw labels over %.0f min\n\n", raw.size(),
              timeline.duration_s() / 60.0);
  std::printf("%-28s %12s %14s\n", "configuration", "switches",
              "truth agreement");

  struct Config {
    const char* name;
    std::size_t vote;
    double dwell;
  };
  const Config configs[] = {
      {"raw (no smoothing)", 1, 0.0},
      {"vote=3", 3, 0.0},
      {"dwell=60s", 1, 60.0},
      {"vote=3 + dwell=60s", 3, 60.0},
      {"vote=5 + dwell=120s", 5, 120.0},
  };
  for (const auto& cfg : configs) {
    affect::EmotionStream stream({cfg.vote, cfg.dwell});
    std::size_t agree = 0;
    for (const auto& [t, label] : raw) {
      stream.push(t, label);
      agree += stream.stable() == timeline.at(t);
    }
    std::printf("%-28s %12zu %13.1f%%\n", cfg.name, stream.transitions(),
                100.0 * static_cast<double>(agree) /
                    static_cast<double>(raw.size()));
  }
  std::printf(
      "\nreading: hysteresis removes most hardware mode thrash at a small\n"
      "agreement cost; each avoided switch saves a decoder reconfiguration.\n");
  return 0;
}
