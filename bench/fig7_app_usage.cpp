// Fig 7 reproduction: app usage pattern by category for the four subject
// personalities (left) and the emulator specification (right).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "android/catalog.hpp"
#include "android/monkey.hpp"
#include "android/personality.hpp"

using namespace affectsys;

int main() {
  const android::EmulatorSpec spec;
  const auto catalog = android::build_catalog(spec);

  std::printf("=== Fig 7 (left): app usage by category, 4 subjects ===\n");
  for (const auto& subject : android::paper_subjects()) {
    std::printf("\nSubject %d  (%s; emulates '%s')\n", subject.subject_id,
                subject.trait_summary.c_str(),
                affect::emotion_name(subject.emulated_emotion).data());
    std::printf("  OCEAN scores: O=%.2f C=%.2f E=%.2f A=%.2f ES=%.2f\n",
                subject.scores.openness, subject.scores.conscientiousness,
                subject.scores.extraversion, subject.scores.agreeableness,
                subject.scores.emotional_stability);
    // Sample the monkey generator and report empirical shares.
    android::MonkeyScript monkey(catalog, {12.0, 1000u + static_cast<unsigned>(
                                                             subject.subject_id)});
    const auto hist = monkey.sample_category_histogram(subject, 5000);
    std::vector<std::pair<android::AppCategory, std::size_t>> rows(
        hist.begin(), hist.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (const auto& [cat, count] : rows) {
      const double share = 100.0 * static_cast<double>(count) / 5000.0;
      if (share < 0.5) continue;
      std::printf("  %-18s %5.1f%%  |", android::category_name(cat).data(),
                  share);
      for (int i = 0; i < static_cast<int>(share); ++i) std::printf("#");
      std::printf("\n");
    }
    std::printf("  messaging+browsing share: %.1f%% (paper: 60-70%%)\n",
                100.0 * android::messaging_browsing_share(subject));
  }

  std::printf("\n=== Fig 7 (right): emulator specification ===\n");
  std::printf("%-22s %s\n", "Platform", "smartphone simulator (src/android)");
  std::printf("%-22s %s\n", "Emulated OS profile", "Android 11 / API 30");
  std::printf("%-22s %d\n", "CPU cores", spec.cpu_cores);
  std::printf("%-22s %llu MB\n", "RAM allocation",
              static_cast<unsigned long long>(spec.ram_bytes >> 20));
  std::printf("%-22s %llu GB\n", "ROM allocation",
              static_cast<unsigned long long>(spec.rom_bytes >> 30));
  std::printf("%-22s %d\n", "# of total apps", spec.total_apps);
  std::printf("%-22s %d\n", "Background limit", spec.process_limit);
  std::printf("%-22s %dx%d\n", "Resolution", spec.resolution_w,
              spec.resolution_h);
  return 0;
}
