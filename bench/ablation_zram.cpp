// Ablation: zram-style compressed swap vs killing under memory pressure,
// with and without the emotional manager (extension beyond the paper).
//
// Compression keeps more processes resident (fewer flash reloads) at the
// cost of CPU (de)compression time; the emotional ranking composes with
// it — the manager compresses/kills the emotionally-irrelevant apps
// first.
#include <cstdio>
#include <vector>

#include "core/manager_experiment.hpp"

using namespace affectsys;

namespace {

struct Cell {
  double mem_gb = 0.0;
  double wait_s = 0.0;
  double kills = 0.0;
  double compressions = 0.0;
};

Cell run(bool zram, bool emotional, const std::vector<unsigned>& seeds) {
  Cell c;
  for (unsigned seed : seeds) {
    core::ManagerExperimentConfig cfg;
    cfg.monkey.seed = seed;
    cfg.zram = zram;
    const auto res = core::run_manager_experiment(cfg);
    const auto& m = emotional ? res.proposed : res.baseline;
    c.mem_gb += static_cast<double>(m.memory_loaded_bytes) / 1e9;
    c.wait_s += m.loading_time_s;
    c.kills += static_cast<double>(m.kills);
    c.compressions += static_cast<double>(m.compressions);
  }
  const double n = static_cast<double>(seeds.size());
  c.mem_gb /= n;
  c.wait_s /= n;
  c.kills /= n;
  c.compressions /= n;
  return c;
}

}  // namespace

int main() {
  const std::vector<unsigned> seeds = {99, 1, 2, 3};
  std::printf("=== ablation: compressed swap (zram) x emotional ranking ===\n");
  std::printf("(mean over %zu seeds; 20-minute session)\n\n", seeds.size());
  std::printf("%-26s %10s %10s %8s %12s\n", "configuration", "mem(GB)",
              "wait(s)", "kills", "compressions");

  const struct {
    const char* name;
    bool zram;
    bool emotional;
  } rows[] = {
      {"FIFO", false, false},
      {"FIFO + zram", true, false},
      {"emotional", false, true},
      {"emotional + zram", true, true},
  };
  for (const auto& row : rows) {
    const Cell c = run(row.zram, row.emotional, seeds);
    std::printf("%-26s %10.2f %10.1f %8.1f %12.1f\n", row.name, c.mem_gb,
                c.wait_s, c.kills, c.compressions);
  }
  std::printf(
      "\nreading: compression and emotional ranking attack the same reload\n"
      "cost through different means and compose; the combination keeps the\n"
      "most state resident at the least user-visible wait.\n");
  return 0;
}
