// Fig 6 (middle) reproduction: power of the four affect-driven decoder
// working modes and the Pre-store Buffer area overhead.
//
// Paper (65-nm silicon): DF deactivation -31.4%, deletion (S_th=140, f=1)
// -10.6%, combined -36.9%, Pre-store Buffer +4.23% area.  Our numbers
// come from measured decoder activity through the calibrated energy model
// (the DF share is the calibration anchor; everything else is emergent).
#include <cstdio>

#include "adaptive/playback.hpp"
#include "power/area.hpp"

using namespace affectsys;

int main() {
  adaptive::PlaybackConfig cfg;  // calibrated defaults (see DESIGN.md)
  adaptive::AdaptiveDecoderSystem sys(cfg);

  std::printf("=== Fig 6 (middle): decoder working modes ===\n");
  std::printf("prototype clip: %dx%d, %d frames, QP %d, GOP %d (+%dB), S_th=%zu f=%u\n\n",
              cfg.video.width, cfg.video.height, cfg.video.frames,
              cfg.encoder.qp, cfg.encoder.gop_size, cfg.encoder.b_frames,
              cfg.s_th, cfg.f);
  std::printf("%-16s %12s %10s %10s %12s %10s\n", "mode", "norm.power",
              "saving", "PSNR(dB)", "NALs deleted", "paper");
  const struct {
    adaptive::DecoderMode mode;
    const char* paper;
  } rows[] = {
      {adaptive::DecoderMode::kStandard, "0.0%"},
      {adaptive::DecoderMode::kDeletion, "-10.6%"},
      {adaptive::DecoderMode::kDeblockOff, "-31.4%"},
      {adaptive::DecoderMode::kCombined, "-36.9%"},
  };
  for (const auto& row : rows) {
    const adaptive::ModeProfile& p = sys.profile(row.mode);
    std::printf("%-16s %12.3f %9.1f%% %10.2f %7zu/%-4zu %10s\n",
                adaptive::mode_name(row.mode).data(), p.norm_power,
                -100.0 * (1.0 - p.norm_power), p.psnr_db, p.selector.deleted,
                p.selector.units_in, row.paper);
  }

  std::printf("\n=== per-module energy breakdown (Standard mode) ===\n");
  const auto& std_prof = sys.profile(adaptive::DecoderMode::kStandard);
  const auto& e = std_prof.energy;
  const double total = e.total_nj();
  std::printf("%-12s %12s %8s\n", "module", "energy(uJ)", "share");
  std::printf("%-12s %12.2f %7.1f%%\n", "parser", e.parser_nj / 1e3,
              100.0 * e.parser_nj / total);
  std::printf("%-12s %12.2f %7.1f%%\n", "CAVLC", e.cavlc_nj / 1e3,
              100.0 * e.cavlc_nj / total);
  std::printf("%-12s %12.2f %7.1f%%\n", "IQIT", e.iqit_nj / 1e3,
              100.0 * e.iqit_nj / total);
  std::printf("%-12s %12.2f %7.1f%%\n", "prediction", e.prediction_nj / 1e3,
              100.0 * e.prediction_nj / total);
  std::printf("%-12s %12.2f %7.1f%%  (calibration anchor: paper 31.4%%)\n",
              "deblock", e.deblock_nj / 1e3, 100.0 * e.deblock_nj / total);
  std::printf("%-12s %12.2f %7.1f%%\n", "static", e.static_nj / 1e3,
              100.0 * e.static_nj / total);

  std::printf("\n=== implementation figures (65-nm model) ===\n");
  const power::AreaModel area;
  std::printf("technology          %.0f nm, %.1f V, %.0f MHz\n",
              area.technology_nm, area.supply_v, area.clock_mhz);
  std::printf("conventional area   %.3f mm^2\n", area.conventional_mm2());
  std::printf("proposed area       %.3f mm^2\n", area.proposed_mm2());
  std::printf("pre-store overhead  %.2f%%   (paper: 4.23%%)\n",
              100.0 * area.prestore_overhead());
  return 0;
}
