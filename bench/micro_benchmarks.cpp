// Google-benchmark microbenchmarks: throughput of the hot paths every
// experiment rides on (decode, feature extraction, classifier inference,
// selector filtering, process-manager operations).
#include <benchmark/benchmark.h>

#include <random>
#include <string>

#include "adaptive/input_selector.hpp"
#include "affect/dataset.hpp"
#include "affect/speech_synth.hpp"
#include "android/catalog.hpp"
#include "android/process.hpp"
#include "core/affect_table.hpp"
#include "h264/decoder.hpp"
#include "h264/encoder.hpp"
#include "h264/testvideo.hpp"
#include "nn/model.hpp"
#include "nn/quantize.hpp"
#include "obs/metrics.hpp"
#include "signal/mel.hpp"

using namespace affectsys;

namespace {

const std::vector<std::uint8_t>& encoded_stream() {
  static const std::vector<std::uint8_t> stream = [] {
    h264::VideoConfig vc{64, 64, 24, 1.2, 0.6, 2.5, 77};
    const auto video = h264::generate_mixed_video(vc, 0.25);
    h264::EncoderConfig ec{64, 64, 24, 12, 2, 4, true};
    h264::Encoder enc(ec);
    return enc.encode_annexb(video);
  }();
  return stream;
}

}  // namespace

static void BM_EncodeFrame(benchmark::State& state) {
  h264::VideoConfig vc{64, 64, 12, 1.2, 0.6, 2.5, 77};
  const auto video = h264::generate_test_video(vc);
  for (auto _ : state) {
    h264::EncoderConfig ec{64, 64, 24, 12, 2, 4, true};
    h264::Encoder enc(ec);
    benchmark::DoNotOptimize(enc.encode_annexb(video));
  }
  state.SetItemsProcessed(state.iterations() * vc.frames);
}
BENCHMARK(BM_EncodeFrame)->Unit(benchmark::kMillisecond);

static void BM_DecodeFrame(benchmark::State& state) {
  const auto& stream = encoded_stream();
  std::size_t frames = 0;
  for (auto _ : state) {
    h264::Decoder dec;
    const auto out = dec.decode_annexb(stream);
    frames += out.size();
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
}
BENCHMARK(BM_DecodeFrame)->Unit(benchmark::kMillisecond);

static void BM_DecodeFrameNoDeblock(benchmark::State& state) {
  const auto& stream = encoded_stream();
  for (auto _ : state) {
    h264::Decoder dec({.enable_deblock = false});
    benchmark::DoNotOptimize(dec.decode_annexb(stream).size());
  }
}
BENCHMARK(BM_DecodeFrameNoDeblock)->Unit(benchmark::kMillisecond);

static void BM_InputSelector(benchmark::State& state) {
  const auto& stream = encoded_stream();
  for (auto _ : state) {
    adaptive::InputSelector sel({140, 1});
    benchmark::DoNotOptimize(sel.filter_annexb(stream).size());
  }
}
BENCHMARK(BM_InputSelector)->Unit(benchmark::kMicrosecond);

static void BM_MfccFrame(benchmark::State& state) {
  signal::MfccConfig cfg;
  signal::MfccExtractor mfcc(cfg);
  std::vector<double> frame(cfg.frame_len);
  std::mt19937 rng(1);
  std::normal_distribution<double> d(0.0, 0.3);
  for (auto& v : frame) v = d(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mfcc.extract_frame(frame));
  }
}
BENCHMARK(BM_MfccFrame)->Unit(benchmark::kMicrosecond);

static void BM_FeatureExtraction(benchmark::State& state) {
  affect::SpeechSynthesizer synth(1);
  const auto utt =
      synth.synthesize(affect::Emotion::kHappy, 0, 1.6, 16000.0, 0.2);
  const affect::FeatureExtractor fx(affect::default_feature_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.extract(utt.samples));
  }
}
BENCHMARK(BM_FeatureExtraction)->Unit(benchmark::kMillisecond);

template <nn::ModelKind Kind>
static void BM_ClassifierInference(benchmark::State& state) {
  nn::ClassifierSpec spec{17, 64, 7};
  std::mt19937 rng(1);
  nn::Sequential model = nn::build_model(Kind, spec, rng);
  nn::Matrix input(64, 17);
  std::normal_distribution<float> d(0.0f, 1.0f);
  for (auto& v : input.flat()) v = d(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(input));
  }
}
BENCHMARK(BM_ClassifierInference<nn::ModelKind::kMlp>)
    ->Unit(benchmark::kMicrosecond)->Name("BM_InferenceMLP");
BENCHMARK(BM_ClassifierInference<nn::ModelKind::kCnn>)
    ->Unit(benchmark::kMicrosecond)->Name("BM_InferenceCNN");
BENCHMARK(BM_ClassifierInference<nn::ModelKind::kLstm>)
    ->Unit(benchmark::kMicrosecond)->Name("BM_InferenceLSTM");

static void BM_QuantizeModel(benchmark::State& state) {
  nn::ClassifierSpec spec{17, 64, 7};
  for (auto _ : state) {
    state.PauseTiming();
    std::mt19937 rng(1);
    nn::Sequential model = nn::build_model(nn::ModelKind::kLstm, spec, rng);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        nn::quantize_model_inplace(model, nn::QuantGranularity::kPerTensor));
  }
}
BENCHMARK(BM_QuantizeModel)->Unit(benchmark::kMillisecond);

static void BM_ProcessManagerLaunch(benchmark::State& state) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  android::FifoKillPolicy fifo;
  android::ProcessManagerConfig cfg;
  android::ProcessManager pm(catalog, cfg, fifo);
  double t = 0.0;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pm.launch(catalog[i % catalog.size()].id, t));
    t += 1.0;
    ++i;
  }
}
BENCHMARK(BM_ProcessManagerLaunch);

static void BM_AffectTableRank(benchmark::State& state) {
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  core::AppAffectTable table;
  table.learn_from_profile(affect::Emotion::kExcited, android::subject(3),
                           catalog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.rank(affect::Emotion::kExcited));
  }
}
BENCHMARK(BM_AffectTableRank);

// --- Observability layer overhead (src/obs) --------------------------------
// These bound the per-event cost the AFFECTSYS_* macros add to
// instrumented hot loops: a cached-handle counter add and histogram
// observe should be a few ns, a cold registry lookup tens of ns.

static void BM_ObsCounterAdd(benchmark::State& state) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("bench.counter");
  for (auto _ : state) {
    c.add(1);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterAdd);

static void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("bench.hist");
  double v = 1.0;
  for (auto _ : state) {
    h.observe(v);
    v = v < 1e9 ? v * 3.0 : 1.0;  // walk across buckets
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramObserve);

static void BM_ObsScopedTimer(benchmark::State& state) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("bench.timer_ns");
  for (auto _ : state) {
    obs::ScopedTimerNs timer(h);
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsScopedTimer);

static void BM_ObsRegistryLookup(benchmark::State& state) {
  obs::Registry reg;
  reg.counter("bench.lookup");  // pre-registered: measures the hot find
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.counter("bench.lookup"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsRegistryLookup);

static void BM_ObsRegistrySnapshot(benchmark::State& state) {
  obs::Registry reg;
  for (int i = 0; i < 64; ++i) {
    reg.counter("bench.c" + std::to_string(i)).add(static_cast<unsigned>(i));
    reg.histogram("bench.h" + std::to_string(i)).observe(i * 100.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.to_json());
  }
}
BENCHMARK(BM_ObsRegistrySnapshot)->Unit(benchmark::kMicrosecond);
