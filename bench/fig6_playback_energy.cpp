// Fig 6 (bottom) reproduction: affect-driven playback over the 40-minute
// uulmMAC-style session.
//
// A skin-conductance trace is generated for the session timeline
// (Distracted 0-14 min, Concentrated 14-20, Tense 20-29, Relaxed 29-40).
// Playback is simulated twice: driven by the ground-truth timeline (as in
// the paper, where labels come from the database) and driven end-to-end
// by the SC-magnitude emotion estimator.  Paper result: 23.1% energy
// saving vs Standard-mode playback.
#include <cstdio>

#include "adaptive/playback.hpp"
#include "power/battery.hpp"

using namespace affectsys;

namespace {

void print_report(const char* title, const adaptive::PlaybackReport& r) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%8s %8s  %-13s %-16s %12s %9s\n", "from(min)", "to(min)",
              "emotion", "mode", "energy(mJ)", "PSNR(dB)");
  for (const auto& seg : r.segments) {
    std::printf("%8.1f %8.1f  %-13s %-16s %12.2f %9.2f\n", seg.start_s / 60.0,
                seg.end_s / 60.0, affect::emotion_name(seg.emotion).data(),
                adaptive::mode_name(seg.mode).data(), seg.energy_nj / 1e6,
                seg.psnr_db);
  }
  std::printf("total energy      %10.2f mJ\n", r.total_energy_nj / 1e6);
  std::printf("standard baseline %10.2f mJ\n", r.standard_energy_nj / 1e6);
  std::printf("energy saving     %10.1f %%   (paper: 23.1%%)\n",
              100.0 * r.energy_saving());
}

}  // namespace

int main() {
  adaptive::PlaybackConfig cfg;
  adaptive::AdaptiveDecoderSystem sys(cfg);
  const adaptive::AffectVideoPolicy policy;
  const auto timeline = affect::uulmmac_session_timeline();

  std::printf("=== Fig 6 (bottom): affect-driven video playback energy ===\n");

  // SC trace statistics (the signal plotted in the figure).
  affect::SclConfig scfg;
  affect::SclGenerator gen(scfg);
  const auto trace = gen.generate(timeline);
  std::printf("SC trace: %zu samples @ %.0f Hz over %.0f min\n", trace.size(),
              scfg.sample_rate_hz, timeline.duration_s() / 60.0);
  for (const auto& seg : timeline.segments) {
    const auto begin =
        static_cast<std::size_t>(seg.start_s * scfg.sample_rate_hz);
    const auto end = static_cast<std::size_t>(seg.end_s * scfg.sample_rate_hz);
    const double act = affect::SclEmotionEstimator::activity_score(
        {trace.data() + begin, end - begin});
    std::printf("  %-13s SCR activity %.4f uS/sample\n",
                affect::emotion_name(seg.emotion).data(), act);
  }

  const auto oracle = adaptive::simulate_playback(sys, timeline, policy);
  print_report("labels from database timeline (paper setup)", oracle);

  affect::SclEmotionEstimator est;
  est.calibrate(trace, scfg.sample_rate_hz, timeline);
  const auto estimated = adaptive::simulate_playback_from_scl(
      sys, trace, scfg.sample_rate_hz, est, policy);
  print_report("labels estimated from the SC signal (end-to-end)", estimated);

  // Continuous-policy variant: graded arousal instead of discrete labels.
  adaptive::AffectVideoPolicy continuous;
  for (std::size_t i = 0; i < affect::kNumEmotions; ++i) {
    const auto e = static_cast<affect::Emotion>(i);
    continuous.set_mode(
        e, adaptive::mode_for_circumplex(affect::circumplex(e)));
  }
  const auto cont = adaptive::simulate_playback(sys, timeline, continuous);
  print_report("continuous arousal policy (extension)", cont);

  // Battery-life framing: what the saving buys on a smartwatch cell.
  // Decoder energy is normalized per decoded pixel on the prototype clip
  // and scaled to a 480p25 playback workload (the percent saving is
  // resolution-independent; absolute mW follows the model coefficients).
  const power::BatteryModel cell;
  const double session_s = timeline.duration_s();
  const double clip_px = static_cast<double>(cfg.video.width) *
                         cfg.video.height * cfg.fps;
  const double target_px = 854.0 * 480.0 * 25.0;
  const double scale = target_px / clip_px;
  const double std_mw = oracle.standard_energy_nj / session_s * 1e-6 * scale;
  const double adp_mw = oracle.total_energy_nj / session_s * 1e-6 * scale;
  std::printf("\n--- battery framing (480p25 workload; %.0f mAh @ %.2f V, "
              "video %.0f%% of draw) ---\n",
              cell.capacity_mah, cell.voltage_v, 100.0 * cell.video_share);
  std::printf("decoder avg power   standard %.2f mW -> adaptive %.2f mW\n",
              std_mw, adp_mw);
  std::printf("playback endurance  %.1f h -> %.1f h (+%.1f%%)\n",
              cell.playback_hours(std_mw), cell.playback_hours(adp_mw),
              100.0 * (cell.playback_hours(adp_mw) /
                           cell.playback_hours(std_mw) -
                       1.0));
  return 0;
}
