// Fig 9 reproduction: process lifespan diagram under the system-default
// baseline and the emotion-adaptive manager, for a 12-minute excited +
// 8-minute calm session.
#include <cstdio>

#include "core/manager_experiment.hpp"

using namespace affectsys;

int main() {
  core::ManagerExperimentConfig cfg;  // excited 0-12 min, calm 12-20 min
  const auto res = core::run_manager_experiment(cfg);

  std::printf("=== Fig 9: process running diagram (0-20 min) ===\n");
  std::printf("usage: %zu launches; '=' process alive, '.' not running\n",
              res.events.size());
  std::printf("emotion: excited [0, 12 min) -> calm [12, 20 min)\n");

  std::printf("\n--- system default (FIFO) baseline ---\n");
  std::printf("%s", res.baseline_trace
                        .render_timeline(res.catalog, res.duration_s, 72)
                        .c_str());
  std::printf("kills: %llu, cold starts: %llu\n",
              static_cast<unsigned long long>(res.baseline.kills),
              static_cast<unsigned long long>(res.baseline.cold_starts));

  std::printf("\n--- proposed emotion-adaptive manager ---\n");
  std::printf("%s", res.proposed_trace
                        .render_timeline(res.catalog, res.duration_s, 72)
                        .c_str());
  std::printf("kills: %llu, cold starts: %llu\n",
              static_cast<unsigned long long>(res.proposed.kills),
              static_cast<unsigned long long>(res.proposed.cold_starts));

  std::printf(
      "\npaper observations: (1) the default manager kills most processes as\n"
      "new apps arrive; (2) the proposed manager keeps emotion-relevant apps\n"
      "resident, so fewer cold starts occur after the emotion change.\n");
  std::printf("cold-start reduction: %lld (%.1f%%)\n",
              static_cast<long long>(res.baseline.cold_starts) -
                  static_cast<long long>(res.proposed.cold_starts),
              100.0 *
                  (1.0 - static_cast<double>(res.proposed.cold_starts) /
                             static_cast<double>(res.baseline.cold_starts)));
  return 0;
}
