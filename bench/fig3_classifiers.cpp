// Fig 3 reproduction: classifier comparison for on-device affect
// detection.
//
//   (a) confusion matrix of the LSTM on the RAVDESS-like corpus
//   (b) accuracy of NN(MLP) / CNN / LSTM on CREMA-D / EMOVO / RAVDESS
//   (c) weight size, float32 vs 8-bit, per model (EMOVO geometry)
//   (d) accuracy at float vs 8-bit precision (EMOVO)
//
// Corpora are synthesized (see DESIGN.md).  To keep a full run to a few
// minutes the per-speaker utterance counts are reduced below the real
// corpus sizes; set AFFECT_FIG3_FULL=1 for the larger variant.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "affect/classifier.hpp"
#include "nn/quantize.hpp"

using namespace affectsys;

namespace {

struct CorpusResult {
  std::string corpus;
  std::map<nn::ModelKind, double> accuracy_fp32;
  std::map<nn::ModelKind, double> accuracy_int8;
  nn::EvalResult lstm_eval;  // for the confusion matrix
  std::vector<affect::Emotion> labels;
};

constexpr nn::ModelKind kKinds[] = {nn::ModelKind::kMlp, nn::ModelKind::kCnn,
                                    nn::ModelKind::kLstm};

CorpusResult run_corpus(const affect::CorpusProfile& prof,
                        const affect::FeatureExtractor& fx,
                        const nn::TrainConfig& tc) {
  CorpusResult res;
  res.corpus = prof.name;
  const affect::LabelledCorpus corpus = affect::build_corpus(prof, fx, 7);
  res.labels = corpus.label_set;
  nn::Dataset train_set, test_set;
  nn::split_dataset(corpus.samples, 0.25, tc.seed, train_set, test_set);
  std::fprintf(stderr, "[fig3] %s: %zu train / %zu test\n", prof.name.c_str(),
               train_set.size(), test_set.size());

  for (nn::ModelKind kind : kKinds) {
    nn::ClassifierSpec spec{fx.feature_dim(), fx.timesteps(),
                            corpus.num_classes()};
    std::mt19937 rng(tc.seed);
    nn::Sequential model = nn::build_model(kind, spec, rng);
    nn::train(model, train_set, tc);
    const auto ev = nn::evaluate(model, test_set, corpus.num_classes());
    res.accuracy_fp32[kind] = ev.accuracy;
    if (kind == nn::ModelKind::kLstm) res.lstm_eval = ev;
    nn::quantize_model_inplace(model, nn::QuantGranularity::kPerTensor);
    res.accuracy_int8[kind] =
        nn::evaluate(model, test_set, corpus.num_classes()).accuracy;
    std::fprintf(stderr, "[fig3]   %-4s acc=%.3f acc8=%.3f\n",
                 nn::model_kind_name(kind), res.accuracy_fp32[kind],
                 res.accuracy_int8[kind]);
  }
  return res;
}

}  // namespace

int main() {
  const bool full = std::getenv("AFFECT_FIG3_FULL") != nullptr;

  const affect::FeatureConfig fc = affect::default_feature_config();
  const affect::FeatureExtractor fx(fc);

  // Reduced corpus volumes (paper corpora hold thousands of clips; the
  // synthesized stand-ins keep the speaker/emotion geometry).
  affect::CorpusProfile ravdess = affect::ravdess_profile();
  ravdess.utterances_per_speaker_emotion = full ? 4 : 1;
  affect::CorpusProfile emovo = affect::emovo_profile();
  emovo.utterances_per_speaker_emotion = full ? 14 : 4;
  affect::CorpusProfile cremad = affect::cremad_profile();
  cremad.num_speakers = full ? 91 : 30;

  nn::TrainConfig tc;
  tc.epochs = full ? 16 : 10;
  tc.batch_size = 8;
  tc.learning_rate = 1.5e-3f;
  tc.seed = 1;

  std::vector<CorpusResult> results;
  results.push_back(run_corpus(cremad, fx, tc));
  results.push_back(run_corpus(emovo, fx, tc));
  results.push_back(run_corpus(ravdess, fx, tc));

  // ---------------------------------------------------------------- Fig 3a
  std::printf("\n=== Fig 3(a): LSTM confusion matrix, RAVDESS ===\n");
  const CorpusResult& rav = results[2];
  std::printf("%-10s", "truth\\pred");
  for (affect::Emotion e : rav.labels) {
    std::printf("%10.9s", affect::emotion_name(e).data());
  }
  std::printf("\n");
  for (std::size_t t = 0; t < rav.labels.size(); ++t) {
    std::printf("%-10.9s", affect::emotion_name(rav.labels[t]).data());
    for (std::size_t p = 0; p < rav.labels.size(); ++p) {
      std::printf("%10zu", rav.lstm_eval.confusion[t][p]);
    }
    std::printf("\n");
  }

  // ---------------------------------------------------------------- Fig 3b
  std::printf("\n=== Fig 3(b): accuracy (%%) by model and corpus ===\n");
  std::printf("%-10s %10s %10s %10s\n", "corpus", "NN", "CNN", "LSTM");
  for (const CorpusResult& r : results) {
    std::printf("%-10s", r.corpus.c_str());
    for (nn::ModelKind k : kKinds) {
      std::printf(" %9.1f%%", 100.0 * r.accuracy_fp32.at(k));
    }
    std::printf("\n");
  }
  double avg_nn = 0, avg_temporal = 0;
  for (const CorpusResult& r : results) {
    avg_nn += r.accuracy_fp32.at(nn::ModelKind::kMlp);
    avg_temporal += 0.5 * (r.accuracy_fp32.at(nn::ModelKind::kCnn) +
                           r.accuracy_fp32.at(nn::ModelKind::kLstm));
  }
  std::printf("paper claim: CNN and LSTM outperform the MLP  ->  %s\n",
              avg_temporal > avg_nn ? "HOLDS" : "DOES NOT HOLD");

  // ---------------------------------------------------------------- Fig 3c
  std::printf("\n=== Fig 3(c): weight size (KB), EMOVO geometry ===\n");
  std::printf("%-6s %12s %12s %12s\n", "model", "params", "FLOAT", "8bit");
  nn::ClassifierSpec spec{fx.feature_dim(), fx.timesteps(),
                          emovo.emotions.size()};
  for (nn::ModelKind k : kKinds) {
    std::mt19937 rng(1);
    nn::Sequential model = nn::build_model(k, spec, rng);
    const std::size_t fp32 = model.weight_bytes(4);
    const std::size_t int8 =
        nn::quantize_model_inplace(model, nn::QuantGranularity::kPerTensor);
    std::printf("%-6s %12zu %10zuKB %10zuKB\n", nn::model_kind_name(k),
                model.param_count(), fp32 / 1024, int8 / 1024);
  }
  std::printf("paper: NN ~508k / CNN ~649k / LSTM ~429k parameters\n");

  // ---------------------------------------------------------------- Fig 3d
  std::printf("\n=== Fig 3(d): accuracy at FLOAT vs 8-bit, EMOVO ===\n");
  std::printf("%-6s %10s %10s %10s\n", "model", "FLOAT", "8bit", "loss");
  const CorpusResult& emv = results[1];
  bool within_3pts = true;
  for (nn::ModelKind k : kKinds) {
    const double fp = 100.0 * emv.accuracy_fp32.at(k);
    const double q8 = 100.0 * emv.accuracy_int8.at(k);
    within_3pts &= fp - q8 < 3.0;
    std::printf("%-6s %9.1f%% %9.1f%% %+9.1f%%\n", nn::model_kind_name(k), fp,
                q8, q8 - fp);
  }
  std::printf("paper claim: <3%% accuracy loss at 8-bit  ->  %s\n",
              within_3pts ? "HOLDS" : "DOES NOT HOLD");
  return 0;
}
