// Fault-layer cost and recovery benchmark.  Three questions:
//
//   1. What does the recovery plumbing cost when nothing faults?  The
//      clean path (resilient decoder behind a disabled FaultPlan) is
//      timed against the un-instrumented strict decoder on the same
//      stream — after a hard byte-identity check.  The paper-level
//      budget is < 1% decode-throughput cost; the gate here is 2% to
//      leave room for timer noise (min-of-N keeps that small).
//   2. What does decoding cost while faults fire and the decoder
//      resyncs?  Faulted streams (rate 0.1) through the resilient
//      decoder, reported as throughput plus recovery counters.
//   3. Does everything replay?  Each scenario suite runs twice and the
//      bench fails hard on any digest divergence.
//
// Dumps BENCH_fault.json; tools/run_verify.sh `fault` mode runs this in
// the Release tree and regresses clean_overhead_pct against the
// committed copy.
//
// Usage: bench_fault [output.json]   (default: BENCH_fault.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <limits>
#include <string>
#include <vector>

#include "fault/bitstream_faults.hpp"
#include "fault/plan.hpp"
#include "fault/scenario.hpp"
#include "h264/decoder.hpp"
#include "obs/json.hpp"

using namespace affectsys;

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kReps = 15;        // timing repetitions (min taken)
constexpr int kDecodesPerRep = 10;

/// Seconds for `iters` decodes of `stream` under `cfg`, one repetition.
double decode_rep(const h264::DecoderConfig& cfg,
                  std::span<const std::uint8_t> stream, int iters) {
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    h264::Decoder dec(cfg);
    const auto pics = dec.decode_annexb(stream);
    if (pics.empty()) {
      std::fprintf(stderr, "FAIL: timed decode produced no pictures\n");
      std::exit(1);
    }
  }
  const std::chrono::duration<double> dt = Clock::now() - t0;
  return dt.count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_fault.json";

  const std::span<const std::uint8_t> stream =
      fault::scenario_reference_stream();
  const h264::DecoderConfig strict_cfg{true, /*resilient=*/false};
  const h264::DecoderConfig resilient_cfg{true, /*resilient=*/true};

  // ---- Hard identity checks before any timing is trusted ------------
  // Rate-0 instrumented path must be byte-identical to the clean path.
  fault::FaultPlan disabled(fault::FaultConfig{1, 0.0, fault::kAllKinds});
  fault::FaultCounts counts;
  const std::vector<std::uint8_t> injected =
      fault::inject_annexb_faults(stream, disabled, counts);
  if (!std::equal(injected.begin(), injected.end(), stream.begin(),
                  stream.end()) ||
      counts.total != 0) {
    std::fprintf(stderr, "FAIL: rate-0 injection altered the stream\n");
    return 1;
  }
  {
    h264::Decoder strict(strict_cfg);
    h264::Decoder resilient(resilient_cfg);
    const auto a = strict.decode_annexb(stream);
    const auto b = resilient.decode_annexb(injected);
    if (fault::digest_pictures(a) != fault::digest_pictures(b)) {
      std::fprintf(stderr,
                   "FAIL: rate-0 resilient decode not byte-identical\n");
      return 1;
    }
  }

  // ---- 1. Clean-path overhead ---------------------------------------
  // Interleaved repetitions (strict, resilient, strict, ...) so both
  // configurations sample the same cache/frequency conditions; min-of-N
  // on each side discards scheduler noise.
  double strict_s = std::numeric_limits<double>::infinity();
  double clean_s = std::numeric_limits<double>::infinity();
  decode_rep(strict_cfg, stream, kDecodesPerRep);  // warmup, untimed
  for (int rep = 0; rep < kReps; ++rep) {
    strict_s = std::min(strict_s, decode_rep(strict_cfg, stream,
                                             kDecodesPerRep));
    clean_s = std::min(clean_s, decode_rep(resilient_cfg, injected,
                                           kDecodesPerRep));
  }
  const double overhead_pct = (clean_s / strict_s - 1.0) * 100.0;
  const double stream_mb =
      static_cast<double>(stream.size()) / (1024.0 * 1024.0);
  const double strict_mbs = stream_mb * kDecodesPerRep / strict_s;
  const double clean_mbs = stream_mb * kDecodesPerRep / clean_s;
  std::printf("clean path:   strict %6.2f MB/s  resilient+plan %6.2f MB/s  "
              "overhead %+.2f%%\n",
              strict_mbs, clean_mbs, overhead_pct);

  // ---- 2. Faulted recovery throughput -------------------------------
  // Pre-generate faulted streams so injection stays outside the timed
  // region, then decode them all; throughput covers error unwinding,
  // resync skips and keyframe recovery.
  std::vector<std::vector<std::uint8_t>> faulted;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    fault::FaultPlan plan(
        fault::FaultConfig{seed, 0.1, fault::kBitstreamKinds});
    fault::FaultCounts fc;
    faulted.push_back(fault::inject_annexb_faults(stream, plan, fc));
  }
  std::uint64_t nal_errors = 0, resyncs = 0, pictures = 0;
  double faulted_best = std::numeric_limits<double>::infinity();
  double faulted_bytes = 0;
  for (const auto& s : faulted) faulted_bytes += static_cast<double>(s.size());
  for (int rep = 0; rep < kReps; ++rep) {
    nal_errors = resyncs = pictures = 0;
    const auto t0 = Clock::now();
    for (const auto& s : faulted) {
      h264::Decoder dec(resilient_cfg);
      pictures += dec.decode_annexb(s).size();
      nal_errors += dec.activity().nal_errors;
      resyncs += dec.activity().resyncs;
    }
    const std::chrono::duration<double> dt = Clock::now() - t0;
    faulted_best = std::min(faulted_best, dt.count());
  }
  const double faulted_mbs =
      faulted_bytes / (1024.0 * 1024.0) / faulted_best;
  std::printf("faulted path: %6.2f MB/s over %zu streams (%llu errors, "
              "%llu resyncs, %llu pictures)\n",
              faulted_mbs, faulted.size(),
              static_cast<unsigned long long>(nal_errors),
              static_cast<unsigned long long>(resyncs),
              static_cast<unsigned long long>(pictures));

  // ---- 3. Replay identity across the suites -------------------------
  bool replay_ok = true;
  {
    const fault::ScenarioConfig cfg{7, 0.1, fault::kAllKinds};
    replay_ok = replay_ok && fault::run_bitstream_scenario(cfg) ==
                                 fault::run_bitstream_scenario(cfg);
    replay_ok = replay_ok && fault::run_audio_scenario(cfg) ==
                                 fault::run_audio_scenario(cfg);
    replay_ok = replay_ok && fault::run_serve_scenario(cfg) ==
                                 fault::run_serve_scenario(cfg);
  }
  std::printf("replay identity: %s\n", replay_ok ? "PASS" : "FAIL");

  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value("fault");
  w.key("clean").begin_object();
  w.key("strict_mb_per_sec").value(strict_mbs);
  w.key("resilient_rate0_mb_per_sec").value(clean_mbs);
  w.key("clean_overhead_pct").value(overhead_pct);
  w.end_object();
  w.key("faulted").begin_object();
  w.key("mb_per_sec").value(faulted_mbs);
  w.key("streams").value(static_cast<std::uint64_t>(faulted.size()));
  w.key("nal_errors").value(nal_errors);
  w.key("resyncs").value(resyncs);
  w.key("pictures").value(pictures);
  w.end_object();
  w.key("replay_identical").value(replay_ok);
  w.end_object();

  std::ofstream out(out_path);
  out << w.str() << "\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (!replay_ok) {
    std::fprintf(stderr, "FAIL: replay divergence\n");
    return 1;
  }
  // 2x the documented 1% budget, as noise headroom for CI machines.
  if (overhead_pct > 2.0) {
    std::fprintf(stderr,
                 "FAIL: clean-path fault overhead %.2f%% exceeds 2%%\n",
                 overhead_pct);
    return 1;
  }
  return 0;
}
