// Inference-ladder Pareto sweep: what each precision rung (fp32 MLP,
// int8 quantized MLP, binary HDC) costs and buys on the serving shapes,
// and what the ladder is worth end-to-end — sustained real-time
// sessions with the ladder on vs off.  Dumps BENCH_inference.json;
// tools/run_verify.sh `inference` mode regresses ladder_on
// sustained_sessions against the committed copy.
//
// Rung throughput is measured through the real serving inference stage
// (an InferenceBatcher flushing rung-stamped requests), so the numbers
// include quantize/dequantize and result extraction, not just the
// GEMM.  Accuracy columns come from the same held-out split every rung
// trained against: `accuracy` is agreement with the test labels,
// `agreement_vs_fp32` is how often the cheap rung matches the decision
// the fp32 rung would have made — the serving-relevant error, since the
// ladder substitutes rungs mid-session.
//
// Gates (the ladder's reason to exist):
//   - HDC rung >= 3x fp32 windows/sec through the batcher;
//   - int8 rung >= 1.5x fp32 windows/sec through the batcher;
//   - ladder-on sustains >= the ladder-off session count, without
//     shedding more frames at the common sustained point.
//
// Usage: bench_inference [output.json]   (default: BENCH_inference.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "affect/dataset.hpp"
#include "affect/hdc.hpp"
#include "android/catalog.hpp"
#include "android/personality.hpp"
#include "core/affect_table.hpp"
#include "core/thread_pool.hpp"
#include "nn/model.hpp"
#include "nn/quantize.hpp"
#include "obs/json.hpp"
#include "serve/server.hpp"

using namespace affectsys;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

template <typename F>
double min_seconds(F&& fn, int rounds = 3) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < rounds; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx =
      static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// The corpus every rung trains on — identical to bench_serve's, so the
/// serve numbers compare across benches.
affect::CorpusProfile bench_profile() {
  affect::CorpusProfile prof;
  prof.name = "serve-bench";
  prof.num_speakers = 4;
  prof.emotions = {affect::Emotion::kAngry, affect::Emotion::kCalm};
  prof.utterances_per_speaker_emotion = 6;
  prof.utterance_seconds = 1.0;
  prof.speaker_spread = 0.1;
  return prof;
}

affect::AffectClassifier train_classifier() {
  nn::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 8;
  tc.learning_rate = 2e-3f;
  return affect::train_affect_classifier(nn::ModelKind::kMlp, bench_profile(),
                                         tc);
}

/// Per-rung measurements through the serving inference stage.
struct RungPoint {
  double windows_per_sec = 0.0;
  double accuracy = 0.0;           ///< vs held-out labels
  double agreement_vs_fp32 = 0.0;  ///< same decision as the fp32 rung
};

/// Flushes `test` repeatedly through a batcher with every request
/// stamped `rung` and returns windows/sec (min-of-3 rounds).
double rung_wps(affect::AffectClassifier& clf, const serve::LadderRuntime& rt,
                const nn::Dataset& test, serve::Rung rung) {
  serve::BatcherConfig bc;
  bc.max_batch = 16;
  serve::InferenceBatcher b(clf, bc, rt);
  auto flush_all = [&] {
    std::size_t i = 0;
    while (i < test.size()) {
      const std::size_t n = std::min<std::size_t>(bc.max_batch,
                                                  test.size() - i);
      for (std::size_t j = 0; j < n; ++j, ++i) {
        serve::InferenceRequest req;
        req.session = i + 1;
        req.seq = i;
        req.rung = rung;
        req.set_features(test[i].features);
        b.enqueue(std::move(req));
      }
      b.flush();
    }
  };
  flush_all();  // warm: batch/workspace matrices at capacity
  constexpr int kReps = 30;
  const double s = min_seconds([&] {
    for (int r = 0; r < kReps; ++r) flush_all();
  });
  return s > 0.0 ? static_cast<double>(test.size()) * kReps / s : 0.0;
}

/// Per-window decisions of one rung over the test split.
std::vector<affect::Emotion> rung_decisions(affect::AffectClassifier& clf,
                                            const serve::LadderRuntime& rt,
                                            const nn::Dataset& test,
                                            serve::Rung rung) {
  serve::BatcherConfig bc;
  bc.max_batch = 1;  // one request per flush: per-window decisions
  serve::InferenceBatcher b(clf, bc, rt);
  std::vector<affect::Emotion> out;
  out.reserve(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    serve::InferenceRequest req;
    req.session = i + 1;
    req.seq = i;
    req.rung = rung;
    req.set_features(test[i].features);
    b.enqueue(std::move(req));
    const auto res = b.flush();
    out.push_back(res.at(0).result.emotion);
  }
  return out;
}

struct LadderPoint {
  std::size_t sessions = 0;
  double p99_ms = 0.0;
  double windows_per_sec = 0.0;
  double shed_rate = 0.0;  ///< frames dropped / frames due
  std::uint64_t windows_int8 = 0;
  std::uint64_t windows_hdc = 0;
  bool realtime = false;
};

/// One end-to-end serving point (mirrors bench_serve's sweep shape).
LadderPoint run_ladder_point(const serve::SessionEnv& env,
                             serve::ServerConfig cfg, std::size_t n) {
  cfg.max_sessions = n;
  cfg.session.record_trace = false;
  serve::SessionManager server(cfg, env);
  for (std::size_t i = 0; i < n; ++i) {
    server.create_session();
    server.tick();  // staggered admission, as in bench_serve
  }
  for (int t = 0; t < 40; ++t) server.tick();

  const auto windows_before = server.batcher_stats().windows;
  std::vector<double> tick_ms;
  constexpr int kTimedTicks = 60;
  tick_ms.reserve(kTimedTicks);
  const auto t0 = Clock::now();
  for (int t = 0; t < kTimedTicks; ++t) {
    const auto a = Clock::now();
    server.tick();
    tick_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - a).count());
  }
  const double total_s = seconds_since(t0);

  LadderPoint pt;
  pt.sessions = n;
  pt.p99_ms = percentile(tick_ms, 0.99);
  pt.windows_per_sec =
      total_s > 0.0
          ? static_cast<double>(server.batcher_stats().windows -
                                windows_before) /
                total_s
          : 0.0;
  pt.windows_int8 = server.batcher_stats().windows_int8;
  pt.windows_hdc = server.batcher_stats().windows_hdc;
  std::uint64_t dropped = 0, decoded = 0;
  for (std::size_t id = 1; id <= n; ++id) {
    const auto& st = server.session(id).stats();
    dropped += st.frames_dropped;
    decoded += st.frames_decoded;
  }
  pt.shed_rate = (dropped + decoded) > 0
                     ? static_cast<double>(dropped) /
                           static_cast<double>(dropped + decoded)
                     : 0.0;
  pt.realtime = pt.p99_ms <= cfg.session.tick_s * 1000.0;
  return pt;
}

serve::ServerConfig serving_config(bool ladder_on) {
  serve::ServerConfig cfg;
  cfg.shards = 4;
  cfg.wheel = true;
  cfg.feature_bank_cache = true;
  cfg.ladder.enabled = ladder_on;
  if (ladder_on) {
    // Precision pressure engages well before the frame-shed ladder
    // (server backlog_hi stays at its default 48): drop precision
    // first, frames last.
    cfg.ladder.backlog_hi = 12;
    cfg.ladder.backlog_lo = 4;
    cfg.ladder.conf_int8 = 0.55f;
    cfg.ladder.conf_hdc = 0.70f;
    cfg.ladder.calm_windows = 2;
    cfg.ladder.hysteresis_ticks = 5;
  }
  return cfg;
}

void write_ladder_point(obs::JsonWriter& w, const LadderPoint& pt) {
  w.begin_object();
  w.key("sessions").value(static_cast<std::uint64_t>(pt.sessions));
  w.key("p99_tick_ms").value(pt.p99_ms);
  w.key("windows_per_sec").value(pt.windows_per_sec);
  w.key("shed_rate").value(pt.shed_rate);
  w.key("windows_int8").value(pt.windows_int8);
  w.key("windows_hdc").value(pt.windows_hdc);
  w.key("realtime").value(pt.realtime);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_inference.json";

  std::printf("training fp32 + int8 + hdc models...\n");
  affect::AffectClassifier classifier = train_classifier();
  auto quantized = nn::QuantizedMlp::from(classifier.model());
  if (!quantized) {
    std::fprintf(stderr, "FAIL: MLP did not quantize\n");
    return 1;
  }
  affect::HdcClassifier hdc =
      affect::train_hdc_classifier(bench_profile(), affect::HdcConfig{});
  serve::LadderRuntime rt;
  rt.int8_model = &*quantized;
  rt.hdc = &hdc;

  // The same held-out split every rung trained against (split_seed 1,
  // corpus_seed 7 — what train_affect_classifier/train_hdc_classifier
  // use).
  const affect::FeatureExtractor fx(classifier.feature_config());
  const affect::LabelledCorpus corpus = build_corpus(bench_profile(), fx, 7);
  nn::Dataset train_set, test_set;
  nn::split_dataset(corpus.samples, 0.2, 1, train_set, test_set);
  std::printf("held-out windows: %zu\n", test_set.size());

  // ---- per-rung Pareto: windows/sec through the serving batcher vs
  // accuracy on the held-out split.
  const std::size_t threads_before = core::global_threads();
  core::set_global_threads(0);  // single-core, like the kernel bench
  const serve::Rung rungs[] = {serve::Rung::kFp32, serve::Rung::kInt8,
                               serve::Rung::kHdc};
  RungPoint pts[3];
  std::vector<affect::Emotion> fp32_dec =
      rung_decisions(classifier, rt, test_set, serve::Rung::kFp32);
  for (int r = 0; r < 3; ++r) {
    pts[r].windows_per_sec = rung_wps(classifier, rt, test_set, rungs[r]);
    const auto dec = rung_decisions(classifier, rt, test_set, rungs[r]);
    std::size_t correct = 0, agree = 0;
    for (std::size_t i = 0; i < test_set.size(); ++i) {
      if (dec[i] == corpus.label_set.at(test_set[i].label)) ++correct;
      if (dec[i] == fp32_dec[i]) ++agree;
    }
    pts[r].accuracy =
        static_cast<double>(correct) / static_cast<double>(test_set.size());
    pts[r].agreement_vs_fp32 =
        static_cast<double>(agree) / static_cast<double>(test_set.size());
    std::printf("%-5s %9.0f win/s  accuracy %.3f  vs-fp32 %.3f\n",
                serve::rung_name(rungs[r]), pts[r].windows_per_sec,
                pts[r].accuracy, pts[r].agreement_vs_fp32);
  }
  core::set_global_threads(threads_before);
  const double int8_speedup =
      pts[0].windows_per_sec > 0.0
          ? pts[1].windows_per_sec / pts[0].windows_per_sec
          : 0.0;
  const double hdc_speedup =
      pts[0].windows_per_sec > 0.0
          ? pts[2].windows_per_sec / pts[0].windows_per_sec
          : 0.0;

  // ---- end-to-end: ladder on vs off, sustained real-time sessions.
  std::printf("serving sweep (ladder off vs on)...\n");
  serve::WorkloadConfig wc;
  wc.script_quantum_samples = 1600;
  serve::SharedWorkload workload{wc};
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  core::AppAffectTable table;
  for (const auto e : {affect::Emotion::kAngry, affect::Emotion::kCalm}) {
    table.learn_from_profile(e, android::profile_for_emotion(e), catalog);
  }
  serve::SessionEnv env;
  env.workload = &workload;
  env.classifier = &classifier;
  env.app_table = &table;
  env.catalog = &catalog;
  env.hdc = &hdc;

  const std::vector<std::size_t> counts = {8, 16, 32, 64};
  std::vector<LadderPoint> off_pts, on_pts;
  std::size_t sustained_off = 0, sustained_on = 0;
  bool off_prefix = true, on_prefix = true;
  for (const std::size_t n : counts) {
    const LadderPoint off = run_ladder_point(env, serving_config(false), n);
    const LadderPoint on = run_ladder_point(env, serving_config(true), n);
    std::printf(
        "%4zu sessions: off p99 %6.2f ms %s shed %.3f | on p99 %6.2f ms %s "
        "shed %.3f (int8 %llu, hdc %llu)\n",
        n, off.p99_ms, off.realtime ? "rt " : "OVR", off.shed_rate, on.p99_ms,
        on.realtime ? "rt " : "OVR", on.shed_rate,
        static_cast<unsigned long long>(on.windows_int8),
        static_cast<unsigned long long>(on.windows_hdc));
    off_prefix = off_prefix && off.realtime;
    on_prefix = on_prefix && on.realtime;
    if (off_prefix) sustained_off = n;
    if (on_prefix) sustained_on = n;
    off_pts.push_back(off);
    on_pts.push_back(on);
  }
  // Shed comparison at the largest count both configurations sustained.
  double shed_off = 0.0, shed_on = 0.0;
  const std::size_t common = std::min(sustained_off, sustained_on);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == common) {
      shed_off = off_pts[i].shed_rate;
      shed_on = on_pts[i].shed_rate;
    }
  }

  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value("inference");
  w.key("rungs").begin_object();
  const char* names[] = {"fp32", "int8", "hdc"};
  for (int r = 0; r < 3; ++r) {
    w.key(names[r]).begin_object();
    w.key("windows_per_sec").value(pts[r].windows_per_sec);
    w.key("accuracy").value(pts[r].accuracy);
    w.key("agreement_vs_fp32").value(pts[r].agreement_vs_fp32);
    w.key("speedup_vs_fp32")
        .value(pts[0].windows_per_sec > 0.0
                   ? pts[r].windows_per_sec / pts[0].windows_per_sec
                   : 0.0);
    w.end_object();
  }
  w.end_object();
  w.key("ladder_off").begin_object();
  w.key("sustained_sessions").value(static_cast<std::uint64_t>(sustained_off));
  w.key("shed_rate_at_common").value(shed_off);
  w.key("sweep").begin_array();
  for (const LadderPoint& pt : off_pts) write_ladder_point(w, pt);
  w.end_array();
  w.end_object();
  w.key("ladder_on").begin_object();
  w.key("sustained_sessions").value(static_cast<std::uint64_t>(sustained_on));
  w.key("shed_rate_at_common").value(shed_on);
  w.key("sweep").begin_array();
  for (const LadderPoint& pt : on_pts) write_ladder_point(w, pt);
  w.end_array();
  w.end_object();
  w.end_object();

  std::ofstream out(out_path);
  out << w.str() << "\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("sustained: off %zu, on %zu\nwrote %s\n", sustained_off,
              sustained_on, out_path.c_str());

  bool ok = true;
  if (hdc_speedup < 3.0) {
    std::fprintf(stderr, "FAIL: HDC rung %.2fx fp32 (need >= 3x)\n",
                 hdc_speedup);
    ok = false;
  }
  if (int8_speedup < 1.5) {
    std::fprintf(stderr, "FAIL: int8 rung %.2fx fp32 (need >= 1.5x)\n",
                 int8_speedup);
    ok = false;
  }
  if (sustained_on < sustained_off) {
    std::fprintf(stderr,
                 "FAIL: ladder-on sustains %zu sessions < ladder-off %zu\n",
                 sustained_on, sustained_off);
    ok = false;
  }
  if (shed_on > shed_off + 1e-9) {
    std::fprintf(stderr,
                 "FAIL: ladder-on sheds more frames (%.4f vs %.4f) at %zu "
                 "sessions\n",
                 shed_on, shed_off, common);
    ok = false;
  }
  return ok ? 0 : 1;
}
