// Ablation: Input Selector parameter sweep.
//
// DESIGN.md calls out the (S_th, f) deletion policy as a design choice;
// this bench maps the power/quality Pareto the two knobs span, which is
// the space the emotion input navigates at runtime.
#include <cstdio>

#include "adaptive/input_selector.hpp"
#include "h264/decoder.hpp"
#include "h264/encoder.hpp"
#include "h264/quality.hpp"
#include "h264/testvideo.hpp"
#include "power/model.hpp"

using namespace affectsys;

int main() {
  // Prototype clip identical to the playback system's defaults.
  h264::VideoConfig vc{64, 64, 48, 1.2, 0.6, 2.5, 77};
  const auto video = h264::generate_mixed_video(vc, 0.25);
  h264::EncoderConfig ec{64, 64, 24, 12, 2, 4, true};
  h264::Encoder enc(ec);
  const auto stream = enc.encode_annexb(video);

  // Calibrate the power model once on the standard decode.
  h264::Decoder ref;
  ref.decode_annexb(stream);
  const auto coeff = power::calibrate_to_deblock_share(
      power::EnergyCoefficients{}, ref.activity(), 0.314);
  const double std_energy = power::decode_energy(ref.activity(), coeff).total_nj();

  std::printf("=== ablation: Input Selector (S_th x f) power/quality Pareto ===\n");
  std::printf("%6s %4s %10s %10s %12s %10s\n", "S_th", "f", "deleted",
              "norm.power", "saving", "PSNR(dB)");
  for (std::size_t s_th : {0u, 80u, 140u, 250u, 500u, 4096u}) {
    for (unsigned f : {1u, 2u, 4u}) {
      adaptive::InputSelector sel({s_th, f});
      const auto filtered = sel.filter_annexb(stream);
      h264::Decoder dec;
      auto decoded = dec.decode_annexb(filtered);
      const double energy =
          power::decode_energy(dec.activity(), coeff).total_nj();
      const auto display = h264::assemble_display_sequence(
          std::move(decoded), static_cast<int>(video.size()));
      std::vector<h264::YuvFrame> frames;
      for (const auto& p : display) frames.push_back(p.frame);
      const double psnr = h264::sequence_psnr(video, frames);
      std::printf("%6zu %4u %6zu/%-3zu %10.3f %11.1f%% %10.2f\n", s_th, f,
                  sel.stats().deleted, sel.stats().units_in, energy / std_energy,
                  100.0 * (1.0 - energy / std_energy), psnr);
      if (s_th == 0) break;  // f is irrelevant when nothing qualifies
    }
  }
  std::printf("\npaper operating point: S_th=140, f=1 (the 'Deletion' mode)\n");
  return 0;
}
