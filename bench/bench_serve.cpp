// Session-server capacity sweep: how many concurrent end-to-end
// sessions (affect stream -> adaptive decode -> app manager) one
// process sustains in real time, what cross-session batching buys over
// per-session inference, what the sharded event-driven serve layer
// (timer wheel + feature-bank cache) buys over the global tick, and how
// many mostly-idle duty-cycled sessions the wheel carries.  Dumps
// BENCH_serve.json; tools/run_verify.sh `serve` mode regresses
// sustained_sessions and sustained_idle_sessions against the committed
// copy.
//
// Real-time criterion: a tick advances tick_s = 100 ms of media time,
// so a session count is "sustained" when the p99 tick wall time stays
// under 100 ms — the server keeps up with capture even at its slowest.
//
// Warm-up: every sweep point runs long enough before the timed region
// for the steady state to establish — staging rings, buffer pool and
// batcher scratch at their high-water marks, the clip past its first
// wrap, the window cadence live — so the percentiles measure the steady
// state, not first-touch allocation spikes (p10 is reported alongside
// p50/p99 to make residual skew visible: a warm steady state has a
// tight p10..p99 spread).
//
// The batch section times the inference stage in isolation (identical
// pending windows through a batched and an unbatched InferenceBatcher)
// and verifies the two produce bit-identical probabilities before
// trusting the throughput numbers; the bench fails hard if batching at
// 8 rows is not a win, or if the sharded+cached configuration is not
// >= 1.5x the global-tick baseline at 32 active sessions, since those
// are the whole point of the serve layer.
//
// Usage: bench_serve [output.json]   (default: BENCH_serve.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "affect/speech_synth.hpp"
#include "android/catalog.hpp"
#include "android/personality.hpp"
#include "core/affect_table.hpp"
#include "core/thread_pool.hpp"
#include "nn/model.hpp"
#include "obs/alloc_hooks.hpp"
#include "obs/json.hpp"
#include "serve/server.hpp"

using namespace affectsys;

namespace {

using Clock = std::chrono::steady_clock;

struct SweepPoint {
  std::size_t sessions = 0;
  double p10_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double windows_per_sec = 0.0;
  std::uint64_t batched_windows = 0;
  std::uint64_t session_runs = 0;  ///< due-list work actually executed
  bool realtime = false;
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

affect::AffectClassifier train_classifier() {
  affect::CorpusProfile prof;
  prof.name = "serve-bench";
  prof.num_speakers = 4;
  prof.emotions = {affect::Emotion::kAngry, affect::Emotion::kCalm};
  prof.utterances_per_speaker_emotion = 6;
  prof.utterance_seconds = 1.0;
  prof.speaker_spread = 0.1;
  nn::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 8;
  tc.learning_rate = 2e-3f;
  return affect::train_affect_classifier(nn::ModelKind::kMlp, prof, tc);
}

SweepPoint run_sweep_point(const serve::SessionEnv& env,
                           serve::ServerConfig cfg, std::size_t n,
                           std::size_t admit_per_tick, int warmup_ticks,
                           int timed_ticks) {
  cfg.max_sessions = n;
  serve::SessionManager server(cfg, env);
  // Staggered admission (a few joins per tick), like any real arrival
  // process: it spreads the per-session window schedules across ticks.
  // Admitting everyone in the same tick phase-locks every session's
  // stride and turns each 5th tick into an N-window burst — a
  // worst-case the server survives via its backlog, but not a steady
  // state to size capacity from.
  for (std::size_t i = 0; i < n;) {
    for (std::size_t j = 0; j < admit_per_tick && i < n; ++j, ++i) {
      server.create_session();
    }
    server.tick();
  }

  for (int t = 0; t < warmup_ticks; ++t) server.tick();
  const auto windows_before = server.batcher_stats().windows;
  const auto runs_before = server.stats().session_runs;

  std::vector<double> tick_ms;
  tick_ms.reserve(static_cast<std::size_t>(timed_ticks));
  const auto t0 = Clock::now();
  for (int t = 0; t < timed_ticks; ++t) {
    const auto a = Clock::now();
    server.tick();
    tick_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - a).count());
  }
  const double total_s = std::chrono::duration<double>(Clock::now() - t0).count();

  SweepPoint pt;
  pt.sessions = n;
  pt.p10_ms = percentile(tick_ms, 0.10);
  pt.p50_ms = percentile(tick_ms, 0.50);
  pt.p99_ms = percentile(tick_ms, 0.99);
  double sum = 0.0;
  for (const double v : tick_ms) sum += v;
  pt.mean_ms = sum / static_cast<double>(tick_ms.size());
  pt.windows_per_sec =
      total_s > 0.0
          ? static_cast<double>(server.batcher_stats().windows - windows_before) /
                total_s
          : 0.0;
  pt.batched_windows = server.batcher_stats().batched_windows;
  pt.session_runs = server.stats().session_runs - runs_before;
  pt.realtime = pt.p99_ms <= cfg.session.tick_s * 1000.0;
  return pt;
}

/// The sharded event-driven serving configuration the sweep measures.
serve::ServerConfig serving_config() {
  serve::ServerConfig cfg;
  cfg.shards = 4;
  cfg.wheel = true;
  cfg.feature_bank_cache = true;
  return cfg;
}

/// The pre-shard global tick: one batcher, every session every tick,
/// live feature extraction.
serve::ServerConfig baseline_config() {
  serve::ServerConfig cfg;
  cfg.shards = 1;
  cfg.wheel = false;
  cfg.feature_bank_cache = false;
  return cfg;
}

/// Mostly-idle fleet point: duty-cycled sessions (8 active ticks, then
/// 248 idle — a 1/32 duty factor) on the timer wheel.  record_trace off
/// so a thousand sessions do not grow replay logs for the bench's
/// duration.
SweepPoint run_idle_point(const serve::SessionEnv& env, std::size_t n) {
  serve::ServerConfig cfg = serving_config();
  cfg.session.duty_active_ticks = 8;
  cfg.session.duty_idle_ticks = 248;
  cfg.session.record_trace = false;
  // Watermarks scale with the due set, not the fleet: ~n/32 sessions
  // are awake per tick, each emitting at most one window per 5 ticks.
  cfg.backlog_hi = std::max<std::size_t>(48, n / 8);
  cfg.backlog_lo = cfg.backlog_hi / 3;
  return run_sweep_point(env, cfg, n, /*admit_per_tick=*/8,
                         /*warmup_ticks=*/260, /*timed_ticks=*/300);
}

/// Steady-state allocation probe: 8 pooled sessions ticking inline
/// (thread pool off, as on the paper's single-core edge target) must
/// not touch the allocator at all once warm.  The probe env drops the
/// app manager — the zero-allocation contract covers the pooled serve
/// path (audio -> features -> batcher -> decode), not the Android app
/// emulator riding on top of it.  Returns the allocation count over
/// 100 steady ticks, or -1 when the new/delete hooks are compiled out
/// (non-AFFECTSYS_METRICS build).
std::int64_t run_alloc_probe(serve::SessionEnv env) {
  if (!obs::alloc_tracking_enabled()) return -1;
  env.app_table = nullptr;
  env.catalog = nullptr;
  const std::size_t threads_before = core::global_threads();
  core::set_global_threads(0);

  serve::ServerConfig cfg = serving_config();
  cfg.session.record_trace = false;
  serve::SessionManager server(cfg, env);
  for (int i = 0; i < 8; ++i) server.create_session();
  for (int i = 0; i < 150; ++i) server.tick();

  const std::uint64_t before = obs::alloc_count();
  for (int i = 0; i < 100; ++i) server.tick();
  const std::uint64_t after = obs::alloc_count();

  core::set_global_threads(threads_before);
  return static_cast<std::int64_t>(after - before);
}

struct BatchResult {
  double batched_wps = 0.0;
  double unbatched_wps = 0.0;
  bool identical = true;
};

/// Times the inference stage alone: the same `rows` pending windows,
/// flushed through a batched and an unbatched batcher, repeatedly.
BatchResult run_batch_compare(affect::AffectClassifier& clf,
                              std::size_t rows, int reps) {
  affect::FeatureExtractor fx(clf.feature_config());
  affect::SpeechSynthesizer synth(17);
  std::vector<nn::Matrix> features;
  for (std::size_t i = 0; i < rows; ++i) {
    const auto e = (i % 2 == 0) ? affect::Emotion::kAngry
                                : affect::Emotion::kCalm;
    const auto utt =
        synth.synthesize(e, static_cast<int>(i), 1.0, 16000.0, 0.1);
    features.push_back(fx.extract(utt.samples));
  }

  auto flush_once = [&](serve::InferenceBatcher& b) {
    for (std::size_t i = 0; i < rows; ++i) {
      serve::InferenceRequest req;
      req.session = i + 1;
      req.seq = i;
      req.set_features(features[i]);
      b.enqueue(std::move(req));
    }
    return b.flush();
  };

  auto time_mode = [&](bool batched) {
    serve::BatcherConfig cfg;
    cfg.max_batch = rows;
    cfg.batched = batched;
    serve::InferenceBatcher b(clf, cfg);
    // Warm flush: batch/workspace matrices at capacity before timing.
    flush_once(b);
    double best = std::numeric_limits<double>::infinity();
    for (int round = 0; round < 3; ++round) {
      const auto t0 = Clock::now();
      for (int r = 0; r < reps; ++r) flush_once(b);
      best = std::min(
          best, std::chrono::duration<double>(Clock::now() - t0).count());
    }
    return best > 0.0 ? static_cast<double>(rows) * reps / best : 0.0;
  };

  BatchResult res;
  res.batched_wps = time_mode(true);
  res.unbatched_wps = time_mode(false);

  // Bit-identity gate: the throughput numbers only matter if the two
  // modes produce the same floats.
  serve::BatcherConfig bc;
  bc.max_batch = rows;
  bc.batched = true;
  serve::InferenceBatcher bb(clf, bc);
  bc.batched = false;
  serve::InferenceBatcher ub(clf, bc);
  const auto rb = flush_once(bb);
  const auto ru = flush_once(ub);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto& pa = rb[i].result.probabilities;
    const auto& pb = ru[i].result.probabilities;
    if (pa.size() != pb.size() ||
        std::memcmp(pa.data(), pb.data(), pa.size() * sizeof(float)) != 0) {
      res.identical = false;
    }
  }
  return res;
}

void write_point(obs::JsonWriter& w, const SweepPoint& pt) {
  w.begin_object();
  w.key("sessions").value(static_cast<std::uint64_t>(pt.sessions));
  w.key("p10_tick_ms").value(pt.p10_ms);
  w.key("p50_tick_ms").value(pt.p50_ms);
  w.key("p99_tick_ms").value(pt.p99_ms);
  w.key("mean_tick_ms").value(pt.mean_ms);
  w.key("windows_per_sec").value(pt.windows_per_sec);
  w.key("session_runs").value(pt.session_runs);
  w.key("realtime").value(pt.realtime);
  w.end_object();
}

void print_point(const char* tag, const SweepPoint& pt) {
  std::printf(
      "%s %4zu sessions: p10 %6.2f  p50 %6.2f  p99 %6.2f ms  "
      "%7.1f win/s  %s\n",
      tag, pt.sessions, pt.p10_ms, pt.p50_ms, pt.p99_ms, pt.windows_per_sec,
      pt.realtime ? "realtime" : "OVER BUDGET");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";

  std::printf("training classifier + synthesizing workload...\n");
  // Hop-quantized scripts: the feature-bank cache configuration (and
  // byte-identical to live extraction, which the baseline runs).
  serve::WorkloadConfig wc;
  wc.script_quantum_samples = 1600;
  serve::SharedWorkload workload{wc};
  affect::AffectClassifier classifier = train_classifier();
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  core::AppAffectTable table;
  for (const auto e : {affect::Emotion::kAngry, affect::Emotion::kCalm}) {
    table.learn_from_profile(e, android::profile_for_emotion(e), catalog);
  }
  serve::SessionEnv env;
  env.workload = &workload;
  env.classifier = &classifier;
  env.app_table = &table;
  env.catalog = &catalog;

  // ---- active sweep: always-on sessions, sharded+cached serving.
  const std::vector<std::size_t> counts = {1, 2, 4, 8, 16, 32, 64};
  std::vector<SweepPoint> sweep;
  std::size_t sustained = 0;
  bool prefix_realtime = true;
  for (const std::size_t n : counts) {
    const SweepPoint pt =
        run_sweep_point(env, serving_config(), n, /*admit_per_tick=*/1,
                        /*warmup_ticks=*/40, /*timed_ticks=*/60);
    print_point("active", pt);
    // Sustained = largest count with every smaller count also real
    // time; a lucky large-N run does not count past a failure.
    prefix_realtime = prefix_realtime && pt.realtime;
    if (prefix_realtime) sustained = n;
    sweep.push_back(pt);
  }

  // ---- sharded+cached vs global-tick baseline at 32 active sessions.
  const SweepPoint base32 =
      run_sweep_point(env, baseline_config(), 32, /*admit_per_tick=*/1,
                      /*warmup_ticks=*/40, /*timed_ticks=*/60);
  print_point("base  ", base32);
  const SweepPoint& opt32 = sweep[5];  // counts[5] == 32
  const double active32_speedup =
      base32.windows_per_sec > 0.0
          ? opt32.windows_per_sec / base32.windows_per_sec
          : 0.0;
  std::printf("active32 speedup vs global tick: %.2fx\n", active32_speedup);

  // ---- idle sweep: mostly-idle duty-cycled fleet on the wheel.
  std::vector<SweepPoint> idle;
  std::size_t sustained_idle = 0;
  bool idle_prefix = true;
  for (const std::size_t n : {std::size_t{256}, std::size_t{512},
                              std::size_t{1024}}) {
    const SweepPoint pt = run_idle_point(env, n);
    print_point("idle  ", pt);
    idle_prefix = idle_prefix && pt.realtime;
    if (idle_prefix) sustained_idle = n;
    idle.push_back(pt);
  }

  // ---- zero-steady-state-allocation gauge (pool-less inline ticks).
  const std::int64_t steady_allocs = run_alloc_probe(env);
  if (steady_allocs < 0) {
    std::printf("steady-state allocs: n/a (alloc hooks compiled out)\n");
  } else {
    std::printf("steady-state allocs over 100 ticks: %lld\n",
                static_cast<long long>(steady_allocs));
  }

  const BatchResult b8 = run_batch_compare(classifier, 8, 200);
  const BatchResult b16 = run_batch_compare(classifier, 16, 200);
  std::printf("batch  8: %8.0f win/s batched vs %8.0f unbatched (%.2fx)%s\n",
              b8.batched_wps, b8.unbatched_wps,
              b8.unbatched_wps > 0.0 ? b8.batched_wps / b8.unbatched_wps : 0.0,
              b8.identical ? "" : "  BIT MISMATCH");
  std::printf("batch 16: %8.0f win/s batched vs %8.0f unbatched (%.2fx)%s\n",
              b16.batched_wps, b16.unbatched_wps,
              b16.unbatched_wps > 0.0 ? b16.batched_wps / b16.unbatched_wps
                                      : 0.0,
              b16.identical ? "" : "  BIT MISMATCH");

  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value("serve");
  w.key("sustained_sessions").value(static_cast<std::uint64_t>(sustained));
  w.key("sustained_idle_sessions")
      .value(static_cast<std::uint64_t>(sustained_idle));
  w.key("active32_speedup").value(active32_speedup);
  w.key("steady_state_allocs").value(static_cast<std::int64_t>(steady_allocs));
  w.key("sweep").begin_array();
  for (const SweepPoint& pt : sweep) write_point(w, pt);
  w.end_array();
  w.key("baseline32").begin_object();
  w.key("windows_per_sec").value(base32.windows_per_sec);
  w.key("p99_tick_ms").value(base32.p99_ms);
  w.end_object();
  w.key("idle_sweep").begin_array();
  for (const SweepPoint& pt : idle) write_point(w, pt);
  w.end_array();
  w.key("batch").begin_object();
  w.key("rows8_batched_windows_per_sec").value(b8.batched_wps);
  w.key("rows8_unbatched_windows_per_sec").value(b8.unbatched_wps);
  w.key("rows8_speedup")
      .value(b8.unbatched_wps > 0.0 ? b8.batched_wps / b8.unbatched_wps : 0.0);
  w.key("rows16_batched_windows_per_sec").value(b16.batched_wps);
  w.key("rows16_unbatched_windows_per_sec").value(b16.unbatched_wps);
  w.key("rows16_speedup")
      .value(b16.unbatched_wps > 0.0 ? b16.batched_wps / b16.unbatched_wps
                                     : 0.0);
  w.end_object();
  w.end_object();

  std::ofstream out(out_path);
  out << w.str() << "\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("sustained sessions: %zu (idle: %zu)\nwrote %s\n", sustained,
              sustained_idle, out_path.c_str());

  if (!b8.identical || !b16.identical) {
    std::fprintf(stderr, "FAIL: batched results not bit-identical\n");
    return 1;
  }
  if (b8.batched_wps <= b8.unbatched_wps) {
    std::fprintf(stderr,
                 "FAIL: batching at 8 rows is not a throughput win\n");
    return 1;
  }
  if (active32_speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: sharded+cached serving is %.2fx the global-tick "
                 "baseline at 32 sessions (need >= 1.5x)\n",
                 active32_speedup);
    return 1;
  }
  if (steady_allocs > 0) {
    std::fprintf(stderr,
                 "FAIL: steady-state serve ticks performed %lld allocations\n",
                 static_cast<long long>(steady_allocs));
    return 1;
  }
  return 0;
}
