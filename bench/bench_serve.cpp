// Session-server capacity sweep: how many concurrent end-to-end
// sessions (affect stream -> adaptive decode -> app manager) one
// process sustains in real time, and what cross-session batching buys
// over per-session inference.  Dumps BENCH_serve.json;
// tools/run_verify.sh `serve` mode regresses sustained_sessions against
// the committed copy.
//
// Real-time criterion: a tick advances tick_s = 100 ms of media time,
// so a session count is "sustained" when the p99 tick wall time stays
// under 100 ms — the server keeps up with capture even at its slowest.
//
// The batch section times the inference stage in isolation (identical
// pending windows through a batched and an unbatched InferenceBatcher)
// and verifies the two produce bit-identical probabilities before
// trusting the throughput numbers; the bench fails hard if batching at
// 8 rows is not a win, since that is the whole point of the shared
// batcher.
//
// Usage: bench_serve [output.json]   (default: BENCH_serve.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "affect/speech_synth.hpp"
#include "android/catalog.hpp"
#include "android/personality.hpp"
#include "core/affect_table.hpp"
#include "nn/model.hpp"
#include "obs/json.hpp"
#include "serve/server.hpp"

using namespace affectsys;

namespace {

using Clock = std::chrono::steady_clock;

struct SweepPoint {
  std::size_t sessions = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double windows_per_sec = 0.0;
  std::uint64_t batched_windows = 0;
  bool realtime = false;
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

affect::AffectClassifier train_classifier() {
  affect::CorpusProfile prof;
  prof.name = "serve-bench";
  prof.num_speakers = 4;
  prof.emotions = {affect::Emotion::kAngry, affect::Emotion::kCalm};
  prof.utterances_per_speaker_emotion = 6;
  prof.utterance_seconds = 1.0;
  prof.speaker_spread = 0.1;
  nn::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 8;
  tc.learning_rate = 2e-3f;
  return affect::train_affect_classifier(nn::ModelKind::kMlp, prof, tc);
}

SweepPoint run_sweep_point(const serve::SessionEnv& env, std::size_t n,
                           int warmup_ticks, int timed_ticks) {
  serve::ServerConfig cfg;
  cfg.max_sessions = n;
  serve::SessionManager server(cfg, env);
  // Staggered admission (one join per tick), like any real arrival
  // process: it spreads the per-session window schedules across ticks.
  // Admitting everyone in the same tick phase-locks every session's
  // stride and turns each 5th tick into an N-window burst — a
  // worst-case the server survives via its backlog, but not a steady
  // state to size capacity from.
  for (std::size_t i = 0; i < n; ++i) {
    server.create_session();
    server.tick();
  }

  for (int t = 0; t < warmup_ticks; ++t) server.tick();
  const auto windows_before = server.batcher_stats().windows;

  std::vector<double> tick_ms;
  tick_ms.reserve(static_cast<std::size_t>(timed_ticks));
  const auto t0 = Clock::now();
  for (int t = 0; t < timed_ticks; ++t) {
    const auto a = Clock::now();
    server.tick();
    tick_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - a).count());
  }
  const double total_s = std::chrono::duration<double>(Clock::now() - t0).count();

  SweepPoint pt;
  pt.sessions = n;
  pt.p50_ms = percentile(tick_ms, 0.50);
  pt.p99_ms = percentile(tick_ms, 0.99);
  double sum = 0.0;
  for (const double v : tick_ms) sum += v;
  pt.mean_ms = sum / static_cast<double>(tick_ms.size());
  pt.windows_per_sec =
      total_s > 0.0
          ? static_cast<double>(server.batcher_stats().windows - windows_before) /
                total_s
          : 0.0;
  pt.batched_windows = server.batcher_stats().batched_windows;
  pt.realtime = pt.p99_ms <= cfg.session.tick_s * 1000.0;
  return pt;
}

struct BatchResult {
  double batched_wps = 0.0;
  double unbatched_wps = 0.0;
  bool identical = true;
};

/// Times the inference stage alone: the same `rows` pending windows,
/// flushed through a batched and an unbatched batcher, repeatedly.
BatchResult run_batch_compare(affect::AffectClassifier& clf,
                              std::size_t rows, int reps) {
  affect::FeatureExtractor fx(clf.feature_config());
  affect::SpeechSynthesizer synth(17);
  std::vector<nn::Matrix> features;
  for (std::size_t i = 0; i < rows; ++i) {
    const auto e = (i % 2 == 0) ? affect::Emotion::kAngry
                                : affect::Emotion::kCalm;
    const auto utt =
        synth.synthesize(e, static_cast<int>(i), 1.0, 16000.0, 0.1);
    features.push_back(fx.extract(utt.samples));
  }

  auto flush_once = [&](serve::InferenceBatcher& b) {
    for (std::size_t i = 0; i < rows; ++i) {
      serve::InferenceRequest req;
      req.session = i + 1;
      req.seq = i;
      req.features = features[i];
      b.enqueue(std::move(req));
    }
    return b.flush();
  };

  auto time_mode = [&](bool batched) {
    serve::BatcherConfig cfg;
    cfg.max_batch = rows;
    cfg.batched = batched;
    serve::InferenceBatcher b(clf, cfg);
    double best = std::numeric_limits<double>::infinity();
    for (int round = 0; round < 3; ++round) {
      const auto t0 = Clock::now();
      for (int r = 0; r < reps; ++r) flush_once(b);
      best = std::min(
          best, std::chrono::duration<double>(Clock::now() - t0).count());
    }
    return best > 0.0 ? static_cast<double>(rows) * reps / best : 0.0;
  };

  BatchResult res;
  res.batched_wps = time_mode(true);
  res.unbatched_wps = time_mode(false);

  // Bit-identity gate: the throughput numbers only matter if the two
  // modes produce the same floats.
  serve::BatcherConfig bc;
  bc.max_batch = rows;
  bc.batched = true;
  serve::InferenceBatcher bb(clf, bc);
  bc.batched = false;
  serve::InferenceBatcher ub(clf, bc);
  const auto rb = flush_once(bb);
  const auto ru = flush_once(ub);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto& pa = rb[i].result.probabilities;
    const auto& pb = ru[i].result.probabilities;
    if (pa.size() != pb.size() ||
        std::memcmp(pa.data(), pb.data(), pa.size() * sizeof(float)) != 0) {
      res.identical = false;
    }
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";

  std::printf("training classifier + synthesizing workload...\n");
  serve::SharedWorkload workload{serve::WorkloadConfig{}};
  affect::AffectClassifier classifier = train_classifier();
  const auto catalog = android::build_catalog(android::EmulatorSpec{});
  core::AppAffectTable table;
  for (const auto e : {affect::Emotion::kAngry, affect::Emotion::kCalm}) {
    table.learn_from_profile(e, android::profile_for_emotion(e), catalog);
  }
  serve::SessionEnv env;
  env.workload = &workload;
  env.classifier = &classifier;
  env.app_table = &table;
  env.catalog = &catalog;

  const std::vector<std::size_t> counts = {1, 2, 4, 8, 16, 32, 64};
  std::vector<SweepPoint> sweep;
  std::size_t sustained = 0;
  bool prefix_realtime = true;
  for (const std::size_t n : counts) {
    const SweepPoint pt = run_sweep_point(env, n, /*warmup_ticks=*/15,
                                          /*timed_ticks=*/40);
    std::printf(
        "%2zu sessions: p50 %6.2f ms  p99 %6.2f ms  mean %6.2f ms  "
        "%7.1f win/s  %s\n",
        pt.sessions, pt.p50_ms, pt.p99_ms, pt.mean_ms, pt.windows_per_sec,
        pt.realtime ? "realtime" : "OVER BUDGET");
    // Sustained = largest count with every smaller count also real
    // time; a lucky large-N run does not count past a failure.
    prefix_realtime = prefix_realtime && pt.realtime;
    if (prefix_realtime) sustained = n;
    sweep.push_back(pt);
  }

  const BatchResult b8 = run_batch_compare(classifier, 8, 200);
  const BatchResult b16 = run_batch_compare(classifier, 16, 200);
  std::printf("batch  8: %8.0f win/s batched vs %8.0f unbatched (%.2fx)%s\n",
              b8.batched_wps, b8.unbatched_wps,
              b8.unbatched_wps > 0.0 ? b8.batched_wps / b8.unbatched_wps : 0.0,
              b8.identical ? "" : "  BIT MISMATCH");
  std::printf("batch 16: %8.0f win/s batched vs %8.0f unbatched (%.2fx)%s\n",
              b16.batched_wps, b16.unbatched_wps,
              b16.unbatched_wps > 0.0 ? b16.batched_wps / b16.unbatched_wps
                                      : 0.0,
              b16.identical ? "" : "  BIT MISMATCH");

  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value("serve");
  w.key("sustained_sessions").value(static_cast<std::uint64_t>(sustained));
  w.key("sweep").begin_array();
  for (const SweepPoint& pt : sweep) {
    w.begin_object();
    w.key("sessions").value(static_cast<std::uint64_t>(pt.sessions));
    w.key("p50_tick_ms").value(pt.p50_ms);
    w.key("p99_tick_ms").value(pt.p99_ms);
    w.key("mean_tick_ms").value(pt.mean_ms);
    w.key("windows_per_sec").value(pt.windows_per_sec);
    w.key("realtime").value(pt.realtime);
    w.end_object();
  }
  w.end_array();
  w.key("batch").begin_object();
  w.key("rows8_batched_windows_per_sec").value(b8.batched_wps);
  w.key("rows8_unbatched_windows_per_sec").value(b8.unbatched_wps);
  w.key("rows8_speedup")
      .value(b8.unbatched_wps > 0.0 ? b8.batched_wps / b8.unbatched_wps : 0.0);
  w.key("rows16_batched_windows_per_sec").value(b16.batched_wps);
  w.key("rows16_unbatched_windows_per_sec").value(b16.unbatched_wps);
  w.key("rows16_speedup")
      .value(b16.unbatched_wps > 0.0 ? b16.batched_wps / b16.unbatched_wps
                                     : 0.0);
  w.end_object();
  w.end_object();

  std::ofstream out(out_path);
  out << w.str() << "\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("sustained sessions: %zu\nwrote %s\n", sustained,
              out_path.c_str());

  if (!b8.identical || !b16.identical) {
    std::fprintf(stderr, "FAIL: batched results not bit-identical\n");
    return 1;
  }
  if (b8.batched_wps <= b8.unbatched_wps) {
    std::fprintf(stderr,
                 "FAIL: batching at 8 rows is not a throughput win\n");
    return 1;
  }
  return 0;
}
