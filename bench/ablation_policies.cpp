// Ablation: background-kill policy comparison.
//
// The paper compares the affect-driven manager against Android's default
// (mostly-FIFO) policy.  This bench adds LRU and launch-frequency
// baselines to locate how much of the win comes from emotion awareness
// versus simply being smarter than FIFO.
#include <cstdio>
#include <vector>

#include "core/manager_experiment.hpp"

using namespace affectsys;

int main() {
  std::printf("=== ablation: kill policy vs loading cost ===\n");
  std::printf("(identical monkey sequences; mean over 4 seeds)\n\n");
  std::printf("%-12s %16s %14s %12s %12s\n", "baseline", "base mem(GB)",
              "emo mem(GB)", "mem saving", "time saving");

  for (const char* baseline : {"fifo", "lru", "frequency"}) {
    double base_mem = 0.0, prop_mem = 0.0, mem_save = 0.0, time_save = 0.0;
    const std::vector<unsigned> seeds = {99, 1, 2, 3};
    for (unsigned seed : seeds) {
      core::ManagerExperimentConfig cfg;
      cfg.baseline = baseline;
      cfg.monkey.seed = seed;
      const auto res = core::run_manager_experiment(cfg);
      base_mem += static_cast<double>(res.baseline.memory_loaded_bytes) / 1e9;
      prop_mem += static_cast<double>(res.proposed.memory_loaded_bytes) / 1e9;
      mem_save += res.memory_saving();
      time_save += res.time_saving();
    }
    const double n = static_cast<double>(seeds.size());
    std::printf("%-12s %16.2f %14.2f %11.1f%% %11.1f%%\n", baseline,
                base_mem / n, prop_mem / n, 100.0 * mem_save / n,
                100.0 * time_save / n);
  }
  std::printf(
      "\nreading: positive saving vs LRU/frequency shows the emotion signal\n"
      "itself carries information beyond recency/frequency heuristics.\n");

  std::printf("\n=== ablation: App Affect Table source ===\n");
  std::printf("%-22s %12s %12s\n", "table source", "mem saving",
              "time saving");
  for (auto source : {core::AffectTableSource::kAnalytic,
                      core::AffectTableSource::kOnlineWarmup}) {
    double mem_save = 0.0, time_save = 0.0;
    const std::vector<unsigned> seeds = {99, 1, 2, 3};
    for (unsigned seed : seeds) {
      core::ManagerExperimentConfig cfg;
      cfg.monkey.seed = seed;
      cfg.table_source = source;
      const auto res = core::run_manager_experiment(cfg);
      mem_save += res.memory_saving();
      time_save += res.time_saving();
    }
    const double n = static_cast<double>(seeds.size());
    std::printf("%-22s %11.1f%% %11.1f%%\n",
                source == core::AffectTableSource::kAnalytic
                    ? "analytic (oracle)"
                    : "online warm-up",
                100.0 * mem_save / n, 100.0 * time_save / n);
  }
  std::printf(
      "reading: a table learned from finite observation retains most of the\n"
      "oracle table's benefit — the mechanism does not need perfect priors.\n");
  return 0;
}
