// Ablation: emotion-sensing channel comparison on the 40-minute session.
//
// Window-level accuracy of every sensing option the system implements:
// the paper's SC-magnitude threshold heuristic, the learned SCL MLP, the
// PPG heart-rate channel, ECG-derived beats, and SCL+PPG fusion — all
// evaluated on a held-out synthetic recording of the uulmMAC protocol.
#include <cstdio>

#include "affect/ecg.hpp"
#include "affect/ppg.hpp"
#include "affect/scl_nn.hpp"

using namespace affectsys;

int main() {
  const auto timeline = affect::uulmmac_session_timeline();
  const double window_s = 30.0;

  // Held-out test recordings (seeds unseen by any calibration below).
  affect::SclConfig scl_test;
  scl_test.seed = 4242;
  affect::SclGenerator scl_gen(scl_test);
  const auto scl = scl_gen.generate(timeline);

  affect::PpgConfig ppg_test;
  ppg_test.seed = 4242;
  affect::PpgGenerator ppg_gen(ppg_test);
  const auto ppg = ppg_gen.generate(timeline);

  affect::EcgConfig ecg_test;
  ecg_test.seed = 4242;
  affect::EcgGenerator ecg_gen(ecg_test);
  const auto ecg = ecg_gen.generate(timeline);

  // Calibration recordings (separate seeds).
  affect::SclConfig scl_cal;
  scl_cal.seed = 7;
  affect::SclGenerator scl_cal_gen(scl_cal);
  const auto scl_cal_trace = scl_cal_gen.generate(timeline);
  affect::PpgConfig ppg_cal;
  ppg_cal.seed = 7;
  affect::PpgGenerator ppg_cal_gen(ppg_cal);
  const auto ppg_cal_trace = ppg_cal_gen.generate(timeline);

  affect::SclEmotionEstimator threshold;
  threshold.calibrate(scl_cal_trace, scl_cal.sample_rate_hz, timeline);

  affect::MultimodalEstimator fusion;
  fusion.calibrate(scl_cal_trace, scl_cal.sample_rate_hz, ppg_cal_trace,
                   ppg_cal.sample_rate_hz, timeline);

  std::fprintf(stderr, "[fusion] training the SCL MLP...\n");
  affect::SclTrainConfig nn_cfg;
  nn_cfg.training_traces = 6;
  nn_cfg.epochs = 30;
  auto scl_nn = affect::train_scl_classifier(timeline, affect::SclConfig{},
                                             nn_cfg);

  const auto swin = static_cast<std::size_t>(window_s * scl_test.sample_rate_hz);
  const auto pwin = static_cast<std::size_t>(window_s * ppg_test.sample_rate_hz);

  const double acc_threshold = affect::scl_window_accuracy(
      scl, scl_test.sample_rate_hz, timeline, window_s,
      [&](std::span<const double> w) { return threshold.classify(w); });
  const double acc_nn = affect::scl_window_accuracy(
      scl, scl_test.sample_rate_hz, timeline, window_s,
      [&](std::span<const double> w) { return scl_nn.classify(w); });
  const double acc_ppg = affect::scl_window_accuracy(
      ppg, ppg_test.sample_rate_hz, timeline, window_s,
      [&](std::span<const double> w) { return fusion.classify_ppg(w); });

  // Fusion needs aligned windows across the two sensors.
  std::size_t correct = 0, total = 0;
  for (std::size_t w = 0;
       (w + 1) * swin <= scl.size() && (w + 1) * pwin <= ppg.size(); ++w) {
    const double t = static_cast<double>(w) * window_s;
    correct += fusion.classify({scl.data() + w * swin, swin},
                               {ppg.data() + w * pwin, pwin}) ==
               timeline.at(t);
    ++total;
  }
  const double acc_fused =
      static_cast<double>(correct) / static_cast<double>(total);

  // ECG: beats -> HR -> the same ordinal thresholds the PPG channel uses
  // (approximate; demonstrates the drop-in beat-source property).
  const auto ewin = static_cast<std::size_t>(window_s * ecg_test.sample_rate_hz);
  const double acc_ecg = affect::scl_window_accuracy(
      ecg, ecg_test.sample_rate_hz, timeline, window_s,
      [&](std::span<const double> w) {
        const auto beats = affect::detect_r_peaks(w, ecg_test.sample_rate_hz);
        const double hr = affect::hrv_features(beats).mean_hr_bpm;
        // Reuse the fusion object's calibrated HR thresholds via its
        // PPG classifier on a fabricated constant-rate window is not
        // possible; classify by the cardio-profile midpoints instead.
        const double h1 = 0.5 * (affect::cardio_profile(affect::Emotion::kRelaxed).mean_hr_bpm +
                                 affect::cardio_profile(affect::Emotion::kDistracted).mean_hr_bpm);
        const double h2 = 0.5 * (affect::cardio_profile(affect::Emotion::kDistracted).mean_hr_bpm +
                                 affect::cardio_profile(affect::Emotion::kConcentrated).mean_hr_bpm);
        const double h3 = 0.5 * (affect::cardio_profile(affect::Emotion::kConcentrated).mean_hr_bpm +
                                 affect::cardio_profile(affect::Emotion::kTense).mean_hr_bpm);
        if (hr < h1) return affect::Emotion::kRelaxed;
        if (hr < h2) return affect::Emotion::kDistracted;
        if (hr < h3) return affect::Emotion::kConcentrated;
        return affect::Emotion::kTense;
      });
  (void)ewin;

  std::printf("=== ablation: emotion-sensing channels (held-out session) ===\n");
  std::printf("4-way window accuracy over %zu windows (chance = 25%%)\n\n",
              total);
  std::printf("%-34s %10s\n", "channel", "accuracy");
  std::printf("%-34s %9.1f%%\n", "SCL threshold (paper heuristic)",
              100.0 * acc_threshold);
  std::printf("%-34s %9.1f%%\n", "SCL learned MLP", 100.0 * acc_nn);
  std::printf("%-34s %9.1f%%\n", "PPG heart rate", 100.0 * acc_ppg);
  std::printf("%-34s %9.1f%%\n", "ECG heart rate", 100.0 * acc_ecg);
  std::printf("%-34s %9.1f%%\n", "SCL + PPG fusion", 100.0 * acc_fused);
  std::printf(
      "\nreading: every individual channel beats chance; fusion and the\n"
      "learned classifier improve on the paper's single-channel threshold.\n");
  return 0;
}
