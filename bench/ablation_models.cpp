// Ablation: recurrent architecture study (LSTM vs GRU, extension beyond
// the paper's Fig 3 trio).
//
// The paper concludes the LSTM is "more attractive ... considering model
// size and accuracy".  A GRU of the same layout carries ~3/4 of the
// parameters; if it matches the LSTM's accuracy it strengthens the
// paper's size argument further.
#include <cstdio>
#include <random>

#include "affect/dataset.hpp"
#include "nn/quantize.hpp"

using namespace affectsys;

int main() {
  affect::CorpusProfile prof = affect::emovo_profile();
  prof.utterances_per_speaker_emotion = 6;

  const affect::FeatureConfig fc = affect::default_feature_config();
  const affect::FeatureExtractor fx(fc);
  std::fprintf(stderr, "[ablation_models] synthesizing %s...\n",
               prof.name.c_str());
  const auto corpus = affect::build_corpus(prof, fx, 7);
  nn::Dataset train_set, test_set;
  nn::split_dataset(corpus.samples, 0.25, 1, train_set, test_set);

  nn::TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 8;
  tc.learning_rate = 1.5e-3f;

  std::printf("=== ablation: LSTM vs GRU on %s (%zu train / %zu test) ===\n",
              prof.name.c_str(), train_set.size(), test_set.size());
  std::printf("%-6s %10s %10s %10s %10s\n", "model", "params", "KB(fp32)",
              "accuracy", "acc@8bit");

  const nn::ClassifierSpec spec{fx.feature_dim(), fx.timesteps(),
                                corpus.num_classes()};
  struct Candidate {
    const char* name;
    nn::Sequential (*build)(const nn::ClassifierSpec&, std::mt19937&);
  };
  const Candidate candidates[] = {{"LSTM", nn::build_lstm},
                                  {"GRU", nn::build_gru}};
  for (const Candidate& c : candidates) {
    std::mt19937 rng(tc.seed);
    nn::Sequential model = c.build(spec, rng);
    nn::train(model, train_set, tc);
    const auto ev = nn::evaluate(model, test_set, corpus.num_classes());
    const std::size_t kb = model.weight_bytes(4) / 1024;
    const std::size_t params = model.param_count();
    nn::quantize_model_inplace(model, nn::QuantGranularity::kPerTensor);
    const auto ev8 = nn::evaluate(model, test_set, corpus.num_classes());
    std::printf("%-6s %10zu %10zu %9.1f%% %9.1f%%\n", c.name, params, kb,
                100.0 * ev.accuracy, 100.0 * ev8.accuracy);
  }

  std::printf("\n=== quantization granularity (per-tensor vs per-channel) ===\n");
  std::printf("%-12s %16s %16s\n", "model", "per-tensor err", "per-channel err");
  for (auto kind : {nn::ModelKind::kMlp, nn::ModelKind::kCnn,
                    nn::ModelKind::kLstm}) {
    std::mt19937 rng(3);
    nn::Sequential model = nn::build_model(kind, spec, rng);
    float worst_tensor = 0.0f, worst_channel = 0.0f;
    for (nn::Param* p : model.params()) {
      worst_tensor = std::max(
          worst_tensor, nn::max_quantization_error(
                            p->value, nn::QuantGranularity::kPerTensor));
      worst_channel = std::max(
          worst_channel, nn::max_quantization_error(
                             p->value, nn::QuantGranularity::kPerChannel));
    }
    std::printf("%-12s %16.5f %16.5f\n", nn::model_kind_name(kind),
                worst_tensor, worst_channel);
  }
  std::printf("\nreading: per-channel scales never lose; the paper's <3%%\n"
              "8-bit loss claim is robust to the scale granularity choice.\n");
  return 0;
}
