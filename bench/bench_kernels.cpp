// Single-core kernel sweep: times each optimized kernel against the
// pre-optimization reference that this PR kept callable — the
// zero-allocation feature pipeline vs the allocating complex-FFT path,
// the strided-pointer deblocker vs the accessor-based one, the
// register-blocked GEMM micro-kernel vs the k-tiled axpy, and the
// real-input FFT vs the full complex transform.  Dumps
// BENCH_kernels.json; tools/run_verify.sh `kernels` mode regresses
// windows_per_sec against the committed copy.
//
// Everything runs with the pool disabled (set_global_threads(0)): these
// are the kernels the single-core edge target actually executes, and
// the parallel sweep already lives in BENCH_parallel.json.
//
// Usage: bench_kernels [output.json]   (default: BENCH_kernels.json)
#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "affect/dataset.hpp"
#include "affect/features.hpp"
#include "affect/speech_synth.hpp"
#include "core/thread_pool.hpp"
#include "h264/deblock.hpp"
#include "nn/matrix.hpp"
#include "obs/json.hpp"
#include "signal/fft.hpp"

using namespace affectsys;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Runs `fn` (one full rep loop) `rounds` times and returns the fastest
/// elapsed wall time.  Min-of-N absorbs scheduler noise on the shared
/// single-core host far better than one long run, and both sides of
/// every opt/ref pair get the same treatment.
template <typename F>
double min_seconds(F&& fn, int rounds = 3) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < rounds; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

struct Pair {
  double opt = 0.0;
  double ref = 0.0;
  double speedup() const { return ref > 0.0 ? opt / ref : 0.0; }
};

// --- Feature pipeline: windows/sec ----------------------------------------

Pair bench_features(bool& ok) {
  const affect::FeatureConfig fc = affect::default_feature_config();
  const affect::FeatureExtractor fx(fc);
  affect::SpeechSynthesizer synth(7);
  std::vector<std::vector<double>> windows;
  for (int u = 0; u < 4; ++u) {
    windows.push_back(synth
                          .synthesize(u % 2 ? affect::Emotion::kCalm
                                            : affect::Emotion::kAngry,
                                      40 + u, 1.0, 16000.0, 0.1)
                          .samples);
  }

  // The optimized path must reproduce the allocating path bit for bit
  // (same kernels underneath) before its timing means anything.
  affect::FeatureWorkspace check_ws;
  for (const auto& w : windows) {
    const nn::Matrix a = fx.extract(w);
    const nn::Matrix& b = fx.extract_into(w, check_ws);
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a.flat()[i] != b.flat()[i]) {
        std::fprintf(stderr, "feature mismatch at %zu\n", i);
        ok = false;
        return {};
      }
    }
  }

  constexpr int kReps = 24;
  Pair p;
  affect::FeatureWorkspace ws;
  float sink = 0.0f;
  p.opt = kReps / min_seconds([&] {
    for (int i = 0; i < kReps; ++i) {
      const nn::Matrix& m = fx.extract_into(windows[i % windows.size()], ws);
      sink += m(0, 0);
    }
  });
  p.ref = kReps / min_seconds([&] {
    for (int i = 0; i < kReps; ++i) {
      const nn::Matrix m = fx.extract_ref(windows[i % windows.size()]);
      sink += m(0, 0);
    }
  });
  if (sink == 123.25f) std::printf("(unlikely)\n");
  return p;
}

// --- Deblocking: ns/frame -------------------------------------------------

h264::YuvFrame make_deblock_frame(std::vector<h264::MbInfo>& mb_info) {
  h264::YuvFrame frame(256, 256);
  auto fill = [](h264::Plane& p) {
    for (int y = 0; y < p.height; ++y) {
      for (int x = 0; x < p.width; ++x) {
        p.at(x, y) =
            static_cast<std::uint8_t>((x * 7 + y * 13 + (x / 16) * 40) & 0xFF);
      }
    }
  };
  fill(frame.y);
  fill(frame.cb);
  fill(frame.cr);
  mb_info.assign(static_cast<std::size_t>(frame.mb_count()), h264::MbInfo{});
  for (auto& mb : mb_info) mb.intra = true;
  return frame;
}

Pair bench_deblock(bool& ok) {
  std::vector<h264::MbInfo> mb_info;
  const h264::YuvFrame base = make_deblock_frame(mb_info);
  constexpr int kQp = 32;

  {
    h264::YuvFrame a = base, b = base;
    const h264::DeblockStats sa = h264::deblock_frame(a, mb_info, kQp);
    const h264::DeblockStats sb = h264::deblock_frame_reference(b, mb_info, kQp);
    if (a.y.data != b.y.data || a.cb.data != b.cb.data ||
        a.cr.data != b.cr.data ||
        sa.pixels_modified != sb.pixels_modified) {
      std::fprintf(stderr, "deblock mismatch vs reference\n");
      ok = false;
      return {};
    }
  }

  constexpr int kReps = 8;
  Pair p;  // ns per frame; speedup computed as ref/opt below
  p.opt = min_seconds([&] {
    for (int i = 0; i < kReps; ++i) {
      h264::YuvFrame frame = base;  // fresh texture: comparable work per rep
      h264::deblock_frame(frame, mb_info, kQp);
    }
  }) * 1e9 / kReps;
  p.ref = min_seconds([&] {
    for (int i = 0; i < kReps; ++i) {
      h264::YuvFrame frame = base;
      h264::deblock_frame_reference(frame, mb_info, kQp);
    }
  }) * 1e9 / kReps;
  return p;
}

// --- GEMM: GFLOPS ---------------------------------------------------------

Pair bench_gemm() {
  // 384^3: b is ~576 KB — past L1, so the micro-kernel's 4x lower b
  // re-read traffic (one pass per 4-row block vs one per row) shows up
  // the way it does on classifier-scale products.
  constexpr std::size_t kN = 384;
  nn::Matrix a(kN, kN), b(kN, kN);
  for (std::size_t r = 0; r < kN; ++r) {
    for (std::size_t c = 0; c < kN; ++c) {
      a(r, c) = static_cast<float>((r * 31 + c * 17) % 97) / 97.0f - 0.5f;
      b(r, c) = static_cast<float>((r * 13 + c * 29) % 89) / 89.0f - 0.5f;
    }
  }
  constexpr int kReps = 4;
  const double flops = 2.0 * static_cast<double>(kN) * kN * kN * kReps;
  Pair p;
  float sink = 0.0f;
  p.opt = flops / min_seconds([&] {
    for (int i = 0; i < kReps; ++i) {
      const nn::Matrix c = a.matmul(b);
      sink += c(0, 0);
    }
  }) / 1e9;
  p.ref = flops / min_seconds([&] {
    for (int i = 0; i < kReps; ++i) {
      const nn::Matrix c = a.matmul_reference(b);
      sink += c(0, 0);
    }
  }) / 1e9;
  if (sink == 123.25f) std::printf("(unlikely)\n");
  return p;
}

// --- int8 GEMM: us/call vs the fp32 micro-kernel on the same shape --------

Pair bench_int8_gemm(bool& ok) {
  // The int8-rung serving shape: a window batch (16 flattened feature
  // windows) against the classifier's first dense layer.  The gate
  // below wants the quantized product >= 2x the fp32 one here — that is
  // the whole reason the int8 rung exists.
  constexpr std::size_t kM = 16, kK = 1088, kN = 416;
  std::vector<std::int8_t> a(kM * kK), b(kK * kN);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::int8_t>(static_cast<int>(i * 37 % 255) - 127);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<std::int8_t>(static_cast<int>(i * 23 % 255) - 127);
  }
  std::vector<std::int32_t> c_opt(kM * kN), c_ref(kM * kN);

  // Integer accumulation is exact in any order, so blocked must equal
  // the naive reference to the last bit before the timing counts.
  nn::int8_gemm(a.data(), b.data(), c_opt.data(), kM, kK, kN);
  nn::int8_gemm_reference(a.data(), b.data(), c_ref.data(), kM, kK, kN);
  if (std::memcmp(c_opt.data(), c_ref.data(),
                  c_opt.size() * sizeof(std::int32_t)) != 0) {
    std::fprintf(stderr, "int8_gemm mismatch vs reference\n");
    ok = false;
    return {};
  }

  nn::Matrix fa(kM, kK), fb(kK, kN), fc(kM, kN);
  for (std::size_t i = 0; i < fa.size(); ++i) {
    fa.flat()[i] = static_cast<float>(a[i]) / 127.0f;
  }
  for (std::size_t i = 0; i < fb.size(); ++i) {
    fb.flat()[i] = static_cast<float>(b[i]) / 127.0f;
  }

  constexpr int kReps = 40;
  Pair p;  // us per call; speedup computed as ref/opt (ref = fp32)
  p.opt = min_seconds([&] {
    for (int i = 0; i < kReps; ++i) {
      nn::int8_gemm(a.data(), b.data(), c_opt.data(), kM, kK, kN);
    }
  }) * 1e6 / kReps;
  p.ref = min_seconds([&] {
    for (int i = 0; i < kReps; ++i) {
      fa.matmul_into(fb, fc);
    }
  }) * 1e6 / kReps;
  return p;
}

// --- Hamming popcount: ns per 8-class prototype scan ----------------------

int naive_hamming(const std::uint64_t* x, const std::uint64_t* y,
                  std::size_t words) {
  int d = 0;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t v = x[w] ^ y[w];
    while (v != 0) {
      d += static_cast<int>(v & 1u);
      v >>= 1;
    }
  }
  return d;
}

Pair bench_hamming(bool& ok) {
  // HDC-rung geometry: one encoded query scanned against every class
  // prototype (8192-bit hypervectors, kNumEmotions classes).  This scan
  // *is* HDC inference — encode aside, classify_into spends its time
  // exactly here.
  constexpr std::size_t kWords = 8192 / 64;
  constexpr std::size_t kClasses = 8;
  std::vector<std::uint64_t> protos(kClasses * kWords), query(kWords);
  std::uint64_t s = 0x243F6A8885A308D3ull;
  auto next = [&s] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  for (auto& w : protos) w = next();
  for (auto& w : query) w = next();

  std::array<int, kClasses> d_opt{}, d_ref{};
  auto scan_opt = [&](std::array<int, kClasses>& d) {
    for (std::size_t cls = 0; cls < kClasses; ++cls) {
      const std::uint64_t* p = protos.data() + cls * kWords;
      int ham = 0;
      for (std::size_t w = 0; w < kWords; ++w) {
        ham += std::popcount(query[w] ^ p[w]);
      }
      d[cls] = ham;
    }
  };
  scan_opt(d_opt);
  for (std::size_t cls = 0; cls < kClasses; ++cls) {
    d_ref[cls] = naive_hamming(query.data(), protos.data() + cls * kWords,
                               kWords);
  }
  if (d_opt != d_ref) {
    std::fprintf(stderr, "hamming mismatch vs naive reference\n");
    ok = false;
    return {};
  }

  constexpr int kOptReps = 40000;
  constexpr int kRefReps = 2000;  // bit-serial loop: fewer reps, same rounds
  Pair p;  // ns per 8-class scan; speedup computed as ref/opt below
  int sink = 0;
  p.opt = min_seconds([&] {
    for (int i = 0; i < kOptReps; ++i) {
      std::array<int, kClasses> d{};
      scan_opt(d);
      sink += d[static_cast<std::size_t>(i) % kClasses];
    }
  }) * 1e9 / kOptReps;
  p.ref = min_seconds([&] {
    for (int i = 0; i < kRefReps; ++i) {
      std::array<int, kClasses> d{};
      for (std::size_t cls = 0; cls < kClasses; ++cls) {
        d[cls] = naive_hamming(query.data(), protos.data() + cls * kWords,
                               kWords);
      }
      sink += d[static_cast<std::size_t>(i) % kClasses];
    }
  }) * 1e9 / kRefReps;
  if (sink == -1) std::printf("(unlikely)\n");
  return p;
}

// --- Real-input FFT: microseconds per power spectrum ----------------------

Pair bench_rfft() {
  constexpr std::size_t kFft = 512;
  constexpr std::size_t kFrame = 400;
  std::vector<double> x(kFrame);
  for (std::size_t i = 0; i < kFrame; ++i) {
    x[i] = std::sin(0.031 * static_cast<double>(i)) +
           0.25 * std::sin(0.173 * static_cast<double>(i) + 0.5);
  }
  std::vector<double> out(kFft / 2 + 1);
  std::vector<std::complex<double>> work(kFft + 1);
  constexpr int kReps = 10000;
  Pair p;  // us per call; speedup computed as ref/opt below
  double sink = 0.0;
  p.opt = min_seconds([&] {
    for (int i = 0; i < kReps; ++i) {
      signal::power_spectrum(x, kFft, out, work);
      sink += out[1];
    }
  }) * 1e6 / kReps;
  p.ref = min_seconds([&] {
    for (int i = 0; i < kReps; ++i) {
      const std::vector<double> ref = signal::power_spectrum_ref(x, kFft);
      sink += ref[1];
    }
  }) * 1e6 / kReps;
  if (sink == 123.25) std::printf("(unlikely)\n");
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_kernels.json";
  core::set_global_threads(0);  // single-core: time the kernels themselves
  bool ok = true;

  std::printf("[1/6] feature pipeline...\n");
  const Pair feat = bench_features(ok);
  std::printf("[2/6] deblocking...\n");
  const Pair dbk = bench_deblock(ok);
  std::printf("[3/6] gemm...\n");
  const Pair gemm = bench_gemm();
  std::printf("[4/6] int8 gemm...\n");
  const Pair i8 = bench_int8_gemm(ok);
  std::printf("[5/6] hamming...\n");
  const Pair ham = bench_hamming(ok);
  std::printf("[6/6] rfft...\n");
  const Pair rfft = bench_rfft();
  if (!ok) return 1;

  // The inference ladder's middle rung only earns its quantization
  // error if the quantized product is decisively faster than fp32 on
  // the serving shape.
  const double i8_speedup = i8.opt > 0.0 ? i8.ref / i8.opt : 0.0;
  if (i8_speedup < 2.0) {
    std::fprintf(stderr, "int8 gemm gate: %.2fx fp32 < required 2.0x\n",
                 i8_speedup);
    ok = false;
  }

  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value("kernels");
  w.key("feature").begin_object();
  w.key("windows_per_sec").value(feat.opt);
  w.key("ref_windows_per_sec").value(feat.ref);
  w.key("speedup").value(feat.speedup());
  w.end_object();
  w.key("deblock").begin_object();
  w.key("ns_per_frame").value(dbk.opt);
  w.key("ref_ns_per_frame").value(dbk.ref);
  w.key("speedup").value(dbk.opt > 0.0 ? dbk.ref / dbk.opt : 0.0);
  w.end_object();
  w.key("gemm").begin_object();
  w.key("gflops").value(gemm.opt);
  w.key("ref_gflops").value(gemm.ref);
  w.key("speedup").value(gemm.speedup());
  w.end_object();
  w.key("int8_gemm").begin_object();
  w.key("us_per_call").value(i8.opt);
  w.key("fp32_us_per_call").value(i8.ref);
  w.key("speedup_vs_fp32").value(i8_speedup);
  w.end_object();
  w.key("hamming").begin_object();
  w.key("ns_per_scan").value(ham.opt);
  w.key("ref_ns_per_scan").value(ham.ref);
  w.key("speedup").value(ham.opt > 0.0 ? ham.ref / ham.opt : 0.0);
  w.end_object();
  w.key("rfft").begin_object();
  w.key("us_per_call").value(rfft.opt);
  w.key("ref_us_per_call").value(rfft.ref);
  w.key("speedup").value(rfft.opt > 0.0 ? rfft.ref / rfft.opt : 0.0);
  w.end_object();
  w.end_object();

  std::ofstream out(out_path);
  out << w.str() << "\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }

  std::printf("feature: %.1f win/s (ref %.1f, %.2fx)\n", feat.opt, feat.ref,
              feat.speedup());
  std::printf("deblock: %.0f ns/f (ref %.0f, %.2fx)\n", dbk.opt, dbk.ref,
              dbk.opt > 0.0 ? dbk.ref / dbk.opt : 0.0);
  std::printf("gemm:    %.2f GFLOP/s (ref %.2f, %.2fx)\n", gemm.opt, gemm.ref,
              gemm.speedup());
  std::printf("int8:    %.2f us/call (fp32 %.2f, %.2fx)\n", i8.opt, i8.ref,
              i8_speedup);
  std::printf("hamming: %.0f ns/scan (ref %.0f, %.2fx)\n", ham.opt, ham.ref,
              ham.opt > 0.0 ? ham.ref / ham.opt : 0.0);
  std::printf("rfft:    %.2f us/call (ref %.2f, %.2fx)\n", rfft.opt, rfft.ref,
              rfft.opt > 0.0 ? rfft.ref / rfft.opt : 0.0);
  std::printf("wrote %s\n", out_path.c_str());
  return ok ? 0 : 1;
}
