// Single-core kernel sweep: times each optimized kernel against the
// pre-optimization reference that this PR kept callable — the
// zero-allocation feature pipeline vs the allocating complex-FFT path,
// the strided-pointer deblocker vs the accessor-based one, the
// register-blocked GEMM micro-kernel vs the k-tiled axpy, and the
// real-input FFT vs the full complex transform.  Dumps
// BENCH_kernels.json; tools/run_verify.sh `kernels` mode regresses
// windows_per_sec against the committed copy.
//
// Everything runs with the pool disabled (set_global_threads(0)): these
// are the kernels the single-core edge target actually executes, and
// the parallel sweep already lives in BENCH_parallel.json.
//
// Usage: bench_kernels [output.json]   (default: BENCH_kernels.json)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "affect/dataset.hpp"
#include "affect/features.hpp"
#include "affect/speech_synth.hpp"
#include "core/thread_pool.hpp"
#include "h264/deblock.hpp"
#include "nn/matrix.hpp"
#include "obs/json.hpp"
#include "signal/fft.hpp"

using namespace affectsys;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Runs `fn` (one full rep loop) `rounds` times and returns the fastest
/// elapsed wall time.  Min-of-N absorbs scheduler noise on the shared
/// single-core host far better than one long run, and both sides of
/// every opt/ref pair get the same treatment.
template <typename F>
double min_seconds(F&& fn, int rounds = 3) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < rounds; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

struct Pair {
  double opt = 0.0;
  double ref = 0.0;
  double speedup() const { return ref > 0.0 ? opt / ref : 0.0; }
};

// --- Feature pipeline: windows/sec ----------------------------------------

Pair bench_features(bool& ok) {
  const affect::FeatureConfig fc = affect::default_feature_config();
  const affect::FeatureExtractor fx(fc);
  affect::SpeechSynthesizer synth(7);
  std::vector<std::vector<double>> windows;
  for (int u = 0; u < 4; ++u) {
    windows.push_back(synth
                          .synthesize(u % 2 ? affect::Emotion::kCalm
                                            : affect::Emotion::kAngry,
                                      40 + u, 1.0, 16000.0, 0.1)
                          .samples);
  }

  // The optimized path must reproduce the allocating path bit for bit
  // (same kernels underneath) before its timing means anything.
  affect::FeatureWorkspace check_ws;
  for (const auto& w : windows) {
    const nn::Matrix a = fx.extract(w);
    const nn::Matrix& b = fx.extract_into(w, check_ws);
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a.flat()[i] != b.flat()[i]) {
        std::fprintf(stderr, "feature mismatch at %zu\n", i);
        ok = false;
        return {};
      }
    }
  }

  constexpr int kReps = 24;
  Pair p;
  affect::FeatureWorkspace ws;
  float sink = 0.0f;
  p.opt = kReps / min_seconds([&] {
    for (int i = 0; i < kReps; ++i) {
      const nn::Matrix& m = fx.extract_into(windows[i % windows.size()], ws);
      sink += m(0, 0);
    }
  });
  p.ref = kReps / min_seconds([&] {
    for (int i = 0; i < kReps; ++i) {
      const nn::Matrix m = fx.extract_ref(windows[i % windows.size()]);
      sink += m(0, 0);
    }
  });
  if (sink == 123.25f) std::printf("(unlikely)\n");
  return p;
}

// --- Deblocking: ns/frame -------------------------------------------------

h264::YuvFrame make_deblock_frame(std::vector<h264::MbInfo>& mb_info) {
  h264::YuvFrame frame(256, 256);
  auto fill = [](h264::Plane& p) {
    for (int y = 0; y < p.height; ++y) {
      for (int x = 0; x < p.width; ++x) {
        p.at(x, y) =
            static_cast<std::uint8_t>((x * 7 + y * 13 + (x / 16) * 40) & 0xFF);
      }
    }
  };
  fill(frame.y);
  fill(frame.cb);
  fill(frame.cr);
  mb_info.assign(static_cast<std::size_t>(frame.mb_count()), h264::MbInfo{});
  for (auto& mb : mb_info) mb.intra = true;
  return frame;
}

Pair bench_deblock(bool& ok) {
  std::vector<h264::MbInfo> mb_info;
  const h264::YuvFrame base = make_deblock_frame(mb_info);
  constexpr int kQp = 32;

  {
    h264::YuvFrame a = base, b = base;
    const h264::DeblockStats sa = h264::deblock_frame(a, mb_info, kQp);
    const h264::DeblockStats sb = h264::deblock_frame_reference(b, mb_info, kQp);
    if (a.y.data != b.y.data || a.cb.data != b.cb.data ||
        a.cr.data != b.cr.data ||
        sa.pixels_modified != sb.pixels_modified) {
      std::fprintf(stderr, "deblock mismatch vs reference\n");
      ok = false;
      return {};
    }
  }

  constexpr int kReps = 8;
  Pair p;  // ns per frame; speedup computed as ref/opt below
  p.opt = min_seconds([&] {
    for (int i = 0; i < kReps; ++i) {
      h264::YuvFrame frame = base;  // fresh texture: comparable work per rep
      h264::deblock_frame(frame, mb_info, kQp);
    }
  }) * 1e9 / kReps;
  p.ref = min_seconds([&] {
    for (int i = 0; i < kReps; ++i) {
      h264::YuvFrame frame = base;
      h264::deblock_frame_reference(frame, mb_info, kQp);
    }
  }) * 1e9 / kReps;
  return p;
}

// --- GEMM: GFLOPS ---------------------------------------------------------

Pair bench_gemm() {
  // 384^3: b is ~576 KB — past L1, so the micro-kernel's 4x lower b
  // re-read traffic (one pass per 4-row block vs one per row) shows up
  // the way it does on classifier-scale products.
  constexpr std::size_t kN = 384;
  nn::Matrix a(kN, kN), b(kN, kN);
  for (std::size_t r = 0; r < kN; ++r) {
    for (std::size_t c = 0; c < kN; ++c) {
      a(r, c) = static_cast<float>((r * 31 + c * 17) % 97) / 97.0f - 0.5f;
      b(r, c) = static_cast<float>((r * 13 + c * 29) % 89) / 89.0f - 0.5f;
    }
  }
  constexpr int kReps = 4;
  const double flops = 2.0 * static_cast<double>(kN) * kN * kN * kReps;
  Pair p;
  float sink = 0.0f;
  p.opt = flops / min_seconds([&] {
    for (int i = 0; i < kReps; ++i) {
      const nn::Matrix c = a.matmul(b);
      sink += c(0, 0);
    }
  }) / 1e9;
  p.ref = flops / min_seconds([&] {
    for (int i = 0; i < kReps; ++i) {
      const nn::Matrix c = a.matmul_reference(b);
      sink += c(0, 0);
    }
  }) / 1e9;
  if (sink == 123.25f) std::printf("(unlikely)\n");
  return p;
}

// --- Real-input FFT: microseconds per power spectrum ----------------------

Pair bench_rfft() {
  constexpr std::size_t kFft = 512;
  constexpr std::size_t kFrame = 400;
  std::vector<double> x(kFrame);
  for (std::size_t i = 0; i < kFrame; ++i) {
    x[i] = std::sin(0.031 * static_cast<double>(i)) +
           0.25 * std::sin(0.173 * static_cast<double>(i) + 0.5);
  }
  std::vector<double> out(kFft / 2 + 1);
  std::vector<std::complex<double>> work(kFft + 1);
  constexpr int kReps = 10000;
  Pair p;  // us per call; speedup computed as ref/opt below
  double sink = 0.0;
  p.opt = min_seconds([&] {
    for (int i = 0; i < kReps; ++i) {
      signal::power_spectrum(x, kFft, out, work);
      sink += out[1];
    }
  }) * 1e6 / kReps;
  p.ref = min_seconds([&] {
    for (int i = 0; i < kReps; ++i) {
      const std::vector<double> ref = signal::power_spectrum_ref(x, kFft);
      sink += ref[1];
    }
  }) * 1e6 / kReps;
  if (sink == 123.25) std::printf("(unlikely)\n");
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_kernels.json";
  core::set_global_threads(0);  // single-core: time the kernels themselves
  bool ok = true;

  std::printf("[1/4] feature pipeline...\n");
  const Pair feat = bench_features(ok);
  std::printf("[2/4] deblocking...\n");
  const Pair dbk = bench_deblock(ok);
  std::printf("[3/4] gemm...\n");
  const Pair gemm = bench_gemm();
  std::printf("[4/4] rfft...\n");
  const Pair rfft = bench_rfft();
  if (!ok) return 1;

  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value("kernels");
  w.key("feature").begin_object();
  w.key("windows_per_sec").value(feat.opt);
  w.key("ref_windows_per_sec").value(feat.ref);
  w.key("speedup").value(feat.speedup());
  w.end_object();
  w.key("deblock").begin_object();
  w.key("ns_per_frame").value(dbk.opt);
  w.key("ref_ns_per_frame").value(dbk.ref);
  w.key("speedup").value(dbk.opt > 0.0 ? dbk.ref / dbk.opt : 0.0);
  w.end_object();
  w.key("gemm").begin_object();
  w.key("gflops").value(gemm.opt);
  w.key("ref_gflops").value(gemm.ref);
  w.key("speedup").value(gemm.speedup());
  w.end_object();
  w.key("rfft").begin_object();
  w.key("us_per_call").value(rfft.opt);
  w.key("ref_us_per_call").value(rfft.ref);
  w.key("speedup").value(rfft.opt > 0.0 ? rfft.ref / rfft.opt : 0.0);
  w.end_object();
  w.end_object();

  std::ofstream out(out_path);
  out << w.str() << "\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }

  std::printf("feature: %.1f win/s (ref %.1f, %.2fx)\n", feat.opt, feat.ref,
              feat.speedup());
  std::printf("deblock: %.0f ns/f (ref %.0f, %.2fx)\n", dbk.opt, dbk.ref,
              dbk.opt > 0.0 ? dbk.ref / dbk.opt : 0.0);
  std::printf("gemm:    %.2f GFLOP/s (ref %.2f, %.2fx)\n", gemm.opt, gemm.ref,
              gemm.speedup());
  std::printf("rfft:    %.2f us/call (ref %.2f, %.2fx)\n", rfft.opt, rfft.ref,
              rfft.opt > 0.0 ? rfft.ref / rfft.opt : 0.0);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
