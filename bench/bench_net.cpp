// Media-transport benchmark.  Four questions:
//
//   1. How fast do the packetizer and depacketizer move bytes?  The
//      reference clip is framed and reassembled repeatedly; throughput
//      is payload MB/s, min-of-N.
//   2. How much of the seeded loss does XOR-parity FEC buy back?  A
//      loss-rate sweep (1/2/5/10 %) streams the clip through a faulted
//      TransportLink and reports recovered/dropped per rate.
//   3. What does the transport pipeline cost a serving tick when the
//      channel is perfect?  A transport-fed session is timed against
//      the in-process session on the same script — after a hard
//      decode-digest identity check — and gated at <= 5% overhead.
//   4. Does everything replay?  Each net scenario runs twice and the
//      bench fails hard on any divergence.
//
// Dumps BENCH_net.json; tools/run_verify.sh `net` mode runs this in the
// Release tree and regresses serve_tick_overhead_pct against the
// committed copy.
//
// Usage: bench_net [output.json]   (default: BENCH_net.json)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "fault/scenario.hpp"
#include "h264/nal.hpp"
#include "net/packetizer.hpp"
#include "net/transport.hpp"
#include "obs/json.hpp"
#include "serve/session.hpp"

using namespace affectsys;

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kReps = 15;       // timing repetitions (min taken)
constexpr int kFrameIters = 40; // clip framings per repetition
constexpr std::uint64_t kServeTicks = 40;

/// The clip split into access units (params units ride with their
/// slice), matching how the serve path feeds the packetizer.
std::vector<std::vector<h264::NalUnit>> clip_access_units() {
  const std::vector<h264::NalUnit> units =
      h264::unpack_annexb(fault::scenario_reference_stream());
  std::vector<std::vector<h264::NalUnit>> aus;
  std::vector<h264::NalUnit> au;
  for (const h264::NalUnit& u : units) {
    const bool slice = h264::is_slice(u);
    au.push_back(u);
    if (slice) {
      aus.push_back(std::move(au));
      au.clear();
    }
  }
  if (!au.empty()) aus.push_back(std::move(au));
  return aus;
}

/// Streams the clip twice through a faulted link (as in test_net's
/// end-to-end sweep) and accumulates channel/recovery counters.
void run_loss_pass(std::uint64_t seed, double rate,
                   std::uint64_t* dropped, std::uint64_t* recovered,
                   std::uint64_t* loss_events) {
  fault::FaultPlan plan(fault::FaultConfig{
      seed, rate, fault::kind_bit(fault::FaultKind::kPacketLoss)});
  net::TransportLink link(fault::net_scenario_transport(true), &plan,
                          nullptr);
  const auto aus = clip_access_units();
  std::uint64_t tick = 0;
  std::uint32_t ts = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& au : aus) {
      link.send(au, ts++, 0, tick);
      link.receive(tick);
      ++tick;
    }
  }
  for (int extra = 0; extra < 64 && !link.idle(); ++extra) {
    link.receive(tick++);
  }
  link.receive(tick + 8);
  *dropped += link.channel_stats().dropped_data;
  *recovered += link.stats().packets_recovered;
  *loss_events += link.stats().loss_events;
}

/// Seconds for kServeTicks session ticks under `cfg`, one repetition.
double serve_rep(const serve::SessionConfig& cfg,
                 const serve::SessionEnv& env, std::uint64_t* digest) {
  serve::Session s(1, cfg, env, /*inline_inference=*/true);
  const auto t0 = Clock::now();
  for (std::uint64_t t = 0; t < kServeTicks; ++t) {
    s.pump_audio(t);
    s.tick_media(t, /*degrade_level=*/0);
  }
  const std::chrono::duration<double> dt = Clock::now() - t0;
  *digest = s.report().decode_digest;
  return dt.count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_net.json";

  const auto aus = clip_access_units();
  double payload_bytes = 0;
  std::size_t total_nals = 0;
  for (const auto& au : aus) {
    total_nals += au.size();
    for (const auto& u : au) payload_bytes += static_cast<double>(u.payload.size());
  }
  const net::PacketizerConfig pcfg = fault::net_scenario_transport(true).packetizer;

  // ---- 1. Packetize / depacketize throughput ------------------------
  // Pre-frame the clip once for the depacketizer side so reassembly is
  // timed alone; a round-trip identity check guards the timed code.
  std::vector<net::Released> framed;
  {
    net::Packetizer pk(pcfg);
    for (std::size_t i = 0; i < aus.size(); ++i) {
      for (auto& p : pk.packetize(aus[i], static_cast<std::uint32_t>(i), 0)) {
        framed.push_back(net::Released{false, p.seq, std::move(p)});
      }
    }
    net::Depacketizer dp;
    const auto events = dp.push(framed);
    if (events.size() != total_nals || dp.stats().loss_events != 0) {
      std::fprintf(stderr, "FAIL: clean round trip lost NALs (%zu of %zu)\n",
                   events.size(), total_nals);
      return 1;
    }
    for (std::size_t i = 0, k = 0; i < aus.size(); ++i) {
      for (const auto& u : aus[i]) {
        if (events[k].loss || events[k].nal.nal.payload != u.payload) {
          std::fprintf(stderr, "FAIL: round-trip payload mismatch\n");
          return 1;
        }
        ++k;
      }
    }
  }
  double pack_s = std::numeric_limits<double>::infinity();
  double depack_s = std::numeric_limits<double>::infinity();
  std::uint64_t packets = 0;
  for (int rep = -1; rep < kReps; ++rep) {  // rep -1 is untimed warmup
    auto t0 = Clock::now();
    packets = 0;
    for (int it = 0; it < kFrameIters; ++it) {
      net::Packetizer pk(pcfg);
      for (std::size_t i = 0; i < aus.size(); ++i) {
        packets += pk.packetize(aus[i], static_cast<std::uint32_t>(i), 0).size();
      }
    }
    std::chrono::duration<double> dt = Clock::now() - t0;
    if (rep >= 0) pack_s = std::min(pack_s, dt.count());

    t0 = Clock::now();
    std::uint64_t nals_out = 0;
    for (int it = 0; it < kFrameIters; ++it) {
      net::Depacketizer dp;
      nals_out += dp.push(framed).size();
    }
    dt = Clock::now() - t0;
    if (rep >= 0) depack_s = std::min(depack_s, dt.count());
    if (nals_out != static_cast<std::uint64_t>(total_nals) * kFrameIters) {
      std::fprintf(stderr, "FAIL: depacketizer dropped NALs while timed\n");
      return 1;
    }
  }
  const double mb = payload_bytes * kFrameIters / (1024.0 * 1024.0);
  const double pack_mbs = mb / pack_s;
  const double depack_mbs = mb / depack_s;
  std::printf("framing:      packetize %6.2f MB/s  depacketize %6.2f MB/s  "
              "(%llu packets/clip)\n",
              pack_mbs, depack_mbs,
              static_cast<unsigned long long>(packets / kFrameIters));

  // ---- 2. FEC recovery vs loss rate ---------------------------------
  struct RecoveryRow {
    double loss_pct, rate;
    std::uint64_t dropped, recovered, loss_events;
  };
  std::vector<RecoveryRow> recovery;
  for (const double pct : {1.0, 2.0, 5.0, 10.0}) {
    RecoveryRow row{pct, 0.0, 0, 0, 0};
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      run_loss_pass(seed, pct / 100.0, &row.dropped, &row.recovered,
                    &row.loss_events);
    }
    row.rate = row.dropped
                   ? static_cast<double>(row.recovered) /
                         static_cast<double>(row.dropped)
                   : 1.0;
    std::printf("fec @ %5.1f%% loss: %4llu dropped  %4llu recovered "
                "(%.0f%%)  %llu residual losses\n",
                pct, static_cast<unsigned long long>(row.dropped),
                static_cast<unsigned long long>(row.recovered),
                row.rate * 100.0,
                static_cast<unsigned long long>(row.loss_events));
    recovery.push_back(row);
  }

  // ---- 3. Serve-tick overhead at 0% loss ----------------------------
  // Hard identity first: on a perfect channel the transport-fed session
  // must reproduce the in-process decode digest exactly.
  const serve::SessionEnv env = fault::scenario_env();
  serve::SessionConfig base;
  base.seed = 5;
  serve::SessionConfig piped = base;
  piped.transport = fault::net_scenario_transport(true);
  std::uint64_t base_digest = 0, piped_digest = 0;
  serve_rep(base, env, &base_digest);    // also the warmup
  serve_rep(piped, env, &piped_digest);
  if (base_digest != piped_digest) {
    std::fprintf(stderr, "FAIL: 0-loss transport decode digest diverged\n");
    return 1;
  }
  double base_s = std::numeric_limits<double>::infinity();
  double piped_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    base_s = std::min(base_s, serve_rep(base, env, &base_digest));
    piped_s = std::min(piped_s, serve_rep(piped, env, &piped_digest));
  }
  const double tick_overhead_pct = (piped_s / base_s - 1.0) * 100.0;
  std::printf("serve tick:   in-process %.3f ms  transport %.3f ms  "
              "overhead %+.2f%%\n",
              base_s * 1e3 / static_cast<double>(kServeTicks),
              piped_s * 1e3 / static_cast<double>(kServeTicks),
              tick_overhead_pct);

  // ---- 4. Replay identity -------------------------------------------
  bool replay_ok = true;
  for (const bool fec : {false, true}) {
    fault::ScenarioConfig cfg{7, 0.1, fault::kNetKinds};
    const auto tcfg = fault::net_scenario_transport(fec);
    replay_ok = replay_ok && fault::run_net_scenario(cfg, tcfg) ==
                                 fault::run_net_scenario(cfg, tcfg);
  }
  std::printf("replay identity: %s\n", replay_ok ? "PASS" : "FAIL");

  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value("net");
  w.key("framing").begin_object();
  w.key("packetize_mb_per_sec").value(pack_mbs);
  w.key("depacketize_mb_per_sec").value(depack_mbs);
  w.key("packets_per_clip").value(packets / kFrameIters);
  w.key("nals_per_clip").value(static_cast<std::uint64_t>(total_nals));
  w.end_object();
  w.key("fec_recovery").begin_array();
  for (const RecoveryRow& row : recovery) {
    w.begin_object();
    w.key("loss_pct").value(row.loss_pct);
    w.key("dropped").value(row.dropped);
    w.key("recovered").value(row.recovered);
    w.key("recovery_rate").value(row.rate);
    w.key("residual_loss_events").value(row.loss_events);
    w.end_object();
  }
  w.end_array();
  w.key("serve_tick").begin_object();
  w.key("in_process_ms_per_tick")
      .value(base_s * 1e3 / static_cast<double>(kServeTicks));
  w.key("transport_ms_per_tick")
      .value(piped_s * 1e3 / static_cast<double>(kServeTicks));
  w.key("serve_tick_overhead_pct").value(tick_overhead_pct);
  w.end_object();
  w.key("replay_identical").value(replay_ok);
  w.end_object();

  std::ofstream out(out_path);
  out << w.str() << "\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (!replay_ok) {
    std::fprintf(stderr, "FAIL: replay divergence\n");
    return 1;
  }
  // ISSUE 6 gate: transport plumbing may cost a perfect-channel tick at
  // most 5% over the in-process path.
  if (tick_overhead_pct > 5.0) {
    std::fprintf(stderr,
                 "FAIL: serve-tick transport overhead %.2f%% exceeds 5%%\n",
                 tick_overhead_pct);
    return 1;
  }
  return 0;
}
