// Ablation: where should classification run?
//
// Quantifies Section 2.1's design assertion that classification belongs
// on the smartphone: per-window watch energy for local MCU inference vs
// BLE offload, per model architecture, plus the daily battery budget at a
// realistic window rate.
#include <cstdio>
#include <random>

#include "nn/model.hpp"
#include "power/battery.hpp"
#include "power/offload.hpp"

using namespace affectsys;

int main() {
  const nn::ClassifierSpec spec{17, 64, 7};
  const std::size_t feature_bytes = 64 * 17 * 4;  // fp32 feature window
  power::OffloadPlanner planner;

  std::printf("=== ablation: classification placement (watch vs phone) ===\n");
  std::printf("feature payload %zu B/window, BLE %.0f nJ/B + %.0f uJ/window\n",
              feature_bytes, planner.costs().ble_nj_per_byte,
              planner.costs().ble_nj_per_window / 1e3);
  std::printf("watch MCU %.0f pJ/MAC, phone neural engine %.0f pJ/MAC\n\n",
              planner.costs().watch_nj_per_mac * 1e3,
              planner.costs().phone_nj_per_mac * 1e3);

  std::printf("%-6s %14s %14s %14s %10s %10s\n", "model", "MACs/window",
              "local (uJ)", "offload (uJ)", "watch", "system");

  struct Row {
    const char* name;
    nn::Sequential model;
  };
  std::mt19937 rng(1);
  Row rows[] = {
      {"NN", nn::build_mlp(spec, rng)},
      {"CNN", nn::build_cnn(spec, rng)},
      {"LSTM", nn::build_lstm(spec, rng)},
      {"GRU", nn::build_gru(spec, rng)},
  };
  for (Row& row : rows) {
    const std::size_t macs = nn::estimate_inference_macs(row.model, 64);
    const auto plan = planner.plan(macs, feature_bytes);
    std::printf("%-6s %14zu %14.1f %14.1f %10s %10s\n", row.name, macs,
                plan.local_watch_nj / 1e3, plan.offload_watch_nj / 1e3,
                plan.watch_optimal == power::ExecutionTarget::kWatch
                    ? "local"
                    : "offload",
                plan.system_optimal == power::ExecutionTarget::kWatch
                    ? "local"
                    : "offload");
  }

  std::printf("\nwatch-battery crossover: %.1f M MACs/window at this payload\n",
              planner.watch_crossover_macs(feature_bytes) / 1e6);

  // Daily budget at one classification every 30 s, 16 h awake.
  const double windows_per_day = 16.0 * 3600.0 / 30.0;
  const power::BatteryModel cell;
  std::printf("\n--- daily budget (1 window / 30 s, 16 h) ---\n");
  for (Row& row : rows) {
    const std::size_t macs = nn::estimate_inference_macs(row.model, 64);
    const auto plan = planner.plan(macs, feature_bytes);
    const double local_j = plan.local_watch_nj * windows_per_day * 1e-9;
    const double off_j = plan.offload_watch_nj * windows_per_day * 1e-9;
    std::printf("%-6s local %6.2f J/day (%4.1f%% of cell)   offload %6.2f "
                "J/day (%4.1f%% of cell)\n",
                row.name, local_j, 100.0 * local_j / cell.capacity_j(), off_j,
                100.0 * off_j / cell.capacity_j());
  }
  std::printf(
      "\nreading: recurrent models at paper scale exceed the radio cost —\n"
      "the paper's choice to classify on the phone is the right one for\n"
      "the watch battery; only sub-crossover models belong on the wrist.\n");
  return 0;
}
