// Simulcast benchmark.  Four questions:
//
//   1. What does the aligned layer ladder cost to encode?  The stock
//      3-layer ladder (16/32/64 over the serve scene) is encoded
//      repeatedly; throughput is pictures/s, min-of-N, reported for the
//      full ladder and per layer.
//   2. How long does a layer switch take to land?  A lossy serve
//      session under a degrade storm exercises the selector; the worst
//      waiting-for-keyframe stretch is reported in pictures and ticks
//      and gated at under one GOP (the alignment guarantee).
//   3. What do downswitches buy on the wire?  Two transport sessions
//      run the same seed and degrade schedule — one with the layer
//      pinned to the top (shedding only via Input Selector NAL
//      deletion, the pre-simulcast behaviour), one under the default
//      switch policy — and the slice bytes handed to the packetizer
//      are compared.  Gated at >= 20% reduction.
//   4. Does everything replay?  The storm session runs twice and the
//      bench fails hard on any digest/trace/counter divergence.
//
// Dumps BENCH_simulcast.json; tools/run_verify.sh `simulcast` mode
// runs this in the Release tree and regresses wire_reduction_pct
// against the committed copy.
//
// Usage: bench_simulcast [output.json]  (default: BENCH_simulcast.json)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "fault/scenario.hpp"
#include "net/transport.hpp"
#include "obs/json.hpp"
#include "serve/session.hpp"
#include "serve/workload.hpp"
#include "simulcast/encoder.hpp"
#include "simulcast/policy.hpp"

using namespace affectsys;

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kEncodeReps = 5;       // timing repetitions (min taken)
constexpr std::uint64_t kStormTicks = 80;
constexpr std::uint64_t kWireTicks = 120;

/// Serve fixtures whose workload also built the stock 3-layer clip.
const serve::SharedWorkload& sim_workload() {
  static serve::SharedWorkload w([] {
    serve::WorkloadConfig wc;
    wc.simulcast = simulcast::default_simulcast_config();
    return wc;
  }());
  return w;
}

serve::SessionEnv sim_env() {
  serve::SessionEnv env = fault::scenario_env();
  env.workload = &sim_workload();
  return env;
}

serve::SessionReport run_session(
    const serve::SessionConfig& cfg, std::uint64_t ticks,
    const std::function<int(std::uint64_t)>& level) {
  serve::Session s(1, cfg, sim_env(), /*inline_inference=*/true);
  for (std::uint64_t t = 0; t < ticks; ++t) {
    s.pump_audio(t);
    s.tick_media(t, level(t));
  }
  return s.report();
}

std::uint64_t wire_bytes(const serve::SessionReport& rep) {
  std::uint64_t total = 0;
  for (const std::uint64_t b : rep.stats.layer_bytes) total += b;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_simulcast.json";
  const simulcast::SimulcastConfig scfg = simulcast::default_simulcast_config();

  // ---- 1. Layer-ladder encode throughput ----------------------------
  // One untimed encode supplies the layer metadata and a byte pin the
  // timed repetitions are checked against (determinism guard doubling
  // as a keep-the-work-alive sink).
  const simulcast::SimulcastClip clip = simulcast::encode_simulcast(scfg);
  const double ladder_pics =
      static_cast<double>(clip.pictures() * clip.layer_count());
  double ladder_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kEncodeReps; ++rep) {
    const auto t0 = Clock::now();
    const simulcast::SimulcastClip c = simulcast::encode_simulcast(scfg);
    const std::chrono::duration<double> dt = Clock::now() - t0;
    ladder_s = std::min(ladder_s, dt.count());
    for (std::size_t l = 0; l < c.layer_count(); ++l) {
      if (c.layer(l).bytes != clip.layer(l).bytes) {
        std::fprintf(stderr, "FAIL: encode not deterministic (layer %zu)\n", l);
        return 1;
      }
    }
  }
  struct LayerRow {
    int width, height;
    std::uint64_t bytes;
    double achieved_kbps, pics_per_sec;
  };
  std::vector<LayerRow> layers;
  for (std::size_t l = 0; l < clip.layer_count(); ++l) {
    simulcast::SimulcastConfig solo = scfg;
    solo.layers = {scfg.layers[l]};
    double solo_s = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kEncodeReps; ++rep) {
      const auto t0 = Clock::now();
      const simulcast::SimulcastClip c = simulcast::encode_simulcast(solo);
      const std::chrono::duration<double> dt = Clock::now() - t0;
      solo_s = std::min(solo_s, dt.count());
      if (c.layer(0).bytes != clip.layer(l).bytes) {
        std::fprintf(stderr, "FAIL: solo layer %zu encode diverged\n", l);
        return 1;
      }
    }
    const simulcast::LayerStream& s = clip.layer(l);
    layers.push_back({s.width, s.height, s.bytes, s.achieved_bps / 1000.0,
                      static_cast<double>(clip.pictures()) / solo_s});
    std::printf("encode layer %zu: %3dx%-3d %7llu B  %7.1f kbps  "
                "%7.1f pics/s\n",
                l, s.width, s.height,
                static_cast<unsigned long long>(s.bytes), layers.back().achieved_kbps,
                layers.back().pics_per_sec);
  }
  const double ladder_pps = ladder_pics / ladder_s;
  std::printf("encode ladder:  %zu layers  %7.1f pics/s\n",
              clip.layer_count(), ladder_pps);

  // ---- 2 & 4. Switch latency + replay identity ----------------------
  // A lossy transport session under a degrade storm: the policy flips
  // targets every few ticks, so the selector's waiting-for-keyframe
  // counters see real traffic.  Two runs pin replay identity.
  serve::SessionConfig storm;
  storm.seed = 11;
  storm.fault = fault::FaultConfig{41, 0.05, fault::kNetKinds};
  storm.transport = fault::net_scenario_transport(true);
  storm.transport.layers = clip.layer_count();
  storm.simulcast.enabled = true;
  const auto storm_level = [](std::uint64_t t) {
    return static_cast<int>((t / 4) % 4);
  };
  const serve::SessionReport a = run_session(storm, kStormTicks, storm_level);
  const serve::SessionReport b = run_session(storm, kStormTicks, storm_level);
  const bool replay_ok = a.decode_digest == b.decode_digest &&
                         a.layer_trace == b.layer_trace &&
                         a.stats.layer_switches == b.stats.layer_switches &&
                         wire_bytes(a) == wire_bytes(b);
  std::printf("replay identity: %s\n", replay_ok ? "PASS" : "FAIL");

  const simulcast::LayerSelectorStats& sel = a.layer_selector;
  const double pics_per_tick = storm.fps * storm.tick_s;
  const double mean_wait =
      sel.switches_completed
          ? static_cast<double>(sel.pictures_waited) /
                static_cast<double>(sel.switches_completed)
          : 0.0;
  const double max_wait_ticks =
      static_cast<double>(sel.max_wait_pictures) / pics_per_tick;
  std::printf("switching:      %llu completed  wait mean %.2f max %llu pics "
              "(%.2f ticks, gop %d)\n",
              static_cast<unsigned long long>(sel.switches_completed),
              mean_wait,
              static_cast<unsigned long long>(sel.max_wait_pictures),
              max_wait_ticks, scfg.gop_frames);

  // ---- 3. Bytes on the wire: downswitch vs deletion-only ------------
  // Same seed, same degrade schedule (cycling 0/1/2 — never the shed
  // level, so every byte difference is adaptation, not dropped work).
  // The pinned run keeps the top layer forever: its only shedding tool
  // is sender-side NAL deletion, i.e. the pre-simulcast behaviour at
  // top-layer quality.
  serve::SessionConfig wire;
  wire.seed = 17;
  wire.transport = fault::net_scenario_transport(true);
  wire.transport.layers = clip.layer_count();
  wire.simulcast.enabled = true;
  serve::SessionConfig pinned = wire;
  pinned.simulcast.use_default_policy = false;
  pinned.simulcast.policy.default_target = clip.layer_count() - 1;
  const auto wire_level = [](std::uint64_t t) {
    return static_cast<int>((t / 8) % 3);
  };
  const serve::SessionReport dyn = run_session(wire, kWireTicks, wire_level);
  const serve::SessionReport pin = run_session(pinned, kWireTicks, wire_level);
  const std::uint64_t dyn_bytes = wire_bytes(dyn);
  const std::uint64_t pin_bytes = wire_bytes(pin);
  const double reduction_pct =
      pin_bytes ? (1.0 - static_cast<double>(dyn_bytes) /
                             static_cast<double>(pin_bytes)) *
                      100.0
                : 0.0;
  std::printf("wire bytes:     deletion-only %llu  switching %llu  "
              "reduction %.1f%%\n",
              static_cast<unsigned long long>(pin_bytes),
              static_cast<unsigned long long>(dyn_bytes), reduction_pct);

  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value("simulcast");
  w.key("encode").begin_object();
  w.key("ladder_pics_per_sec").value(ladder_pps);
  w.key("layers").begin_array();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const LayerRow& row = layers[l];
    w.begin_object();
    w.key("layer").value(static_cast<std::uint64_t>(l));
    w.key("width").value(static_cast<std::uint64_t>(row.width));
    w.key("height").value(static_cast<std::uint64_t>(row.height));
    w.key("bytes").value(row.bytes);
    w.key("achieved_kbps").value(row.achieved_kbps);
    w.key("pics_per_sec").value(row.pics_per_sec);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("switching").begin_object();
  w.key("switches_completed").value(sel.switches_completed);
  w.key("mean_wait_pictures").value(mean_wait);
  w.key("max_wait_pictures").value(sel.max_wait_pictures);
  w.key("max_wait_ticks").value(max_wait_ticks);
  w.key("gop_frames").value(static_cast<std::uint64_t>(scfg.gop_frames));
  w.end_object();
  w.key("wire").begin_object();
  w.key("deletion_only_bytes").value(pin_bytes);
  w.key("simulcast_bytes").value(dyn_bytes);
  w.key("wire_reduction_pct").value(reduction_pct);
  w.end_object();
  w.key("replay_identical").value(replay_ok);
  w.end_object();

  std::ofstream out(out_path);
  out << w.str() << "\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (!replay_ok) {
    std::fprintf(stderr, "FAIL: replay divergence\n");
    return 1;
  }
  // ISSUE 9 gates: a switch must land within one GOP of the request
  // (the alignment guarantee), and policy-driven downswitching must
  // save >= 20% of wire bytes over deletion-only shedding at the same
  // emotion script and pressure schedule.
  if (sel.switches_completed == 0 ||
      sel.max_wait_pictures >= static_cast<std::uint64_t>(scfg.gop_frames)) {
    std::fprintf(stderr,
                 "FAIL: switch latency %llu pics breaches the 1-GOP bound "
                 "(%d) or no switches ran\n",
                 static_cast<unsigned long long>(sel.max_wait_pictures),
                 scfg.gop_frames);
    return 1;
  }
  if (reduction_pct < 20.0) {
    std::fprintf(stderr,
                 "FAIL: wire reduction %.1f%% below the 20%% gate\n",
                 reduction_pct);
    return 1;
  }
  return 0;
}
