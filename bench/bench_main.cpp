// Observability benchmark runner: exercises the four instrumented hot
// layers (H.264 decode, real-time affect pipeline, Input Selector, full
// system scenario) and dumps a machine-readable BENCH_observability.json
// snapshot — wall times, windows/sec, NAL filter throughput, decode
// ns/frame, plus the complete metrics-registry dump.  A fifth phase
// sweeps the parallel runtime (serial reference plus 1/2/4 pool
// threads) over the decode, deblock, async-pipeline and GEMM hot paths
// and writes the comparison to BENCH_parallel.json.  Future PRs regress
// hot-path performance against these files.
//
// Usage: bench_main [output.json] [parallel.json]
//        (defaults: BENCH_observability.json, BENCH_parallel.json)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "adaptive/input_selector.hpp"
#include "affect/classifier.hpp"
#include "affect/realtime.hpp"
#include "affect/speech_synth.hpp"
#include "core/simulator.hpp"
#include "core/thread_pool.hpp"
#include "h264/deblock.hpp"
#include "h264/decoder.hpp"
#include "h264/encoder.hpp"
#include "h264/testvideo.hpp"
#include "nn/matrix.hpp"
#include "nn/model.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

using namespace affectsys;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<std::uint8_t> make_stream() {
  h264::VideoConfig vc{64, 64, 24, 1.2, 0.6, 2.5, 77};
  const auto video = h264::generate_mixed_video(vc, 0.25);
  h264::Encoder enc(h264::EncoderConfig{64, 64, 24, 12, 2, 4, true});
  return enc.encode_annexb(video);
}

struct Summary {
  double wall_s = 0.0;
  double decode_ns_per_frame_wall = 0.0;
  double decode_ns_per_frame_observed = 0.0;
  std::uint64_t frames_decoded = 0;
  double affect_windows_per_sec = 0.0;
  std::uint64_t affect_windows = 0;
  double selector_mb_per_sec = 0.0;
  std::uint64_t selector_bytes = 0;
  double full_system_s = 0.0;
  double playback_energy_saving = 0.0;
  double app_memory_saving = 0.0;
};

affect::AffectClassifier train_bench_classifier() {
  affect::CorpusProfile prof;
  prof.name = "bench";
  prof.num_speakers = 4;
  prof.emotions = {affect::Emotion::kAngry, affect::Emotion::kCalm};
  prof.utterances_per_speaker_emotion = 6;
  prof.utterance_seconds = 1.0;
  prof.speaker_spread = 0.1;
  nn::TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 8;
  tc.learning_rate = 2e-3f;
  return affect::train_affect_classifier(nn::ModelKind::kMlp, prof, tc);
}

// --- Parallel-runtime sweep --------------------------------------------------

struct ParallelRow {
  std::size_t threads = 0;  ///< 0 = serial (inline) reference
  double decode_ns_per_frame = 0.0;   ///< multi-stream decode throughput
  double deblock_ns_per_frame = 0.0;  ///< 256x256 in-loop filter
  double windows_per_sec = 0.0;       ///< async affect pipeline
  double gemm_gflops = 0.0;           ///< 256x256x256 float matmul
};

/// A 256x256 frame with deterministic texture plus all-intra MbInfo —
/// every edge gets bs 4, so the filter does maximal work per frame.
h264::YuvFrame make_deblock_frame(std::vector<h264::MbInfo>& mb_info) {
  h264::YuvFrame frame(256, 256);
  auto fill = [](h264::Plane& p) {
    for (int y = 0; y < p.height; ++y) {
      for (int x = 0; x < p.width; ++x) {
        p.at(x, y) =
            static_cast<std::uint8_t>((x * 7 + y * 13 + (x / 16) * 40) & 0xFF);
      }
    }
  };
  fill(frame.y);
  fill(frame.cb);
  fill(frame.cr);
  mb_info.assign(static_cast<std::size_t>(frame.mb_count()), h264::MbInfo{});
  for (auto& mb : mb_info) mb.intra = true;
  return frame;
}

ParallelRow run_parallel_row(std::size_t threads,
                             const std::vector<std::uint8_t>& stream,
                             affect::AffectClassifier& clf,
                             const std::vector<affect::Utterance>& audio) {
  core::set_global_threads(threads);
  ParallelRow row;
  row.threads = core::global_threads();

  // Decode throughput: independent streams fan out over the pool (the
  // per-session shape of an edge server); inside each task the
  // row-parallel deblock nests inline.  threads == 0 runs the same
  // loop serially on the caller.
  {
    constexpr int kStreams = 6;
    const auto t0 = Clock::now();
    std::vector<std::future<std::size_t>> jobs;
    jobs.reserve(kStreams);
    for (int s = 0; s < kStreams; ++s) {
      jobs.push_back(core::global_pool().submit([&stream] {
        h264::Decoder dec;
        return dec.decode_annexb(stream).size();
      }));
    }
    std::uint64_t frames = 0;
    for (auto& j : jobs) frames += j.get();
    row.decode_ns_per_frame =
        seconds_since(t0) * 1e9 / static_cast<double>(frames);
  }

  // Deblock: row/column-parallel passes over a 16x16-macroblock frame,
  // driven from the caller so parallel_for engages.
  {
    std::vector<h264::MbInfo> mb_info;
    const h264::YuvFrame base = make_deblock_frame(mb_info);
    constexpr int kReps = 12;
    const auto t0 = Clock::now();
    for (int i = 0; i < kReps; ++i) {
      h264::YuvFrame frame = base;  // fresh texture: comparable work per rep
      h264::deblock_frame(frame, mb_info, 32);
    }
    row.deblock_ns_per_frame = seconds_since(t0) * 1e9 / kReps;
  }

  // Affect pipeline: async (pool-backed) when threads > 0, synchronous
  // reference otherwise; drain() makes the measurement complete.
  {
    affect::RealtimeConfig rc;
    rc.async = threads > 0;
    rc.max_inflight = 64;
    affect::RealtimePipeline pipe(clf, rc);
    const auto t0 = Clock::now();
    double t = 0.0;
    for (const auto& utt : audio) {
      for (std::size_t off = 0; off < utt.samples.size(); off += 1600) {
        const std::size_t n =
            std::min<std::size_t>(1600, utt.samples.size() - off);
        pipe.push_audio(t, {utt.samples.data() + off, n});
        t += 0.1;
      }
    }
    pipe.drain();
    const double dt = seconds_since(t0);
    row.windows_per_sec =
        static_cast<double>(pipe.stats().windows_considered) / dt;
  }

  // GEMM: the classifier-scale dense product, blocked and row-parallel.
  {
    constexpr std::size_t kN = 256;
    nn::Matrix a(kN, kN), b(kN, kN);
    for (std::size_t r = 0; r < kN; ++r) {
      for (std::size_t c = 0; c < kN; ++c) {
        a(r, c) = static_cast<float>((r * 31 + c * 17) % 97) / 97.0f - 0.5f;
        b(r, c) = static_cast<float>((r * 13 + c * 29) % 89) / 89.0f - 0.5f;
      }
    }
    constexpr int kReps = 6;
    float sink = 0.0f;
    const auto t0 = Clock::now();
    for (int i = 0; i < kReps; ++i) {
      const nn::Matrix c = a.matmul(b);
      sink += c(0, 0);
    }
    const double dt = seconds_since(t0);
    row.gemm_gflops = 2.0 * static_cast<double>(kN) * kN * kN * kReps /
                      dt / 1e9;
    if (sink == 123.25f) std::printf("(unlikely)\n");  // defeat DCE
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_observability.json";
  const std::string parallel_path =
      argc > 2 ? argv[2] : "BENCH_parallel.json";
  obs::Registry& reg = obs::Registry::global();
  Summary sum;
  // Phases 1-4 are the serial reference the observability snapshot has
  // always measured; the parallel runtime is swept separately in phase 5.
  core::set_global_threads(0);
  const auto bench_start = Clock::now();

  // --- H.264 decode: ns/frame ---------------------------------------------
  std::printf("[1/5] h264 decode...\n");
  const auto stream = make_stream();
  {
    // Warm-up rep outside the timed window: first-use metric
    // registration (registry mutex + map insert) and allocator warm-up
    // otherwise land inside the wall clock but not inside the
    // per-slice decode_ns scope, skewing wall vs observed.
    {
      h264::Decoder warm;
      (void)warm.decode_annexb(stream);
    }
    reg.reset_values();
    const auto t0 = Clock::now();
    std::uint64_t frames = 0;
    constexpr int kReps = 8;
    for (int i = 0; i < kReps; ++i) {
      h264::Decoder dec;
      frames += dec.decode_annexb(stream).size();
    }
    const double dt = seconds_since(t0);
    sum.frames_decoded = frames;
    sum.decode_ns_per_frame_wall = dt * 1e9 / static_cast<double>(frames);
    // Snapshot the observed mean now, while the histogram holds exactly
    // the timed reps: the full-system phase below decodes video of its
    // own, and folding those slices into the mean was the largest part
    // of the historical wall-vs-observed skew.
    sum.decode_ns_per_frame_observed = reg.histogram("h264.decode_ns").mean();
  }

  // --- Real-time affect pipeline: windows/sec ------------------------------
  std::printf("[2/5] affect pipeline (training a small classifier)...\n");
  affect::AffectClassifier clf = train_bench_classifier();
  std::vector<affect::Utterance> bench_audio;
  {
    affect::SpeechSynthesizer synth(7);
    for (int u = 0; u < 12; ++u) {
      bench_audio.push_back(synth.synthesize(
          u % 2 ? affect::Emotion::kCalm : affect::Emotion::kAngry, 40 + u,
          1.0, 16000.0, 0.1));
    }
    affect::RealtimePipeline pipe(clf, affect::RealtimeConfig{});
    const auto t0 = Clock::now();
    double t = 0.0;
    for (const auto& utt : bench_audio) {
      for (std::size_t off = 0; off < utt.samples.size(); off += 1600) {
        const std::size_t n =
            std::min<std::size_t>(1600, utt.samples.size() - off);
        pipe.push_audio(t, {utt.samples.data() + off, n});
        t += 0.1;
      }
    }
    const double dt = seconds_since(t0);
    sum.affect_windows = pipe.stats().windows_considered;
    sum.affect_windows_per_sec =
        static_cast<double>(sum.affect_windows) / dt;
  }

  // --- Input Selector: NAL filter throughput -------------------------------
  std::printf("[3/5] input selector...\n");
  {
    const auto t0 = Clock::now();
    std::uint64_t bytes = 0;
    constexpr int kReps = 64;
    for (int i = 0; i < kReps; ++i) {
      adaptive::InputSelector sel({140, 1});
      sel.filter_annexb(stream);
      bytes += sel.stats().bytes_in;
    }
    const double dt = seconds_since(t0);
    sum.selector_bytes = bytes;
    sum.selector_mb_per_sec = static_cast<double>(bytes) / 1e6 / dt;
  }

  // --- Full-system demo path ----------------------------------------------
  std::printf("[4/5] full-system scenario...\n");
  {
    const auto t0 = Clock::now();
    core::SystemScenarioConfig cfg;
    adaptive::AdaptiveDecoderSystem dec(cfg.playback);
    const auto report = core::run_system_scenario(cfg, dec);
    sum.full_system_s = seconds_since(t0);
    sum.playback_energy_saving = report.playback.energy_saving();
    sum.app_memory_saving = report.app_memory_saving();
  }

  sum.wall_s = seconds_since(bench_start);

  // --- Parallel runtime sweep ----------------------------------------------
  std::printf("[5/5] parallel runtime sweep (serial, 1, 2, 4 threads)...\n");
  std::vector<ParallelRow> rows;
  for (const std::size_t t : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{4}}) {
    rows.push_back(run_parallel_row(t, stream, clf, bench_audio));
  }
  core::set_global_threads(0);

  // --- Counter sanity: the demo path must light up every subsystem ---------
  int missing = 0;
#if defined(AFFECTSYS_METRICS) && AFFECTSYS_METRICS
  const char* required[] = {
      "h264.nal_units",           "h264.frames_decoded",
      "h264.mbs_decoded",         "h264.residual_blocks_decoded",
      "h264.deblock_edges_examined", "h264.deblock_edges_filtered",
      "affect.samples_in",        "affect.windows_considered",
      "affect.windows_classified", "affect.inferences",
      "adaptive.selector_units_in", "adaptive.selector_units_deleted",
      "adaptive.modes_profiled",  "adaptive.playback_segments",
      "android.cold_starts",      "android.warm_starts",
      "android.kills",            "android.victim_selections",
  };
  for (const char* name : required) {
    if (reg.counter(name).value() == 0) {
      std::fprintf(stderr, "MISSING: counter %s is zero\n", name);
      ++missing;
    }
  }
#else
  std::printf("metrics disabled (AFFECTSYS_METRICS=OFF): snapshot will be "
              "empty\n");
#endif

  // --- Report --------------------------------------------------------------
  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value("observability");
  w.key("metrics_enabled")
      .value(static_cast<bool>(
#if defined(AFFECTSYS_METRICS) && AFFECTSYS_METRICS
          true
#else
          false
#endif
          ));
  w.key("summary").begin_object();
  w.key("wall_s").value(sum.wall_s);
  w.key("decode_ns_per_frame_wall").value(sum.decode_ns_per_frame_wall);
  w.key("decode_ns_per_frame_observed")
      .value(sum.decode_ns_per_frame_observed);
  w.key("frames_decoded").value(sum.frames_decoded);
  w.key("affect_windows_per_sec").value(sum.affect_windows_per_sec);
  w.key("affect_windows").value(sum.affect_windows);
  w.key("selector_mb_per_sec").value(sum.selector_mb_per_sec);
  w.key("selector_bytes").value(sum.selector_bytes);
  w.key("full_system_s").value(sum.full_system_s);
  w.key("playback_energy_saving").value(sum.playback_energy_saving);
  w.key("app_memory_saving").value(sum.app_memory_saving);
  w.end_object();
  w.key("metrics").raw_value(reg.to_json());
  w.end_object();

  std::ofstream out(out_path);
  out << w.str() << "\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }

  // --- Parallel comparison report ------------------------------------------
  {
    const ParallelRow& serial = rows.front();
    const ParallelRow& widest = rows.back();
    obs::JsonWriter pw;
    pw.begin_object();
    pw.key("bench").value("parallel");
    pw.key("threads_enabled")
        .value(static_cast<bool>(
#if defined(AFFECTSYS_THREADS) && AFFECTSYS_THREADS
            true
#else
            false
#endif
            ));
    pw.key("hardware_concurrency")
        .value(static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
    pw.key("rows").begin_array();
    for (const ParallelRow& r : rows) {
      pw.begin_object();
      pw.key("threads").value(static_cast<std::uint64_t>(r.threads));
      pw.key("decode_ns_per_frame").value(r.decode_ns_per_frame);
      pw.key("deblock_ns_per_frame").value(r.deblock_ns_per_frame);
      pw.key("windows_per_sec").value(r.windows_per_sec);
      pw.key("gemm_gflops").value(r.gemm_gflops);
      pw.end_object();
    }
    pw.end_array();
    pw.key("speedup_vs_serial").begin_object();
    pw.key("threads").value(static_cast<std::uint64_t>(widest.threads));
    pw.key("decode").value(widest.decode_ns_per_frame > 0.0
                               ? serial.decode_ns_per_frame /
                                     widest.decode_ns_per_frame
                               : 0.0);
    pw.key("deblock").value(widest.deblock_ns_per_frame > 0.0
                                ? serial.deblock_ns_per_frame /
                                      widest.deblock_ns_per_frame
                                : 0.0);
    pw.key("windows").value(serial.windows_per_sec > 0.0
                                ? widest.windows_per_sec /
                                      serial.windows_per_sec
                                : 0.0);
    pw.key("gemm").value(serial.gemm_gflops > 0.0
                             ? widest.gemm_gflops / serial.gemm_gflops
                             : 0.0);
    pw.end_object();
    pw.end_object();
    std::ofstream pout(parallel_path);
    pout << pw.str() << "\n";
    pout.close();
    if (!pout) {
      std::fprintf(stderr, "failed to write %s\n", parallel_path.c_str());
      return 1;
    }
    for (const ParallelRow& r : rows) {
      std::printf("parallel[%zu threads]: decode %.0f ns/f, deblock %.0f "
                  "ns/f, %.1f win/s, %.2f GFLOP/s\n",
                  r.threads, r.decode_ns_per_frame, r.deblock_ns_per_frame,
                  r.windows_per_sec, r.gemm_gflops);
    }
  }

  std::printf("\ndecode:   %.0f ns/frame (wall), %.0f ns/frame (observed)\n",
              sum.decode_ns_per_frame_wall, sum.decode_ns_per_frame_observed);
  std::printf("affect:   %.1f windows/sec\n", sum.affect_windows_per_sec);
  std::printf("selector: %.1f MB/s\n", sum.selector_mb_per_sec);
  std::printf("system:   %.2f s, playback saving %.1f%%, memory saving "
              "%.1f%%\n",
              sum.full_system_s, 100.0 * sum.playback_energy_saving,
              100.0 * sum.app_memory_saving);
  std::printf("wrote %s and %s\n", out_path.c_str(), parallel_path.c_str());
  if (missing > 0) {
    std::fprintf(stderr, "%d required counters were zero\n", missing);
    return 1;
  }
  return 0;
}
