// Observability benchmark runner: exercises the four instrumented hot
// layers (H.264 decode, real-time affect pipeline, Input Selector, full
// system scenario) and dumps a machine-readable BENCH_observability.json
// snapshot — wall times, windows/sec, NAL filter throughput, decode
// ns/frame, plus the complete metrics-registry dump.  Future PRs regress
// hot-path performance against this file.
//
// Usage: bench_main [output.json]   (default: BENCH_observability.json)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "adaptive/input_selector.hpp"
#include "affect/realtime.hpp"
#include "affect/speech_synth.hpp"
#include "core/simulator.hpp"
#include "h264/decoder.hpp"
#include "h264/encoder.hpp"
#include "h264/testvideo.hpp"
#include "nn/model.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

using namespace affectsys;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<std::uint8_t> make_stream() {
  h264::VideoConfig vc{64, 64, 24, 1.2, 0.6, 2.5, 77};
  const auto video = h264::generate_mixed_video(vc, 0.25);
  h264::Encoder enc(h264::EncoderConfig{64, 64, 24, 12, 2, 4, true});
  return enc.encode_annexb(video);
}

struct Summary {
  double wall_s = 0.0;
  double decode_ns_per_frame_wall = 0.0;
  double decode_ns_per_frame_observed = 0.0;
  std::uint64_t frames_decoded = 0;
  double affect_windows_per_sec = 0.0;
  std::uint64_t affect_windows = 0;
  double selector_mb_per_sec = 0.0;
  std::uint64_t selector_bytes = 0;
  double full_system_s = 0.0;
  double playback_energy_saving = 0.0;
  double app_memory_saving = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_observability.json";
  obs::Registry& reg = obs::Registry::global();
  Summary sum;
  const auto bench_start = Clock::now();

  // --- H.264 decode: ns/frame ---------------------------------------------
  std::printf("[1/4] h264 decode...\n");
  const auto stream = make_stream();
  {
    const auto t0 = Clock::now();
    std::uint64_t frames = 0;
    constexpr int kReps = 8;
    for (int i = 0; i < kReps; ++i) {
      h264::Decoder dec;
      frames += dec.decode_annexb(stream).size();
    }
    const double dt = seconds_since(t0);
    sum.frames_decoded = frames;
    sum.decode_ns_per_frame_wall = dt * 1e9 / static_cast<double>(frames);
  }

  // --- Real-time affect pipeline: windows/sec ------------------------------
  std::printf("[2/4] affect pipeline (training a small classifier)...\n");
  {
    affect::CorpusProfile prof;
    prof.name = "bench";
    prof.num_speakers = 4;
    prof.emotions = {affect::Emotion::kAngry, affect::Emotion::kCalm};
    prof.utterances_per_speaker_emotion = 6;
    prof.utterance_seconds = 1.0;
    prof.speaker_spread = 0.1;
    nn::TrainConfig tc;
    tc.epochs = 6;
    tc.batch_size = 8;
    tc.learning_rate = 2e-3f;
    affect::AffectClassifier clf =
        affect::train_affect_classifier(nn::ModelKind::kMlp, prof, tc);

    affect::RealtimePipeline pipe(clf, affect::RealtimeConfig{});
    affect::SpeechSynthesizer synth(7);
    const auto t0 = Clock::now();
    double t = 0.0;
    for (int u = 0; u < 12; ++u) {
      const auto utt = synth.synthesize(
          u % 2 ? affect::Emotion::kCalm : affect::Emotion::kAngry, 40 + u,
          1.0, 16000.0, 0.1);
      for (std::size_t off = 0; off < utt.samples.size(); off += 1600) {
        const std::size_t n =
            std::min<std::size_t>(1600, utt.samples.size() - off);
        pipe.push_audio(t, {utt.samples.data() + off, n});
        t += 0.1;
      }
    }
    const double dt = seconds_since(t0);
    sum.affect_windows = pipe.stats().windows_considered;
    sum.affect_windows_per_sec =
        static_cast<double>(sum.affect_windows) / dt;
  }

  // --- Input Selector: NAL filter throughput -------------------------------
  std::printf("[3/4] input selector...\n");
  {
    const auto t0 = Clock::now();
    std::uint64_t bytes = 0;
    constexpr int kReps = 64;
    for (int i = 0; i < kReps; ++i) {
      adaptive::InputSelector sel({140, 1});
      sel.filter_annexb(stream);
      bytes += sel.stats().bytes_in;
    }
    const double dt = seconds_since(t0);
    sum.selector_bytes = bytes;
    sum.selector_mb_per_sec = static_cast<double>(bytes) / 1e6 / dt;
  }

  // --- Full-system demo path ----------------------------------------------
  std::printf("[4/4] full-system scenario...\n");
  {
    const auto t0 = Clock::now();
    core::SystemScenarioConfig cfg;
    adaptive::AdaptiveDecoderSystem dec(cfg.playback);
    const auto report = core::run_system_scenario(cfg, dec);
    sum.full_system_s = seconds_since(t0);
    sum.playback_energy_saving = report.playback.energy_saving();
    sum.app_memory_saving = report.app_memory_saving();
  }

  sum.wall_s = seconds_since(bench_start);
  sum.decode_ns_per_frame_observed =
      reg.histogram("h264.decode_ns").mean();

  // --- Counter sanity: the demo path must light up every subsystem ---------
  int missing = 0;
#if defined(AFFECTSYS_METRICS) && AFFECTSYS_METRICS
  const char* required[] = {
      "h264.nal_units",           "h264.frames_decoded",
      "h264.mbs_decoded",         "h264.residual_blocks_decoded",
      "h264.deblock_edges_examined", "h264.deblock_edges_filtered",
      "affect.samples_in",        "affect.windows_considered",
      "affect.windows_classified", "affect.inferences",
      "adaptive.selector_units_in", "adaptive.selector_units_deleted",
      "adaptive.modes_profiled",  "adaptive.playback_segments",
      "android.cold_starts",      "android.warm_starts",
      "android.kills",            "android.victim_selections",
  };
  for (const char* name : required) {
    if (reg.counter(name).value() == 0) {
      std::fprintf(stderr, "MISSING: counter %s is zero\n", name);
      ++missing;
    }
  }
#else
  std::printf("metrics disabled (AFFECTSYS_METRICS=OFF): snapshot will be "
              "empty\n");
#endif

  // --- Report --------------------------------------------------------------
  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value("observability");
  w.key("metrics_enabled")
      .value(static_cast<bool>(
#if defined(AFFECTSYS_METRICS) && AFFECTSYS_METRICS
          true
#else
          false
#endif
          ));
  w.key("summary").begin_object();
  w.key("wall_s").value(sum.wall_s);
  w.key("decode_ns_per_frame_wall").value(sum.decode_ns_per_frame_wall);
  w.key("decode_ns_per_frame_observed")
      .value(sum.decode_ns_per_frame_observed);
  w.key("frames_decoded").value(sum.frames_decoded);
  w.key("affect_windows_per_sec").value(sum.affect_windows_per_sec);
  w.key("affect_windows").value(sum.affect_windows);
  w.key("selector_mb_per_sec").value(sum.selector_mb_per_sec);
  w.key("selector_bytes").value(sum.selector_bytes);
  w.key("full_system_s").value(sum.full_system_s);
  w.key("playback_energy_saving").value(sum.playback_energy_saving);
  w.key("app_memory_saving").value(sum.app_memory_saving);
  w.end_object();
  w.key("metrics").raw_value(reg.to_json());
  w.end_object();

  std::ofstream out(out_path);
  out << w.str() << "\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }

  std::printf("\ndecode:   %.0f ns/frame (wall), %.0f ns/frame (observed)\n",
              sum.decode_ns_per_frame_wall, sum.decode_ns_per_frame_observed);
  std::printf("affect:   %.1f windows/sec\n", sum.affect_windows_per_sec);
  std::printf("selector: %.1f MB/s\n", sum.selector_mb_per_sec);
  std::printf("system:   %.2f s, playback saving %.1f%%, memory saving "
              "%.1f%%\n",
              sum.full_system_s, 100.0 * sum.playback_energy_saving,
              100.0 * sum.app_memory_saving);
  std::printf("wrote %s\n", out_path.c_str());
  if (missing > 0) {
    std::fprintf(stderr, "%d required counters were zero\n", missing);
    return 1;
  }
  return 0;
}
