// Fig 10 reproduction: total memory loaded at app start and total app
// loading time, emotion-driven vs system-default management.
//
// Paper: 17% saving of memory loaded, 12% saving of loading time.
// Results are reported for the paper's single case-study sequence and
// averaged across several monkey seeds to show robustness.
#include <cstdio>
#include <vector>

#include "core/manager_experiment.hpp"

using namespace affectsys;

int main() {
  std::printf("=== Fig 10: memory loaded at app start & loading time ===\n");
  std::printf("session: excited 12 min + calm 8 min, 44 apps, 4 GB RAM, "
              "limit 20\n\n");

  std::printf("%-6s %16s %16s %9s %12s %12s %9s\n", "seed", "base mem(GB)",
              "prop mem(GB)", "saving", "base t(s)", "prop t(s)", "saving");
  double mem_sum = 0.0, time_sum = 0.0;
  const std::vector<unsigned> seeds = {99, 1, 2, 3, 42, 123};
  for (unsigned seed : seeds) {
    core::ManagerExperimentConfig cfg;
    cfg.monkey.seed = seed;
    const auto res = core::run_manager_experiment(cfg);
    mem_sum += res.memory_saving();
    time_sum += res.time_saving();
    std::printf("%-6u %16.2f %16.2f %8.1f%% %12.1f %12.1f %8.1f%%\n", seed,
                static_cast<double>(res.baseline.memory_loaded_bytes) / 1e9,
                static_cast<double>(res.proposed.memory_loaded_bytes) / 1e9,
                100.0 * res.memory_saving(), res.baseline.loading_time_s,
                res.proposed.loading_time_s, 100.0 * res.time_saving());
  }
  const double n = static_cast<double>(seeds.size());
  std::printf("\nmean memory-loaded saving: %5.1f%%   (paper: 17%%)\n",
              100.0 * mem_sum / n);
  std::printf("mean loading-time saving:  %5.1f%%   (paper: 12%%)\n",
              100.0 * time_sum / n);

  // Breakdown for the canonical seed, mirroring the figure's two bars.
  core::ManagerExperimentConfig cfg;
  const auto res = core::run_manager_experiment(cfg);
  std::printf("\n--- canonical run breakdown (seed %u) ---\n", cfg.monkey.seed);
  std::printf("%-26s %14s %14s\n", "", "emotion-driven", "baseline");
  std::printf("%-26s %14.3e %14.3e\n", "total loaded memory (B)",
              static_cast<double>(res.proposed.memory_loaded_bytes),
              static_cast<double>(res.baseline.memory_loaded_bytes));
  std::printf("%-26s %14.1f %14.1f\n", "total loading time (s)",
              res.proposed.loading_time_s, res.baseline.loading_time_s);
  std::printf("%-26s %14llu %14llu\n", "cold starts",
              static_cast<unsigned long long>(res.proposed.cold_starts),
              static_cast<unsigned long long>(res.baseline.cold_starts));
  std::printf("%-26s %14llu %14llu\n", "warm starts",
              static_cast<unsigned long long>(res.proposed.warm_starts),
              static_cast<unsigned long long>(res.baseline.warm_starts));
  std::printf("%-26s %14.1f %14.1f\n", "flash energy (mJ)",
              res.proposed.flash_energy_nj / 1e6,
              res.baseline.flash_energy_nj / 1e6);
  return 0;
}
