// Ablation: emotion-triggered app prefetching (extension beyond the
// paper).
//
// On every detected emotion change the manager can speculatively preload
// the top-k apps ranked for the new emotion (without ever evicting a
// resident process).  Prefetch trades background flash traffic for
// user-visible start latency; this bench maps that trade as k grows.
#include <cstdio>
#include <vector>

#include "core/manager_experiment.hpp"

using namespace affectsys;

int main() {
  std::printf("=== ablation: emotion-triggered prefetch (top-k) ===\n");
  std::printf("(mean over 4 seeds; baseline column = FIFO manager)\n\n");
  std::printf("%-10s %12s %14s %14s %14s\n", "k", "user wait(s)",
              "cold starts", "prefetches", "flash GB total");

  const std::vector<unsigned> seeds = {99, 1, 2, 3};
  for (int k : {0, 1, 3, 5, 8}) {
    double wait = 0.0, colds = 0.0, prefetches = 0.0, flash_gb = 0.0;
    for (unsigned seed : seeds) {
      core::ManagerExperimentConfig cfg;
      cfg.monkey.seed = seed;
      cfg.prefetch_on_emotion_change = k > 0;
      cfg.prefetch_top_k = k;
      const auto res = core::run_manager_experiment(cfg);
      wait += res.proposed.loading_time_s;
      colds += static_cast<double>(res.proposed.cold_starts);
      prefetches += static_cast<double>(res.proposed.prefetches);
      flash_gb += static_cast<double>(res.proposed.memory_loaded_bytes +
                                      res.proposed.prefetch_bytes) /
                  1e9;
    }
    const double n = static_cast<double>(seeds.size());
    std::printf("%-10d %12.1f %14.1f %14.1f %14.2f\n", k, wait / n,
                colds / n, prefetches / n, flash_gb / n);
  }

  // Baseline reference row.
  double base_wait = 0.0, base_gb = 0.0;
  for (unsigned seed : seeds) {
    core::ManagerExperimentConfig cfg;
    cfg.monkey.seed = seed;
    const auto res = core::run_manager_experiment(cfg);
    base_wait += res.baseline.loading_time_s;
    base_gb += static_cast<double>(res.baseline.memory_loaded_bytes) / 1e9;
  }
  std::printf("%-10s %12.1f %14s %14s %14.2f\n", "fifo-base",
              base_wait / static_cast<double>(seeds.size()), "-", "-",
              base_gb / static_cast<double>(seeds.size()));
  std::printf(
      "\nreading: each prefetched hit converts a user-visible cold start\n"
      "into background work; past the useful k the extra flash traffic\n"
      "buys nothing (speculation accuracy saturates).\n");
  return 0;
}
